//! Hilbert-range sharding: one logical bur index over N independent
//! shards.
//!
//! The paper's bottom-up update path (VLDB 2003) keeps a *single*
//! R-tree fast under frequent updates — but a single tree is still one
//! structure lock, one write-ahead log and one disk. This crate scales
//! the same index out: [`ShardedBur`] presents the batch-first
//! [`bur_core::Bur`] surface over N shards partitioned by ranges of the
//! Hilbert curve that `bur_geom::hilbert` already uses to linearize
//! space.
//!
//! * **Point ops are single-shard.** Each op's position quantizes to a
//!   curve key; a sorted range map names the one owning shard. A mixed
//!   [`bur_core::Batch`] splits into per-shard sub-batches applied in
//!   parallel — one WAL group-commit record per touched shard — and the
//!   per-shard tickets fold into one [`AggregateTicket`].
//! * **Window queries scatter narrowly.** The window decomposes into a
//!   handful of curve ranges ([`bur_geom::hilbert::hilbert_ranges`]);
//!   only shards owning an overlapping range are queried, gathered via
//!   [`ScatterQuery`] over the shards' recycled-buffer cursors.
//! * **kNN merges lazily.** Per-shard neighbor streams merge through a
//!   bounded heap ([`MergedNeighbors`]); a shard is admitted only when
//!   the `MINDIST` to its root MBR can still beat the current k-th
//!   candidate.
//! * **Rebalancing is all-or-nothing.** [`ShardedBur::migrate_range`]
//!   moves a key range shard-to-shard in group-commit chunks under a
//!   migration epoch; with a manifest file attached, a crash at any
//!   point rolls the move back or forward on reopen without losing an
//!   acked write. `docs/ARCHITECTURE.md` ("Sharding") is the normative
//!   protocol description.
//!
//! ```
//! use bur_core::{Batch, IndexBuilder};
//! use bur_geom::{Point, Rect};
//! use bur_shard::{ShardOptions, ShardedBur};
//!
//! let shards = (0..4)
//!     .map(|_| IndexBuilder::generalized().build().unwrap())
//!     .collect();
//! let sharded = ShardedBur::from_shards(shards, ShardOptions::default()).unwrap();
//!
//! let mut batch = Batch::new();
//! for i in 0..100u64 {
//!     batch.insert(i, Point::new((i as f32) / 100.0, 0.5));
//! }
//! let ticket = sharded.apply(&batch).unwrap();
//! assert_eq!(ticket.report().inserted, 100);
//!
//! let hits: Vec<u64> = sharded
//!     .query(&Rect::new(0.0, 0.0, 0.25, 1.0))
//!     .unwrap()
//!     .collect();
//! assert_eq!(hits.len(), 26);
//! let nearest = sharded.nearest(Point::new(0.5, 0.5), 3).unwrap();
//! assert_eq!(nearest.count(), 3);
//! ```

mod manifest;
mod router;
mod sharded;

pub use manifest::{key_space_for, load as load_manifest, store as store_manifest, Manifest};
pub use router::{Migration, RangeMap, Segment};
pub use sharded::{
    AggregateTicket, MergedNeighbors, MigrationReport, RoutedWrite, ScatterQuery, ShardLoad,
    ShardOptions, ShardStats, ShardedBur, DEFAULT_ORDER, DEFAULT_SCATTER_BUDGET,
};

use bur_core::CoreError;
use std::fmt;

/// Errors from the sharding layer.
#[derive(Debug)]
pub enum ShardError {
    /// A core failure not attributable to one shard.
    Core(CoreError),
    /// A core failure on one specific shard.
    Shard {
        /// Which shard failed.
        shard: u32,
        /// What went wrong.
        source: CoreError,
    },
    /// Manifest I/O failure.
    Io(std::io::Error),
    /// The manifest file was malformed or inconsistent.
    Manifest(String),
    /// The request or configuration was invalid.
    Config(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Core(e) => write!(f, "core: {e}"),
            ShardError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            ShardError::Io(e) => write!(f, "manifest io: {e}"),
            ShardError::Manifest(m) => write!(f, "manifest: {m}"),
            ShardError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Core(e) | ShardError::Shard { source: e, .. } => Some(e),
            ShardError::Io(e) => Some(e),
            ShardError::Manifest(_) | ShardError::Config(_) => None,
        }
    }
}

impl From<CoreError> for ShardError {
    fn from(e: CoreError) -> Self {
        ShardError::Core(e)
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Convenience alias for sharding-layer results.
pub type ShardResult<T> = Result<T, ShardError>;
