//! Durable routing state: the shard manifest file.
//!
//! A sharded index on disk is N ordinary single-shard index files plus
//! one small text manifest holding the routing state: curve order,
//! scatter budget, shard count, the segment map, the extent slack and —
//! while a range migration is in flight — the migration record that
//! makes rebalancing all-or-nothing across crashes.
//!
//! The manifest is always replaced atomically (write temp file, fsync,
//! rename over, fsync directory), so a crash leaves either the old or
//! the new manifest, never a torn one. The migration protocol leans on
//! exactly that:
//!
//! * `migration intent …` present → the copy phase may have started but
//!   ownership never flipped; recovery **rolls back** by deleting any
//!   copied entries from the target shard.
//! * `migration commit …` present → ownership flipped (the segment map
//!   in the same file already names the new owner); recovery **rolls
//!   forward** by re-running the idempotent delete-from-source.

use crate::router::{Migration, RangeMap, Segment};
use crate::ShardError;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Hilbert curve order used for routing keys.
    pub order: u32,
    /// Scatter budget for window-query range decomposition.
    pub budget: usize,
    /// Number of shards.
    pub shards: u32,
    /// Routing epoch at the time of writing.
    pub epoch: u64,
    /// Maximum half-extent (w, h) ever inserted, for window expansion.
    pub slack: (f32, f32),
    /// The segment map.
    pub segments: Vec<Segment>,
    /// Migration record, if one was in flight.
    pub migration: Option<Migration>,
}

impl Manifest {
    /// Reconstruct the range map this manifest describes.
    pub fn range_map(&self) -> Result<RangeMap, ShardError> {
        let key_space = key_space_for(self.order);
        RangeMap::from_segments(self.segments.clone(), key_space, self.migration)
            .map_err(ShardError::Manifest)
    }
}

/// One past the largest key on an order-`order` curve (`4^order`).
#[must_use]
pub fn key_space_for(order: u32) -> u64 {
    let side = 1u64 << order;
    side * side
}

/// Serialize and atomically replace the manifest at `path`.
pub fn store(path: &Path, m: &Manifest) -> Result<(), ShardError> {
    let mut text = String::new();
    text.push_str("burshard v1\n");
    text.push_str(&format!("order {}\n", m.order));
    text.push_str(&format!("budget {}\n", m.budget));
    text.push_str(&format!("shards {}\n", m.shards));
    text.push_str(&format!("epoch {}\n", m.epoch));
    text.push_str(&format!("slack {} {}\n", m.slack.0, m.slack.1));
    for seg in &m.segments {
        text.push_str(&format!("seg {} {}\n", seg.start, seg.shard));
    }
    if let Some(mig) = &m.migration {
        text.push_str(&format!(
            "migration {} {} {} {} {}\n",
            if mig.flipped { "commit" } else { "intent" },
            mig.lo,
            mig.hi,
            mig.from,
            mig.to
        ));
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load and parse the manifest at `path`.
pub fn load(path: &Path) -> Result<Manifest, ShardError> {
    let text = fs::read_to_string(path)?;
    parse(&text)
}

fn parse(text: &str) -> Result<Manifest, ShardError> {
    let bad = |what: &str| ShardError::Manifest(format!("malformed manifest: {what}"));
    let mut lines = text.lines();
    if lines.next() != Some("burshard v1") {
        return Err(bad("missing burshard v1 header"));
    }
    let mut order = None;
    let mut budget = None;
    let mut shards = None;
    let mut epoch = 0u64;
    let mut slack = (0.0f32, 0.0f32);
    let mut segments = Vec::new();
    let mut migration = None;
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("order") => {
                order = Some(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("order"))?,
                );
            }
            Some("budget") => {
                budget = Some(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("budget"))?,
                );
            }
            Some("shards") => {
                shards = Some(
                    parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("shards"))?,
                );
            }
            Some("epoch") => {
                epoch = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("epoch"))?;
            }
            Some("slack") => {
                let w = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("slack"))?;
                let h = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("slack"))?;
                slack = (w, h);
            }
            Some("seg") => {
                let start = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("seg start"))?;
                let shard = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("seg shard"))?;
                segments.push(Segment { start, shard });
            }
            Some("migration") => {
                let phase = parts.next().ok_or_else(|| bad("migration phase"))?;
                let flipped = match phase {
                    "intent" => false,
                    "commit" => true,
                    _ => return Err(bad("migration phase")),
                };
                let mut num = || {
                    parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| bad("migration bounds"))
                };
                let lo = num()?;
                let hi = num()?;
                let from = u32::try_from(num()?).map_err(|_| bad("migration shard"))?;
                let to = u32::try_from(num()?).map_err(|_| bad("migration shard"))?;
                migration = Some(Migration {
                    lo,
                    hi,
                    from,
                    to,
                    flipped,
                });
            }
            Some(_) | None => return Err(bad("unknown line")),
        }
    }
    Ok(Manifest {
        order: order.ok_or_else(|| bad("no order"))?,
        budget: budget.ok_or_else(|| bad("no budget"))?,
        shards: shards.ok_or_else(|| bad("no shards"))?,
        epoch,
        slack,
        segments,
        migration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(migration: Option<Migration>) -> Manifest {
        Manifest {
            order: 16,
            budget: 16,
            shards: 4,
            epoch: 7,
            slack: (0.0, 0.015625),
            segments: vec![
                Segment { start: 0, shard: 0 },
                Segment {
                    start: 1 << 30,
                    shard: 1,
                },
                Segment {
                    start: 2 << 30,
                    shard: 2,
                },
                Segment {
                    start: 3 << 30,
                    shard: 3,
                },
            ],
            migration,
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("burshard-manifest-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.shardmap");
        for migration in [
            None,
            Some(Migration {
                lo: 100,
                hi: 200,
                from: 0,
                to: 3,
                flipped: false,
            }),
            Some(Migration {
                lo: 100,
                hi: 200,
                from: 0,
                to: 3,
                flipped: true,
            }),
        ] {
            let m = sample(migration);
            store(&path, &m).unwrap();
            assert_eq!(load(&path).unwrap(), m);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not a manifest").is_err());
        assert!(parse("burshard v1\norder x\n").is_err());
        assert!(parse("burshard v1\nwhat 3\n").is_err());
        // Missing required fields.
        assert!(parse("burshard v1\norder 8\n").is_err());
    }

    #[test]
    fn map_reconstruction_validates() {
        let m = sample(None);
        let map = m.range_map().unwrap();
        assert_eq!(map.owner(0), 0);
        assert_eq!(map.owner(3 << 30), 3);
        let mut bad = sample(None);
        bad.segments.clear();
        assert!(bad.range_map().is_err());
    }
}
