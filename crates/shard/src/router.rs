//! The range map: who owns which Hilbert-key range.
//!
//! The routing state of a sharded index is a sorted list of
//! [`Segment`]s covering the whole key space `[0, 4^order)`. Every key
//! has exactly one owner at any instant; a migration in flight is an
//! explicit [`Migration`] overlay, not a second owner, so point-op
//! routing stays single-shard throughout.

use bur_geom::hilbert::HilbertRange;

/// One contiguous run of Hilbert keys owned by a shard. Segments are
/// half-open: a segment covers `[start, next_segment.start)` (the last
/// one covers up to the key-space end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First key of the run.
    pub start: u64,
    /// Owning shard index.
    pub shard: u32,
}

/// A range migration in flight (see the migration protocol in
/// `docs/ARCHITECTURE.md`): keys in `[lo, hi)` are moving from shard
/// `from` to shard `to`. While pending, writes into the range are
/// frozen and overlapping reads scatter to both sides and deduplicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// First key of the moving range.
    pub lo: u64,
    /// One past the last key of the moving range.
    pub hi: u64,
    /// Current owner (authoritative until the flip).
    pub from: u32,
    /// New owner (authoritative after the flip).
    pub to: u32,
    /// Whether ownership has flipped to `to` (the commit point).
    pub flipped: bool,
}

/// The routing table: sorted segments plus the pending migration, if
/// any. Guarded by the sharded handle's `RwLock`; the epoch counter
/// lives next to the lock, not here.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeMap {
    segments: Vec<Segment>,
    key_space: u64,
    pending: Option<Migration>,
}

impl RangeMap {
    /// Even split of `[0, key_space)` across `shards` shards, in curve
    /// order (shard 0 gets the lowest keys).
    #[must_use]
    pub fn even(shards: u32, key_space: u64) -> Self {
        debug_assert!(shards > 0);
        let per = (key_space / u64::from(shards)).max(1);
        let segments = (0..shards)
            .map(|s| Segment {
                start: u64::from(s) * per,
                shard: s,
            })
            .collect();
        Self {
            segments,
            key_space,
            pending: None,
        }
    }

    /// Rebuild from persisted segments (must be sorted, start at 0).
    pub fn from_segments(
        segments: Vec<Segment>,
        key_space: u64,
        pending: Option<Migration>,
    ) -> Result<Self, String> {
        if segments.is_empty() {
            return Err("range map has no segments".into());
        }
        if segments[0].start != 0 {
            return Err("range map does not start at key 0".into());
        }
        for w in segments.windows(2) {
            if w[0].start >= w[1].start {
                return Err("range map segments out of order".into());
            }
        }
        if segments.last().expect("non-empty").start >= key_space {
            return Err("range map segment beyond the key space".into());
        }
        Ok(Self {
            segments,
            key_space,
            pending,
        })
    }

    /// One past the largest representable key.
    #[must_use]
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// The sorted segments (diagnostics / persistence).
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The migration in flight, if any.
    #[must_use]
    pub fn pending(&self) -> Option<&Migration> {
        self.pending.as_ref()
    }

    pub(crate) fn set_pending(&mut self, m: Option<Migration>) {
        self.pending = m;
    }

    /// The shard owning `key` right now. During a migration the `from`
    /// shard stays the owner until the flip, then `to` takes over.
    #[must_use]
    pub fn owner(&self, key: u64) -> u32 {
        if let Some(m) = &self.pending {
            if m.lo <= key && key < m.hi {
                return if m.flipped { m.to } else { m.from };
            }
        }
        self.base_owner(key)
    }

    /// Segment lookup ignoring the migration overlay.
    fn base_owner(&self, key: u64) -> u32 {
        let i = self
            .segments
            .partition_point(|s| s.start <= key)
            .saturating_sub(1);
        self.segments[i].shard
    }

    /// Every shard whose owned key range overlaps any of `ranges`.
    /// Returns a sorted, deduplicated shard list. A pending migration
    /// overlapping the ranges contributes **both** sides (the caller
    /// must deduplicate gathered results in that case — see
    /// [`RangeMap::pending_overlaps`]).
    #[must_use]
    pub fn shards_overlapping(&self, ranges: &[HilbertRange]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for (i, seg) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map_or(self.key_space, |n| n.start);
            if ranges.iter().any(|r| r.overlaps(seg.start, end)) {
                out.push(seg.shard);
            }
        }
        if let Some(m) = &self.pending {
            if ranges.iter().any(|r| r.overlaps(m.lo, m.hi)) {
                out.push(m.from);
                out.push(m.to);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the pending migration (if any) overlaps one of `ranges`.
    #[must_use]
    pub fn pending_overlaps(&self, ranges: &[HilbertRange]) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|m| ranges.iter().any(|r| r.overlaps(m.lo, m.hi)))
    }

    /// Whether `[lo, hi)` is owned entirely by `shard` (required before
    /// a migration may start).
    #[must_use]
    pub fn owned_entirely_by(&self, lo: u64, hi: u64, shard: u32) -> bool {
        if lo >= hi || hi > self.key_space {
            return false;
        }
        for (i, seg) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map_or(self.key_space, |n| n.start);
            if seg.start < hi && lo < end && seg.shard != shard {
                return false;
            }
        }
        true
    }

    /// Reassign `[lo, hi)` to `shard`, splitting segments at the
    /// boundaries as needed and coalescing equal neighbors after. The
    /// migration overlay is ignored: this *is* the flip.
    pub(crate) fn assign(&mut self, lo: u64, hi: u64, shard: u32) {
        debug_assert!(lo < hi && hi <= self.key_space);
        // Candidate boundaries: every old segment start plus the two
        // new cut points; each boundary's owner decides the new map.
        let mut bounds: Vec<u64> = self.segments.iter().map(|s| s.start).collect();
        bounds.push(lo);
        if hi < self.key_space {
            bounds.push(hi);
        }
        bounds.sort_unstable();
        bounds.dedup();
        let mut next: Vec<Segment> = Vec::with_capacity(bounds.len());
        for b in bounds {
            let owner = if lo <= b && b < hi {
                shard
            } else {
                self.base_owner(b)
            };
            match next.last() {
                Some(last) if last.shard == owner => {}
                _ => next.push(Segment {
                    start: b,
                    shard: owner,
                }),
            }
        }
        self.segments = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_routes_in_curve_order() {
        let map = RangeMap::even(4, 1 << 8);
        assert_eq!(map.segments().len(), 4);
        assert_eq!(map.owner(0), 0);
        assert_eq!(map.owner(63), 0);
        assert_eq!(map.owner(64), 1);
        assert_eq!(map.owner(255), 3);
    }

    #[test]
    fn assign_splits_and_coalesces() {
        let mut map = RangeMap::even(2, 100);
        // [0,50)→0, [50,100)→1; move [20,30) to shard 1.
        map.assign(20, 30, 1);
        assert_eq!(map.owner(19), 0);
        assert_eq!(map.owner(20), 1);
        assert_eq!(map.owner(29), 1);
        assert_eq!(map.owner(30), 0);
        assert_eq!(map.owner(50), 1);
        // Moving it back restores the original two segments.
        map.assign(20, 30, 0);
        assert_eq!(map.segments().len(), 2);
        assert_eq!(map.owner(25), 0);
    }

    #[test]
    fn assign_whole_segment_coalesces_neighbors() {
        let mut map = RangeMap::even(4, 400);
        map.assign(100, 200, 0); // shard 1's whole range to shard 0
        assert_eq!(map.owner(150), 0);
        assert_eq!(map.segments().len(), 3); // [0,200)→0 coalesced
        assert!(map.owned_entirely_by(0, 200, 0));
        assert!(!map.owned_entirely_by(150, 250, 0));
    }

    #[test]
    fn overlap_scatter_includes_both_sides_of_a_migration() {
        let mut map = RangeMap::even(2, 100);
        let ranges = [HilbertRange { start: 40, end: 60 }];
        assert_eq!(map.shards_overlapping(&ranges), vec![0, 1]);
        let narrow = [HilbertRange { start: 10, end: 20 }];
        assert_eq!(map.shards_overlapping(&narrow), vec![0]);
        map.set_pending(Some(Migration {
            lo: 10,
            hi: 20,
            from: 0,
            to: 1,
            flipped: false,
        }));
        assert!(map.pending_overlaps(&narrow));
        assert_eq!(map.shards_overlapping(&narrow), vec![0, 1]);
        assert_eq!(map.owner(15), 0);
        map.set_pending(Some(Migration {
            lo: 10,
            hi: 20,
            from: 0,
            to: 1,
            flipped: true,
        }));
        assert_eq!(map.owner(15), 1);
    }
}
