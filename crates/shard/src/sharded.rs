//! `ShardedBur` — the batch-first `Bur` surface over N Hilbert-range
//! shards.
//!
//! See the crate docs for the big picture and `docs/ARCHITECTURE.md`
//! ("Sharding") for the normative routing and migration contracts.

use crate::manifest::{self, key_space_for, Manifest};
use crate::router::{Migration, RangeMap, Segment};
use crate::{ShardError, ShardResult};
use bur_core::{
    Batch, BatchReport, Bur, CommitTicket, CoreResult, Neighbor, NeighborCursor, ObjectId, Op,
    QueryCursor,
};
use bur_geom::hilbert::{hilbert_key, hilbert_ranges};
use bur_geom::{Point, Rect};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default Hilbert curve order for routing keys (`4^16` cells — fine
/// enough that a shard boundary splits any realistic hotspot).
pub const DEFAULT_ORDER: u32 = 16;

/// Default budget for window-query range decomposition: more ranges =
/// tighter scatter sets but more routing work per query.
pub const DEFAULT_SCATTER_BUDGET: usize = 16;

/// Ops per group-commit batch while migrating a key range.
const MIGRATE_CHUNK: usize = 1024;

/// Back-off while a write waits for a migration to release its range,
/// and while a migration drains pre-flip readers.
const FREEZE_BACKOFF: Duration = Duration::from_micros(200);

/// Construction knobs for a [`ShardedBur`].
#[derive(Debug, Clone, Copy)]
pub struct ShardOptions {
    /// Hilbert curve order for routing keys.
    pub order: u32,
    /// Window-query decomposition budget.
    pub scatter_budget: usize,
}

impl Default for ShardOptions {
    fn default() -> Self {
        Self {
            order: DEFAULT_ORDER,
            scatter_budget: DEFAULT_SCATTER_BUDGET,
        }
    }
}

/// Routing state guarded by the map lock. Mutations (slack growth,
/// migration phases) happen under the write lock; routing, scatter
/// planning and reader registration happen under the read lock.
#[derive(Debug)]
struct MapState {
    map: RangeMap,
    /// Maximum half-extent (w, h) of any rect ever inserted: window
    /// queries expand by this before decomposition so an object whose
    /// rect pokes into the window is still routed to.
    slack: (f32, f32),
    /// Migration generation counter; bumped once per migration when it
    /// starts. The parity selects the active reader counter slot.
    epoch: u64,
}

/// Boxed migration observer (see [`ShardedBur::set_migration_hook`]);
/// opaque in Debug output.
type MigrationHook = Box<dyn Fn(u32, u32) + Send + Sync>;
struct HookCell(RwLock<Option<MigrationHook>>);

impl std::fmt::Debug for HookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.read().is_some() {
            "HookCell(set)"
        } else {
            "HookCell(unset)"
        })
    }
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Bur>,
    state: RwLock<MapState>,
    /// Per-parity counts of live read snapshots (queries / kNN merges).
    /// A migration drains the pre-start parity before it deletes moved
    /// entries from the source shard, so a reader that planned its
    /// scatter before the migration began never observes the deletion.
    readers: [AtomicU64; 2],
    /// Per-parity counts of routed-but-unapplied external writes
    /// ([`ShardedBur::route_for_write`]). A migration drains the
    /// pre-start parity before its copy scan, so a write split under
    /// the old map cannot land on the donor after the scan passed it.
    writers: [AtomicU64; 2],
    order: u32,
    budget: usize,
    manifest_path: Option<PathBuf>,
    /// Called with `(from, to)` immediately before the phase-C ownership
    /// flip of a range migration, while writes into the range are still
    /// frozen. The serving layer hangs its retry-dedup handover here: the
    /// donor shard's completed `(session, seq)` entries move into the
    /// recipient so a retry that crosses the migration replays its
    /// original ack instead of re-applying on the new owner.
    migration_hook: HookCell,
}

/// Decrements its parity slot when the read snapshot dies.
#[derive(Debug)]
struct ReaderGuard {
    inner: Arc<Inner>,
    slot: usize,
}

impl Drop for ReaderGuard {
    fn drop(&mut self) {
        self.inner.readers[self.slot].fetch_sub(1, Ordering::AcqRel);
    }
}

/// Decrements its parity slot when the routed write completes.
#[derive(Debug)]
struct WriterGuard {
    inner: Arc<Inner>,
    slot: usize,
}

impl Drop for WriterGuard {
    fn drop(&mut self) {
        self.inner.writers[self.slot].fetch_sub(1, Ordering::AcqRel);
    }
}

/// A batch split into per-shard op lists but not yet applied (see
/// [`ShardedBur::route_for_write`]). The serving layer applies each part
/// through that shard's own write path (coalescer) while this value is
/// alive; dropping it releases the writer registration that keeps a
/// concurrent migration's copy scan from missing the routed ops.
#[derive(Debug)]
pub struct RoutedWrite {
    parts: Vec<(u32, Vec<Op>)>,
    split_updates: u64,
    _guard: WriterGuard,
}

impl RoutedWrite {
    /// The per-shard op lists, in first-touch order.
    #[must_use]
    pub fn parts(&self) -> &[(u32, Vec<Op>)] {
        &self.parts
    }

    /// How many cross-shard updates were decomposed into delete+insert
    /// pairs (each pair inflates the per-shard applied counts by one).
    #[must_use]
    pub fn split_updates(&self) -> u64 {
        self.split_updates
    }
}

/// One logical index over N independent [`Bur`] shards partitioned by
/// Hilbert-key ranges.
///
/// * Point ops route to the single shard owning their key; a mixed
///   [`Batch`] splits into per-shard sub-batches applied in parallel —
///   one group-commit record per *touched* shard, folded into an
///   [`AggregateTicket`].
/// * Window queries scatter only to shards whose key ranges intersect
///   the query's Hilbert range decomposition and gather through the
///   shards' zero-allocation cursors.
/// * kNN merges per-shard streams through a global bounded heap,
///   admitting a shard only when its root-MBR `MINDIST` can still beat
///   the current frontier.
/// * [`ShardedBur::migrate_range`] rebalances a key range shard-to-shard
///   under a migration epoch; with a manifest file attached the move is
///   all-or-nothing across crashes.
///
/// Cloning is cheap and shares the index (like [`Bur`]).
#[derive(Debug, Clone)]
pub struct ShardedBur {
    inner: Arc<Inner>,
}

/// Per-shard commit tickets for one sharded batch, folded into a single
/// aggregate handle. One ticket per shard the batch touched.
#[derive(Debug)]
pub struct AggregateTicket {
    parts: Vec<(u32, CommitTicket)>,
    report: BatchReport,
}

impl AggregateTicket {
    /// Block until every touched shard reports the sub-batch durable
    /// (immediately on volatile indexes). Returns the largest per-shard
    /// LSN — shard logs are independent, so it is only a watermark of
    /// "everything acked", not a global order.
    pub fn wait(&self) -> ShardResult<u64> {
        let mut max = 0;
        for (shard, ticket) in &self.parts {
            let lsn = ticket.wait().map_err(|source| ShardError::Shard {
                shard: *shard,
                source,
            })?;
            max = max.max(lsn);
        }
        Ok(max)
    }

    /// Whether every touched shard has made the sub-batch durable.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.parts.iter().all(|(_, t)| t.is_durable())
    }

    /// What the batch did, folded across shards. A cross-shard update
    /// (an object moving between shards) counts as one `updated`, as it
    /// would on an unsharded index.
    #[must_use]
    pub fn report(&self) -> &BatchReport {
        &self.report
    }

    /// Per-shard `(shard, lsn)` pairs, one per touched shard.
    #[must_use]
    pub fn shard_lsns(&self) -> Vec<(u32, u64)> {
        self.parts.iter().map(|(s, t)| (*s, t.lsn())).collect()
    }

    /// How many shards the batch touched.
    #[must_use]
    pub fn shards_touched(&self) -> usize {
        self.parts.len()
    }
}

/// Gathered window-query results across shards (see
/// [`ShardedBur::query`]). Iterates each shard's recycled-buffer cursor
/// in shard order; while a migration overlaps the window it deduplicates
/// object ids (both sides of the move may hold a copy).
#[derive(Debug)]
pub struct ScatterQuery {
    cursors: Vec<QueryCursor>,
    current: usize,
    dedup: Option<HashSet<ObjectId>>,
}

impl ScatterQuery {
    /// How many shards the query scattered to.
    #[must_use]
    pub fn shards_touched(&self) -> usize {
        self.cursors.len()
    }

    /// Append every remaining id to `out`.
    pub fn collect_into(&mut self, out: &mut Vec<ObjectId>) {
        out.extend(self);
    }
}

impl Iterator for ScatterQuery {
    type Item = ObjectId;

    fn next(&mut self) -> Option<ObjectId> {
        while self.current < self.cursors.len() {
            for oid in self.cursors[self.current].by_ref() {
                match &mut self.dedup {
                    Some(seen) => {
                        if seen.insert(oid) {
                            return Some(oid);
                        }
                    }
                    None => return Some(oid),
                }
            }
            self.current += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let upper: usize = self.cursors[self.current.min(self.cursors.len())..]
            .iter()
            .map(|c| c.size_hint().1.unwrap_or(0))
            .sum();
        if self.dedup.is_some() {
            (0, Some(upper))
        } else {
            (upper, Some(upper))
        }
    }
}

/// Heap element of the global kNN merge: the head of one shard's
/// neighbor stream. Min-ordered by `(distance, oid)` so merged output
/// is deterministic under ties.
struct Head {
    neighbor: Neighbor,
    slot: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the closest first.
        other
            .neighbor
            .distance
            .total_cmp(&self.neighbor.distance)
            .then_with(|| other.neighbor.oid.cmp(&self.neighbor.oid))
    }
}

/// Streaming merged k-nearest-neighbor results across shards, closest
/// first (see [`ShardedBur::nearest`]).
///
/// Shards are admitted lazily: a shard's stream is opened only once the
/// `MINDIST` from the query point to its root MBR is at most the
/// distance of the current best unemitted candidate — a shard whose
/// entire bounding box is farther than the k-th result is never read.
///
/// A shard query failing mid-merge ends the stream early; check
/// [`MergedNeighbors::take_error`] (or use
/// [`MergedNeighbors::try_collect`]) to observe it.
pub struct MergedNeighbors {
    inner: Arc<Inner>,
    query: Point,
    k: usize,
    emitted: usize,
    /// Unopened shards as `(mindist, shard)`, sorted descending so the
    /// nearest candidate pops off the end.
    pending: Vec<(f32, u32)>,
    cursors: Vec<NeighborCursor>,
    heap: std::collections::BinaryHeap<Head>,
    dedup: Option<HashSet<ObjectId>>,
    error: Option<ShardError>,
    /// Keeps the migration delete phase from racing this merge.
    _guard: ReaderGuard,
}

impl std::fmt::Debug for MergedNeighbors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergedNeighbors")
            .field("k", &self.k)
            .field("emitted", &self.emitted)
            .field("pending_shards", &self.pending.len())
            .field("open_shards", &self.cursors.len())
            .finish()
    }
}

impl MergedNeighbors {
    /// Admit every pending shard that could still beat the current
    /// frontier, pushing its first neighbor onto the merge heap.
    fn admit(&mut self) {
        while let Some(&(mindist, shard)) = self.pending.last() {
            let frontier = self.heap.peek().map(|h| h.neighbor.distance);
            if frontier.is_some_and(|d| mindist > d) {
                break;
            }
            self.pending.pop();
            match self.inner.shards[shard as usize].nearest(self.query, self.k) {
                Ok(mut cursor) => {
                    if let Some(neighbor) = cursor.next() {
                        let slot = self.cursors.len();
                        self.cursors.push(cursor);
                        self.heap.push(Head { neighbor, slot });
                    }
                }
                Err(source) => {
                    self.error = Some(ShardError::Shard { shard, source });
                    self.pending.clear();
                    break;
                }
            }
        }
    }

    /// The error that ended the stream early, if any.
    pub fn take_error(&mut self) -> Option<ShardError> {
        self.error.take()
    }

    /// Drain the stream into a vector, surfacing any shard error.
    pub fn try_collect(mut self) -> ShardResult<Vec<Neighbor>> {
        let mut out = Vec::with_capacity(self.k.min(64));
        for n in &mut self {
            out.push(n);
        }
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

impl Iterator for MergedNeighbors {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        loop {
            if self.emitted >= self.k || self.error.is_some() {
                return None;
            }
            self.admit();
            let head = self.heap.pop()?;
            if let Some(next) = self.cursors[head.slot].next() {
                self.heap.push(Head {
                    neighbor: next,
                    slot: head.slot,
                });
            }
            if let Some(seen) = &mut self.dedup {
                if !seen.insert(head.neighbor.oid) {
                    continue;
                }
            }
            self.emitted += 1;
            return Some(head.neighbor);
        }
    }
}

/// What one [`ShardedBur::migrate_range`] call moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Objects moved.
    pub moved: u64,
    /// Donor shard.
    pub from: u32,
    /// Recipient shard.
    pub to: u32,
    /// Migration epoch assigned to the move.
    pub epoch: u64,
}

/// Load snapshot of one shard (see [`ShardStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Objects on the shard.
    pub len: u64,
    /// Tree height of the shard (1 = the root is a leaf).
    pub height: u16,
}

/// Aggregate load/shape snapshot of a sharded index.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Per-shard load, indexed by shard id.
    pub shards: Vec<ShardLoad>,
    /// `max(len) / mean(len)`; 1.0 for an empty or perfectly even
    /// index. The rebalance heuristics key off this.
    pub imbalance: f64,
    /// Migration generation counter.
    pub epoch: u64,
    /// Number of contiguous key-range segments in the routing map.
    pub segments: usize,
    /// Whether a range migration is in flight.
    pub migrating: bool,
}

impl ShardedBur {
    /// Assemble a sharded index over pre-built shards with an even
    /// initial key split and no on-disk manifest (routing state lives
    /// in memory only — fine for volatile indexes and tests).
    pub fn from_shards(shards: Vec<Bur>, opts: ShardOptions) -> ShardResult<Self> {
        Self::assemble(shards, opts, None)
    }

    /// Assemble a sharded index whose routing state is persisted in the
    /// manifest file at `path`. If the manifest exists it wins over
    /// `opts` (order, budget, segment map, slack) and any interrupted
    /// migration it records is first rolled back or forward so the
    /// index observes the all-or-nothing rebalance contract; otherwise
    /// a fresh even split is written there.
    pub fn with_manifest(shards: Vec<Bur>, opts: ShardOptions, path: PathBuf) -> ShardResult<Self> {
        Self::assemble(shards, opts, Some(path))
    }

    fn assemble(
        shards: Vec<Bur>,
        opts: ShardOptions,
        manifest_path: Option<PathBuf>,
    ) -> ShardResult<Self> {
        if shards.is_empty() {
            return Err(ShardError::Config("a sharded index needs ≥ 1 shard".into()));
        }
        if u32::try_from(shards.len()).is_err() {
            return Err(ShardError::Config("too many shards".into()));
        }
        if opts.order == 0 || opts.order > 31 {
            return Err(ShardError::Config(format!(
                "routing order {} outside 1..=31",
                opts.order
            )));
        }
        let count = shards.len() as u32;
        let existing = match &manifest_path {
            Some(p) if p.exists() => Some(manifest::load(p)?),
            _ => None,
        };
        let (order, budget, slack, map, epoch, recover) = match existing {
            Some(m) => {
                if m.shards != count {
                    return Err(ShardError::Config(format!(
                        "manifest says {} shards, {} were provided",
                        m.shards, count
                    )));
                }
                let map = m.range_map()?;
                (m.order, m.budget, m.slack, map, m.epoch, m.migration)
            }
            None => (
                opts.order,
                opts.scatter_budget.max(1),
                (0.0, 0.0),
                RangeMap::even(count, key_space_for(opts.order)),
                0,
                None,
            ),
        };
        let inner = Arc::new(Inner {
            shards,
            state: RwLock::new(MapState { map, slack, epoch }),
            readers: [AtomicU64::new(0), AtomicU64::new(0)],
            writers: [AtomicU64::new(0), AtomicU64::new(0)],
            order,
            budget,
            manifest_path,
            migration_hook: HookCell(RwLock::new(None)),
        });
        let this = Self { inner };
        match recover {
            Some(m) => this.recover_migration(m)?,
            None => {
                // Fresh index with a manifest path: persist the initial map.
                if this.inner.manifest_path.is_some() && !this.manifest_exists() {
                    this.persist_manifest()?;
                }
            }
        }
        Ok(this)
    }

    fn manifest_exists(&self) -> bool {
        self.inner
            .manifest_path
            .as_deref()
            .is_some_and(std::path::Path::exists)
    }

    /// Write the current routing state to the manifest (no-op without a
    /// manifest path). Callers must hold no state lock, or pass the
    /// guarded state explicitly via [`Self::persist_state`].
    fn persist_manifest(&self) -> ShardResult<()> {
        let state = self.inner.state.read();
        self.persist_state(&state)
    }

    fn persist_state(&self, state: &MapState) -> ShardResult<()> {
        let Some(path) = &self.inner.manifest_path else {
            return Ok(());
        };
        let m = Manifest {
            order: self.inner.order,
            budget: self.inner.budget,
            shards: self.inner.shards.len() as u32,
            epoch: state.epoch,
            slack: state.slack,
            segments: state.map.segments().to_vec(),
            migration: state.map.pending().copied(),
        };
        manifest::store(path, &m)
    }

    // ---- routing ---------------------------------------------------------

    /// Routing key of a position on this index's curve.
    #[must_use]
    pub fn key_of(&self, p: Point) -> u64 {
        hilbert_key(p, self.inner.order)
    }

    /// The shard a point op at `p` routes to right now.
    #[must_use]
    pub fn route_point(&self, p: Point) -> u32 {
        let key = self.key_of(p);
        self.inner.state.read().map.owner(key)
    }

    /// Split `ops` into per-shard sub-batches under the current routing
    /// map, preserving relative op order per shard. A cross-shard
    /// update decomposes into a delete on the old shard and an insert
    /// on the new one; the second return is the number of such splits
    /// (for report fix-up). Deterministic for a given map: retried
    /// batches split identically, which keeps per-shard exactly-once
    /// dedup sound in the serving layer.
    #[must_use]
    pub fn split_ops(&self, ops: &[Op]) -> (Vec<(u32, Batch)>, u64) {
        let state = self.inner.state.read();
        split_ops_with(&state.map, self.inner.order, ops)
    }

    /// Split `ops` for application through *external* per-shard write
    /// paths (the server's per-shard coalescers). Behaves like the
    /// routing step of [`Self::apply_ops`] — grows the extent slack
    /// first and waits out a migration overlapping any op — and returns
    /// a [`RoutedWrite`] whose writer registration a later migration
    /// must drain before scanning. Keep it alive until every part has
    /// been handed to its shard's write path.
    pub fn route_for_write(&self, ops: &[Op]) -> ShardResult<RoutedWrite> {
        self.grow_slack_for(ops)?;
        loop {
            let state = self.inner.state.read();
            if let Some(m) = state.map.pending() {
                if ops_touch_range(ops, self.inner.order, m.lo, m.hi) {
                    drop(state);
                    std::thread::sleep(FREEZE_BACKOFF);
                    continue;
                }
            }
            let slot = (state.epoch & 1) as usize;
            self.inner.writers[slot].fetch_add(1, Ordering::AcqRel);
            let guard = WriterGuard {
                inner: Arc::clone(&self.inner),
                slot,
            };
            let (parts, split_updates) = split_ops_with(&state.map, self.inner.order, ops);
            drop(state);
            return Ok(RoutedWrite {
                parts: parts
                    .into_iter()
                    .map(|(shard, batch)| (shard, batch.ops().to_vec()))
                    .collect(),
                split_updates,
                _guard: guard,
            });
        }
    }

    // ---- writes ----------------------------------------------------------

    /// Apply a mixed batch: split by key, apply sub-batches in parallel
    /// (one group-commit record per touched shard) and fold the tickets.
    ///
    /// Atomicity is **per shard**: a crash keeps or drops each shard's
    /// sub-batch as a unit, but not the cross-shard whole. Ops routed
    /// into a key range that is mid-migration wait for the migration to
    /// finish before applying.
    pub fn apply(&self, batch: &Batch) -> ShardResult<AggregateTicket> {
        self.apply_ops(batch.ops())
    }

    /// [`Self::apply`] over a raw op slice (the serving layer splits
    /// coalesced submissions without building a `Batch`).
    pub fn apply_ops(&self, ops: &[Op]) -> ShardResult<AggregateTicket> {
        self.grow_slack_for(ops)?;
        loop {
            let state = self.inner.state.read();
            // Writes into a migrating range freeze until the move ends:
            // the copy scan must not race new writes on either side.
            if let Some(m) = state.map.pending() {
                if ops_touch_range(ops, self.inner.order, m.lo, m.hi) {
                    drop(state);
                    std::thread::sleep(FREEZE_BACKOFF);
                    continue;
                }
            }
            let (parts, split_updates) = split_ops_with(&state.map, self.inner.order, ops);
            let tickets = self.apply_parts(&state, parts)?;
            drop(state);
            let mut report = BatchReport::default();
            for (_, t) in &tickets {
                let r = t.report();
                report.applied += r.applied;
                report.inserted += r.inserted;
                report.updated += r.updated;
                report.deleted += r.deleted;
                report.missing_deletes += r.missing_deletes;
            }
            // A split update ran as delete + insert; report it as the
            // single logical update the caller submitted.
            report.applied -= split_updates;
            report.inserted -= split_updates.min(report.inserted);
            report.deleted -= split_updates.min(report.deleted);
            report.updated += split_updates;
            return Ok(AggregateTicket {
                parts: tickets,
                report,
            });
        }
    }

    /// Run the per-shard sub-batches, the first on the caller's thread
    /// and the rest on scoped threads. The map read lock is held by the
    /// caller for the duration, so the routing decision stays valid.
    fn apply_parts(
        &self,
        _state: &MapState,
        parts: Vec<(u32, Batch)>,
    ) -> ShardResult<Vec<(u32, CommitTicket)>> {
        let mut out = Vec::with_capacity(parts.len());
        if parts.is_empty() {
            return Ok(out);
        }
        if parts.len() == 1 {
            // Hot path: single-shard batches skip thread spawning — the
            // single-shard overhead budget in BENCH_shard.json rides on
            // this.
            let (shard, batch) = &parts[0];
            let ticket = self.inner.shards[*shard as usize]
                .apply(batch)
                .map_err(|source| ShardError::Shard {
                    shard: *shard,
                    source,
                })?;
            out.push((*shard, ticket));
            return Ok(out);
        }
        let shards = &self.inner.shards;
        let mut results: Vec<(u32, CoreResult<CommitTicket>)> = Vec::with_capacity(parts.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(parts.len() - 1);
            let mut it = parts.iter();
            let first = it.next().expect("non-empty");
            for (shard, batch) in it {
                let bur = &shards[*shard as usize];
                handles.push((*shard, scope.spawn(move || bur.apply(batch))));
            }
            results.push((first.0, shards[first.0 as usize].apply(&first.1)));
            for (shard, h) in handles {
                results.push((shard, h.join().expect("shard apply panicked")));
            }
        });
        for (shard, r) in results {
            match r {
                Ok(ticket) => out.push((shard, ticket)),
                Err(source) => return Err(ShardError::Shard { shard, source }),
            }
        }
        Ok(out)
    }

    /// Single-op convenience: insert a point object.
    pub fn insert(&self, oid: ObjectId, position: Point) -> ShardResult<AggregateTicket> {
        let mut b = Batch::new();
        b.insert(oid, position);
        self.apply(&b)
    }

    /// Single-op convenience: insert an object with a rect extent.
    pub fn insert_rect(&self, oid: ObjectId, rect: Rect) -> ShardResult<AggregateTicket> {
        let mut b = Batch::new();
        b.insert_rect(oid, rect);
        self.apply(&b)
    }

    /// Single-op convenience: move an object.
    pub fn update(&self, oid: ObjectId, old: Point, new: Point) -> ShardResult<AggregateTicket> {
        let mut b = Batch::new();
        b.update(oid, old, new);
        self.apply(&b)
    }

    /// Single-op convenience: delete an object.
    pub fn delete(&self, oid: ObjectId, position: Point) -> ShardResult<AggregateTicket> {
        let mut b = Batch::new();
        b.delete(oid, position);
        self.apply(&b)
    }

    /// Track the largest half-extent ever inserted so window queries
    /// know how far to expand before decomposition. Grows rarely (point
    /// workloads never grow it); persisted *before* the batch applies
    /// so a crash cannot leave an under-estimating manifest.
    fn grow_slack_for(&self, ops: &[Op]) -> ShardResult<()> {
        let mut need = (0.0f32, 0.0f32);
        for op in ops {
            if let Op::Insert { rect, .. } = op {
                need.0 = need.0.max(rect.width() / 2.0);
                need.1 = need.1.max(rect.height() / 2.0);
            }
        }
        if need == (0.0, 0.0) {
            return Ok(());
        }
        let state = self.inner.state.read();
        if state.slack.0 >= need.0 && state.slack.1 >= need.1 {
            return Ok(());
        }
        drop(state);
        let mut state = self.inner.state.write();
        state.slack.0 = state.slack.0.max(need.0);
        state.slack.1 = state.slack.1.max(need.1);
        self.persist_state(&state)
    }

    // ---- reads -----------------------------------------------------------

    /// Window query: decompose the window into Hilbert ranges, scatter
    /// to the shards owning an overlapping range, gather through their
    /// cursors. The per-shard buffers are recycled exactly as on an
    /// unsharded [`Bur::query`].
    pub fn query(&self, window: &Rect) -> ShardResult<ScatterQuery> {
        let state = self.inner.state.read();
        let guard = self.register_reader(&state);
        let expanded = expand_window(window, state.slack);
        let ranges = hilbert_ranges(&expanded, self.inner.order, self.inner.budget);
        let shards = state.map.shards_overlapping(&ranges);
        let dedup = state.map.pending_overlaps(&ranges);
        drop(state);
        let mut cursors = Vec::with_capacity(shards.len());
        for s in shards {
            let cursor = self.inner.shards[s as usize]
                .query(window)
                .map_err(|source| ShardError::Shard { shard: s, source })?;
            cursors.push(cursor);
        }
        // The cursors materialized their results above; the reader
        // guard has done its job (no delete phase ran mid-scatter).
        drop(guard);
        Ok(ScatterQuery {
            cursors,
            current: 0,
            dedup: dedup.then(HashSet::new),
        })
    }

    /// k-nearest-neighbor query merged across shards, closest first.
    /// Shards whose root MBR cannot beat the current k-th candidate are
    /// never read (distance-pruned admission).
    pub fn nearest(&self, query: Point, k: usize) -> ShardResult<MergedNeighbors> {
        let state = self.inner.state.read();
        let guard = self.register_reader(&state);
        let dedup = state.map.pending().is_some();
        drop(state);
        let mut pending = Vec::with_capacity(self.inner.shards.len());
        for (i, shard) in self.inner.shards.iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let bounds = shard.bounds().map_err(|source| ShardError::Shard {
                shard: i as u32,
                source,
            })?;
            pending.push((bounds.distance_to_point(&query), i as u32));
        }
        // Sorted descending so the nearest shard pops off the end first.
        pending.sort_by(|a, b| b.0.total_cmp(&a.0));
        Ok(MergedNeighbors {
            inner: Arc::clone(&self.inner),
            query,
            k,
            emitted: 0,
            pending,
            cursors: Vec::new(),
            heap: std::collections::BinaryHeap::new(),
            dedup: dedup.then(HashSet::new),
            error: None,
            _guard: guard,
        })
    }

    fn register_reader(&self, state: &MapState) -> ReaderGuard {
        let slot = (state.epoch & 1) as usize;
        self.inner.readers[slot].fetch_add(1, Ordering::AcqRel);
        ReaderGuard {
            inner: Arc::clone(&self.inner),
            slot,
        }
    }

    // ---- migration -------------------------------------------------------

    /// Install a callback invoked with `(from, to)` immediately before
    /// the phase-C ownership flip of every [`Self::migrate_range`],
    /// while writes into the moving range are still frozen and the
    /// donor's routed writes have drained.
    ///
    /// External per-shard write paths (the server's coalescers) use it
    /// to hand the donor's completed retry-dedup entries to the
    /// recipient: a client whose ack was lost in flight may retry the
    /// same `(session, seq)` *after* the flip, at which point the
    /// sub-batch routes to the recipient — without the handover the
    /// recipient would apply it a second time. Replaces any previously
    /// installed hook.
    pub fn set_migration_hook(&self, hook: impl Fn(u32, u32) + Send + Sync + 'static) {
        *self.inner.migration_hook.0.write() = Some(Box::new(hook));
    }

    /// Move every object whose routing key falls in `[lo, hi)` from its
    /// current owner to shard `to`, then re-point the routing map.
    ///
    /// The range must currently be owned entirely by one shard. Writes
    /// into the range wait until the move completes; reads stay live
    /// throughout (overlapping reads scatter to both sides and dedup).
    /// With a manifest attached the move is all-or-nothing across
    /// crashes: an interrupted copy rolls back on reopen, an
    /// interrupted cleanup rolls forward, and in neither case is an
    /// acked write lost.
    pub fn migrate_range(&self, lo: u64, hi: u64, to: u32) -> ShardResult<MigrationReport> {
        let shard_count = self.inner.shards.len() as u32;
        if to >= shard_count {
            return Err(ShardError::Config(format!(
                "target shard {to} out of range (have {shard_count})"
            )));
        }
        // Phase A — declare intent under the write lock: freeze writes
        // into the range, bump the migration epoch, persist the intent.
        let (from, epoch, old_parity) = {
            let mut state = self.inner.state.write();
            if state.map.pending().is_some() {
                return Err(ShardError::Config("a migration is already running".into()));
            }
            if lo >= hi || hi > state.map.key_space() {
                return Err(ShardError::Config(format!(
                    "key range [{lo}, {hi}) invalid for this curve"
                )));
            }
            let from = state.map.owner(lo);
            if !state.map.owned_entirely_by(lo, hi, from) {
                return Err(ShardError::Config(format!(
                    "key range [{lo}, {hi}) spans more than one shard"
                )));
            }
            if from == to {
                return Ok(MigrationReport {
                    moved: 0,
                    from,
                    to,
                    epoch: state.epoch,
                });
            }
            let old_parity = (state.epoch & 1) as usize;
            state.epoch += 1;
            state.map.set_pending(Some(Migration {
                lo,
                hi,
                from,
                to,
                flipped: false,
            }));
            self.persist_state(&state)?;
            (from, state.epoch, old_parity)
        };

        // Drain routed-but-unapplied external writes planned under the
        // old parity: their splits predate the freeze, so the copy scan
        // must wait until they have reached their shards.
        while self.inner.writers[old_parity].load(Ordering::Acquire) > 0 {
            std::thread::sleep(FREEZE_BACKOFF);
        }

        // Phase B — copy. The range is write-frozen, so one scan sees
        // every object; inserts ride ordinary group-commit batches on
        // the target and are acked durable before the flip.
        let run = || -> ShardResult<u64> {
            let entries = self.collect_range_entries(from, lo, hi)?;
            let moved = entries.len() as u64;
            self.apply_chunked(to, &entries, true)?;

            // Hand over external per-shard retry-dedup state while the
            // range is still write-frozen: once the flip below lands, a
            // retried `(session, seq)` routes to the recipient and must
            // find its original ack there.
            if let Some(hook) = self.inner.migration_hook.0.read().as_ref() {
                hook(from, to);
            }

            // Phase C — flip ownership; persisting the commit record is
            // THE commit point of the whole migration.
            {
                let mut state = self.inner.state.write();
                state.map.assign(lo, hi, to);
                state.map.set_pending(Some(Migration {
                    lo,
                    hi,
                    from,
                    to,
                    flipped: true,
                }));
                self.persist_state(&state)?;
            }

            // Drain readers that planned their scatter before the
            // migration began: they may be reading the source without
            // dedup protection, so the delete must wait them out.
            while self.inner.readers[old_parity].load(Ordering::Acquire) > 0 {
                std::thread::sleep(FREEZE_BACKOFF);
            }

            // Phase D — delete the moved objects from the donor, then
            // clear the migration record.
            self.apply_chunked(from, &entries, false)?;
            {
                let mut state = self.inner.state.write();
                state.map.set_pending(None);
                self.persist_state(&state)?;
            }
            Ok(moved)
        };
        match run() {
            Ok(moved) => Ok(MigrationReport {
                moved,
                from,
                to,
                epoch,
            }),
            Err(e) => {
                // A mid-flight failure (not a crash) leaves the pending
                // record set and writes frozen; surface the error — the
                // manifest recovery path on reopen makes it whole.
                Err(e)
            }
        }
    }

    /// Finish (or undo) a migration the manifest says was interrupted.
    fn recover_migration(&self, m: Migration) -> ShardResult<()> {
        if m.flipped {
            // Committed: the map already names the new owner. Re-run
            // the idempotent delete-from-source.
            let entries = self.collect_range_entries(m.from, m.lo, m.hi)?;
            self.apply_chunked(m.from, &entries, false)?;
        } else {
            // Intent only: ownership never flipped. Remove whatever was
            // copied to the target; the source still has everything.
            let entries = self.collect_range_entries(m.to, m.lo, m.hi)?;
            self.apply_chunked(m.to, &entries, false)?;
        }
        let mut state = self.inner.state.write();
        state.map.set_pending(None);
        self.persist_state(&state)
    }

    /// Every leaf entry on `shard` whose routing key is in `[lo, hi)`.
    fn collect_range_entries(
        &self,
        shard: u32,
        lo: u64,
        hi: u64,
    ) -> ShardResult<Vec<(ObjectId, Rect)>> {
        let order = self.inner.order;
        let everything = Rect::new(
            -f32::MAX / 2.0,
            -f32::MAX / 2.0,
            f32::MAX / 2.0,
            f32::MAX / 2.0,
        );
        let entries = self.inner.shards[shard as usize]
            .with_index(|ix| ix.query_entries(&everything))
            .map_err(|source| ShardError::Shard { shard, source })?;
        Ok(entries
            .into_iter()
            .filter(|e| {
                let key = hilbert_key(e.rect.center(), order);
                lo <= key && key < hi
            })
            .map(|e| (e.oid, e.rect))
            .collect())
    }

    /// Bulk-apply `entries` to `shard` in group-commit chunks: inserts
    /// when `insert` is true, deletes otherwise. Deletes that find
    /// nothing are fine (recovery replays are idempotent). Every chunk
    /// is awaited durable before returning.
    fn apply_chunked(
        &self,
        shard: u32,
        entries: &[(ObjectId, Rect)],
        insert: bool,
    ) -> ShardResult<()> {
        let bur = &self.inner.shards[shard as usize];
        for chunk in entries.chunks(MIGRATE_CHUNK) {
            let mut batch = Batch::with_capacity(chunk.len());
            for (oid, rect) in chunk {
                if insert {
                    batch.insert_rect(*oid, *rect);
                } else {
                    batch.delete(*oid, rect.center());
                }
            }
            let ticket = bur
                .apply(&batch)
                .map_err(|source| ShardError::Shard { shard, source })?;
            ticket
                .wait()
                .map_err(|source| ShardError::Shard { shard, source })?;
        }
        Ok(())
    }

    /// One rebalance step: if the most loaded shard holds ≥ 20% more
    /// than the mean, carve roughly half its surplus (as a contiguous
    /// key range) off to the least loaded shard. Returns `None` when
    /// the index is already balanced. Call in a loop to converge.
    pub fn rebalance_step(&self) -> ShardResult<Option<MigrationReport>> {
        let lens: Vec<u64> = self.inner.shards.iter().map(Bur::len).collect();
        let total: u64 = lens.iter().sum();
        if total == 0 {
            return Ok(None);
        }
        let mean = total as f64 / lens.len() as f64;
        let (donor, &donor_len) = lens
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .expect("non-empty");
        let (recipient, &recipient_len) = lens
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .expect("non-empty");
        if donor == recipient || (donor_len as f64) <= mean * 1.2 {
            return Ok(None);
        }
        let donor = donor as u32;
        // Pick the donor's busiest segment and move its low half.
        let (seg_lo, seg_hi) = {
            let state = self.inner.state.read();
            if state.map.pending().is_some() {
                return Err(ShardError::Config("a migration is already running".into()));
            }
            let segments = state.map.segments().to_vec();
            let key_space = state.map.key_space();
            let mut best: Option<(u64, u64)> = None;
            let mut best_count = 0u64;
            for (i, seg) in segments.iter().enumerate() {
                if seg.shard != donor {
                    continue;
                }
                let end = segments.get(i + 1).map_or(key_space, |n| n.start);
                let count = self.collect_range_entries(donor, seg.start, end)?.len() as u64;
                if count > best_count {
                    best_count = count;
                    best = Some((seg.start, end));
                }
            }
            match best {
                Some(range) if best_count > 1 => range,
                _ => return Ok(None),
            }
        };
        let mut keys: Vec<u64> = self
            .collect_range_entries(donor, seg_lo, seg_hi)?
            .iter()
            .map(|(_, rect)| hilbert_key(rect.center(), self.inner.order))
            .collect();
        keys.sort_unstable();
        let surplus = ((donor_len - recipient_len) / 2).max(1) as usize;
        let take = surplus.min(keys.len().saturating_sub(1)).max(1);
        let split = keys[take - 1] + 1;
        if split >= seg_hi {
            return Ok(None);
        }
        self.migrate_range(seg_lo, split, recipient as u32)
            .map(Some)
    }

    // ---- maintenance / introspection -------------------------------------

    /// Objects across all shards.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.inner.shards.iter().map(Bur::len).sum()
    }

    /// `true` when no shard holds anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(Bur::is_empty)
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Direct handle to shard `i` (diagnostics, serving integration).
    #[must_use]
    pub fn shard(&self, i: usize) -> &Bur {
        &self.inner.shards[i]
    }

    /// Hilbert curve order used for routing.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.inner.order
    }

    /// Window-decomposition budget used for scatter planning.
    #[must_use]
    pub fn scatter_budget(&self) -> usize {
        self.inner.budget
    }

    /// Migration generation counter.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.inner.state.read().epoch
    }

    /// Snapshot of the routing segments (sorted by key).
    #[must_use]
    pub fn segments(&self) -> Vec<Segment> {
        self.inner.state.read().map.segments().to_vec()
    }

    /// Whether every shard write-ahead-logs its updates.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.inner.shards.iter().all(Bur::is_durable)
    }

    /// Force a group commit on every shard.
    pub fn commit(&self) -> ShardResult<()> {
        self.for_each_shard(|b| b.commit().map(|_| ()))
    }

    /// Block until every shard's acked writes are durable.
    pub fn wait_durable(&self) -> ShardResult<()> {
        self.for_each_shard(|b| b.wait_durable().map(|_| ()))
    }

    /// Checkpoint every shard.
    pub fn checkpoint(&self) -> ShardResult<()> {
        self.for_each_shard(Bur::checkpoint)
    }

    /// Flush every shard to its backing store.
    pub fn persist(&self) -> ShardResult<()> {
        self.for_each_shard(Bur::persist)
    }

    fn for_each_shard(&self, f: impl Fn(&Bur) -> CoreResult<()>) -> ShardResult<()> {
        for (i, shard) in self.inner.shards.iter().enumerate() {
            f(shard).map_err(|source| ShardError::Shard {
                shard: i as u32,
                source,
            })?;
        }
        Ok(())
    }

    /// Load/shape snapshot across shards.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        let shards: Vec<ShardLoad> = self
            .inner
            .shards
            .iter()
            .map(|b| ShardLoad {
                len: b.len(),
                height: b.height(),
            })
            .collect();
        let total: u64 = shards.iter().map(|s| s.len).sum();
        let max = shards.iter().map(|s| s.len).max().unwrap_or(0);
        let imbalance = if total == 0 {
            1.0
        } else {
            max as f64 / (total as f64 / shards.len() as f64)
        };
        let state = self.inner.state.read();
        ShardStats {
            shards,
            imbalance,
            epoch: state.epoch,
            segments: state.map.segments().len(),
            migrating: state.map.pending().is_some(),
        }
    }
}

/// Expand a query window by the index's extent slack so rect objects
/// whose center lies outside the window still land in the scatter set.
fn expand_window(window: &Rect, slack: (f32, f32)) -> Rect {
    if slack == (0.0, 0.0) {
        *window
    } else {
        Rect::new(
            window.min_x - slack.0,
            window.min_y - slack.1,
            window.max_x + slack.0,
            window.max_y + slack.1,
        )
    }
}

/// Whether any op in `ops` routes a key into `[lo, hi)`.
fn ops_touch_range(ops: &[Op], order: u32, lo: u64, hi: u64) -> bool {
    let in_range = |p: Point| {
        let k = hilbert_key(p, order);
        lo <= k && k < hi
    };
    ops.iter().any(|op| match op {
        Op::Insert { rect, .. } => in_range(rect.center()),
        Op::Update { old, new, .. } => in_range(*old) || in_range(*new),
        Op::Delete { position, .. } => in_range(*position),
    })
}

/// The routing split (see [`ShardedBur::split_ops`]).
fn split_ops_with(map: &RangeMap, order: u32, ops: &[Op]) -> (Vec<(u32, Batch)>, u64) {
    let mut parts: Vec<(u32, Batch)> = Vec::new();
    let mut split_updates = 0u64;
    let push = |parts: &mut Vec<(u32, Batch)>, shard: u32, op: Op| match parts
        .iter_mut()
        .find(|(s, _)| *s == shard)
    {
        Some((_, batch)) => {
            batch.push(op);
        }
        None => {
            let mut batch = Batch::new();
            batch.push(op);
            parts.push((shard, batch));
        }
    };
    for op in ops {
        match *op {
            Op::Insert { rect, .. } => {
                let shard = map.owner(hilbert_key(rect.center(), order));
                push(&mut parts, shard, *op);
            }
            Op::Delete { position, .. } => {
                let shard = map.owner(hilbert_key(position, order));
                push(&mut parts, shard, *op);
            }
            Op::Update { oid, old, new } => {
                let s_old = map.owner(hilbert_key(old, order));
                let s_new = map.owner(hilbert_key(new, order));
                if s_old == s_new {
                    push(&mut parts, s_old, *op);
                } else {
                    split_updates += 1;
                    push(&mut parts, s_old, Op::Delete { oid, position: old });
                    push(
                        &mut parts,
                        s_new,
                        Op::Insert {
                            oid,
                            rect: Rect::from_point(new),
                        },
                    );
                }
            }
        }
    }
    (parts, split_updates)
}
