//! Behavior tests for `ShardedBur`: routing, cross-shard batches,
//! scatter queries, merged kNN, migration and manifest recovery.

use bur_core::{Batch, Bur, IndexBuilder};
use bur_geom::{Point, Rect};
use bur_shard::{ShardOptions, ShardedBur};
use std::path::PathBuf;

fn mem_shards(n: usize) -> Vec<Bur> {
    (0..n)
        .map(|_| IndexBuilder::generalized().build().unwrap())
        .collect()
}

fn sharded(n: usize) -> ShardedBur {
    ShardedBur::from_shards(mem_shards(n), ShardOptions::default()).unwrap()
}

/// Deterministic point in the unit square for object `i`.
fn pos(i: u64) -> Point {
    let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
    let x = ((h >> 16) & 0xffff) as f32 / 65536.0;
    let y = ((h >> 40) & 0xffff) as f32 / 65536.0;
    Point::new(x, y)
}

#[test]
fn batch_spreads_over_shards_and_len_sums() {
    let s = sharded(4);
    let mut batch = Batch::new();
    for i in 0..500 {
        batch.insert(i, pos(i));
    }
    let ticket = s.apply(&batch).unwrap();
    assert_eq!(ticket.report().inserted, 500);
    assert!(ticket.shards_touched() >= 2, "hash positions hit one shard");
    assert_eq!(s.len(), 500);
    let loads = s.stats();
    assert_eq!(loads.shards.iter().map(|l| l.len).sum::<u64>(), 500);
}

#[test]
fn window_queries_match_per_shard_truth_and_prune_scatter() {
    let s = sharded(8);
    let mut batch = Batch::new();
    for i in 0..2000 {
        batch.insert(i, pos(i));
    }
    s.apply(&batch).unwrap();
    // A small corner window should scatter to a strict subset of shards.
    let window = Rect::new(0.0, 0.0, 0.12, 0.12);
    let q = s.query(&window).unwrap();
    assert!(q.shards_touched() < 8, "corner window scattered everywhere");
    let mut got: Vec<u64> = q.collect();
    got.sort_unstable();
    let mut want: Vec<u64> = (0..2000)
        .filter(|&i| window.contains_point(&pos(i)))
        .collect();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn cross_shard_update_moves_the_object() {
    let s = sharded(4);
    s.insert(1, Point::new(0.01, 0.01)).unwrap();
    // Move clear across the square — almost surely another shard.
    let from = s.route_point(Point::new(0.01, 0.01));
    let to = s.route_point(Point::new(0.99, 0.99));
    let ticket = s
        .update(1, Point::new(0.01, 0.01), Point::new(0.99, 0.99))
        .unwrap();
    assert_eq!(ticket.report().updated, 1);
    assert_eq!(ticket.report().applied, 1);
    assert_eq!(s.len(), 1);
    let found: Vec<u64> = s.query(&Rect::new(0.98, 0.98, 1.0, 1.0)).unwrap().collect();
    assert_eq!(found, vec![1]);
    let gone: Vec<u64> = s.query(&Rect::new(0.0, 0.0, 0.05, 0.05)).unwrap().collect();
    assert!(gone.is_empty());
    if from != to {
        assert_eq!(ticket.shards_touched(), 2);
    }
}

#[test]
fn knn_merge_is_globally_ordered() {
    let s = sharded(4);
    let mut batch = Batch::new();
    for i in 0..800 {
        batch.insert(i, pos(i));
    }
    s.apply(&batch).unwrap();
    let q = Point::new(0.4, 0.6);
    let got: Vec<_> = s.nearest(q, 25).unwrap().collect();
    assert_eq!(got.len(), 25);
    for w in got.windows(2) {
        assert!(w[0].distance <= w[1].distance, "merge emitted out of order");
    }
    // Against brute force.
    let mut truth: Vec<(f32, u64)> = (0..800).map(|i| (pos(i).distance(&q), i)).collect();
    truth.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    for (n, (d, oid)) in got.iter().zip(truth.iter()) {
        assert_eq!(n.oid, *oid);
        assert!((n.distance - d).abs() < 1e-6);
    }
}

#[test]
fn migration_preserves_contents_and_rebalances_ownership() {
    let s = sharded(2);
    let mut batch = Batch::new();
    for i in 0..600 {
        batch.insert(i, pos(i));
    }
    s.apply(&batch).unwrap();
    let before_len = s.len();
    let epoch0 = s.epoch();
    // Move the first quarter of the key space from shard 0 to shard 1.
    let quarter = bur_shard::key_space_for(s.order()) / 4;
    let report = s.migrate_range(0, quarter, 1).unwrap();
    assert!(report.moved > 0, "nothing lived in the first quarter");
    assert_eq!(report.from, 0);
    assert_eq!(report.to, 1);
    assert_eq!(s.epoch(), epoch0 + 1);
    assert_eq!(s.len(), before_len);
    // Every object is still found exactly once.
    let mut got: Vec<u64> = s.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().collect();
    got.sort_unstable();
    assert_eq!(got, (0..600).collect::<Vec<_>>());
    // Routing now sends the migrated keys to shard 1.
    assert!(s
        .segments()
        .first()
        .is_some_and(|seg| seg.shard == 1 && seg.start == 0));
    // Writes into the migrated range land on the new owner.
    let probe = (0..600u64)
        .map(pos)
        .find(|p| s.key_of(*p) < quarter)
        .expect("some point routes low");
    assert_eq!(s.route_point(probe), 1);
}

#[test]
fn migrate_range_rejects_bad_requests() {
    let s = sharded(2);
    let space = bur_shard::key_space_for(s.order());
    assert!(s.migrate_range(0, space / 4, 7).is_err(), "no such shard");
    assert!(s.migrate_range(10, 10, 1).is_err(), "empty range");
    // Spans both shards' ranges.
    assert!(s.migrate_range(0, space, 1).is_err());
    // Self-migration is a no-op, not an error.
    let r = s.migrate_range(0, space / 4, 0).unwrap();
    assert_eq!(r.moved, 0);
}

#[test]
fn rebalance_step_converges_on_a_hotspot() {
    let s = sharded(4);
    // Hotspot: everything in one tiny corner — all on one shard.
    let mut batch = Batch::new();
    for i in 0..400u64 {
        let x = 0.01 + (i as f32 % 20.0) / 2500.0;
        let y = 0.01 + (i as f32 / 20.0).floor() / 2500.0;
        batch.insert(i, Point::new(x, y));
    }
    s.apply(&batch).unwrap();
    let before = s.stats().imbalance;
    assert!(before > 2.0, "hotspot not skewed? imbalance {before}");
    let mut steps = 0;
    while s.rebalance_step().unwrap().is_some() {
        steps += 1;
        assert!(steps <= 16, "rebalance failed to converge");
    }
    let after = s.stats().imbalance;
    assert!(after < before, "imbalance {before} -> {after}");
    assert_eq!(s.len(), 400);
    let mut got: Vec<u64> = s.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().collect();
    got.sort_unstable();
    assert_eq!(got, (0..400).collect::<Vec<_>>());
}

#[test]
fn rect_objects_survive_scatter_via_extent_slack() {
    let s = sharded(4);
    // A wide rect whose center is far from the query window.
    s.insert_rect(7, Rect::new(0.1, 0.48, 0.9, 0.52)).unwrap();
    let window = Rect::new(0.85, 0.45, 0.95, 0.55); // touches the rect's edge
    let got: Vec<u64> = s.query(&window).unwrap().collect();
    assert_eq!(got, vec![7], "slack expansion missed the wide rect");
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "bur-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_shards(dir: &TempDir, n: usize) -> Vec<Bur> {
    (0..n)
        .map(|i| {
            let path = dir.file(&format!("shard{i}.bur"));
            let builder = IndexBuilder::generalized().durable().file(&path);
            let builder = if path.exists() {
                builder.open()
            } else {
                builder.create()
            };
            builder.build().unwrap()
        })
        .collect()
}

#[test]
fn manifest_persists_routing_across_reopen() {
    let dir = TempDir::new("manifest-reopen");
    let manifest = dir.file("idx.shardmap");
    {
        let s = ShardedBur::with_manifest(
            durable_shards(&dir, 2),
            ShardOptions::default(),
            manifest.clone(),
        )
        .unwrap();
        let mut batch = Batch::new();
        for i in 0..300 {
            batch.insert(i, pos(i));
        }
        s.apply(&batch).unwrap().wait().unwrap();
        let quarter = bur_shard::key_space_for(s.order()) / 4;
        s.migrate_range(0, quarter, 1).unwrap();
        s.persist().unwrap();
    }
    // Reopen: the migrated map must come back from the manifest.
    let s = ShardedBur::with_manifest(durable_shards(&dir, 2), ShardOptions::default(), manifest)
        .unwrap();
    assert_eq!(s.len(), 300);
    assert!(s
        .segments()
        .first()
        .is_some_and(|seg| seg.shard == 1 && seg.start == 0));
    let mut got: Vec<u64> = s.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().collect();
    got.sort_unstable();
    assert_eq!(got, (0..300).collect::<Vec<_>>());
}

#[test]
fn interrupted_migration_rolls_back_on_reopen() {
    let dir = TempDir::new("mig-rollback");
    let manifest = dir.file("idx.shardmap");
    let quarter;
    {
        let s = ShardedBur::with_manifest(
            durable_shards(&dir, 2),
            ShardOptions::default(),
            manifest.clone(),
        )
        .unwrap();
        let mut batch = Batch::new();
        for i in 0..300 {
            batch.insert(i, pos(i));
        }
        s.apply(&batch).unwrap().wait().unwrap();
        quarter = bur_shard::key_space_for(s.order()) / 4;

        // Simulate a crash mid-copy: copy part of the range to the
        // target by hand and leave an `intent` manifest behind.
        let mut m = bur_shard::load_manifest(&manifest).unwrap();
        m.migration = Some(bur_shard::Migration {
            lo: 0,
            hi: quarter,
            from: 0,
            to: 1,
            flipped: false,
        });
        bur_shard::store_manifest(&manifest, &m).unwrap();
        let mut copied = Batch::new();
        for i in 0..300u64 {
            let p = pos(i);
            if s.key_of(p) < quarter / 2 && s.route_point(p) == 0 {
                copied.insert(i, p);
            }
        }
        assert!(!copied.is_empty(), "nothing to copy — test vacuous");
        s.shard(1).apply(&copied).unwrap().wait().unwrap();
        s.persist().unwrap();
    }
    // Reopen: intent without commit rolls back — the partial copies
    // vanish, the map still names shard 0, nothing is lost.
    let s = ShardedBur::with_manifest(
        durable_shards(&dir, 2),
        ShardOptions::default(),
        manifest.clone(),
    )
    .unwrap();
    assert!(bur_shard::load_manifest(&manifest)
        .unwrap()
        .migration
        .is_none());
    assert_eq!(s.len(), 300);
    let mut got: Vec<u64> = s.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().collect();
    got.sort_unstable();
    assert_eq!(got, (0..300).collect::<Vec<_>>());
    assert!(s.segments().first().is_some_and(|seg| seg.shard == 0));
}

#[test]
fn committed_migration_rolls_forward_on_reopen() {
    let dir = TempDir::new("mig-forward");
    let manifest = dir.file("idx.shardmap");
    let quarter;
    {
        let s = ShardedBur::with_manifest(
            durable_shards(&dir, 2),
            ShardOptions::default(),
            manifest.clone(),
        )
        .unwrap();
        let mut batch = Batch::new();
        for i in 0..300 {
            batch.insert(i, pos(i));
        }
        s.apply(&batch).unwrap().wait().unwrap();
        quarter = bur_shard::key_space_for(s.order()) / 4;

        // Simulate a crash after the flip: the full range was copied
        // and the commit manifest written, but the source cleanup never
        // ran.
        let mut copied = Batch::new();
        for i in 0..300u64 {
            let p = pos(i);
            if s.key_of(p) < quarter && s.route_point(p) == 0 {
                copied.insert(i, p);
            }
        }
        assert!(!copied.is_empty(), "nothing to copy — test vacuous");
        s.shard(1).apply(&copied).unwrap().wait().unwrap();
        let mut m = bur_shard::load_manifest(&manifest).unwrap();
        m.migration = Some(bur_shard::Migration {
            lo: 0,
            hi: quarter,
            from: 0,
            to: 1,
            flipped: true,
        });
        // The commit record carries the flipped map.
        let mut map = s.segments().to_vec();
        map.retain(|seg| seg.start != 0);
        map.insert(0, bur_shard::Segment { start: 0, shard: 1 });
        if map.get(1).is_none_or(|seg| seg.start > quarter) {
            map.insert(
                1,
                bur_shard::Segment {
                    start: quarter,
                    shard: 0,
                },
            );
        }
        m.segments = map;
        bur_shard::store_manifest(&manifest, &m).unwrap();
        s.persist().unwrap();
    }
    // Reopen: commit present rolls forward — source copies deleted,
    // the new map stands, every object found exactly once.
    let s = ShardedBur::with_manifest(
        durable_shards(&dir, 2),
        ShardOptions::default(),
        manifest.clone(),
    )
    .unwrap();
    assert!(bur_shard::load_manifest(&manifest)
        .unwrap()
        .migration
        .is_none());
    assert_eq!(s.len(), 300);
    let mut got: Vec<u64> = s.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().collect();
    got.sort_unstable();
    assert_eq!(got, (0..300).collect::<Vec<_>>());
    assert!(s.segments().first().is_some_and(|seg| seg.shard == 1));
}
