//! Page-addressed disk backends.

use crate::{PageId, StorageError, StorageResult};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::Path;

/// A page-addressed disk: fixed-size pages, dense allocation from page 0.
///
/// Implementations must be thread-safe; the buffer pool serializes access
/// internally but tests may hit a disk from several threads directly.
pub trait DiskBackend: Send + Sync {
    /// Size of every page in bytes.
    fn page_size(&self) -> usize;

    /// Number of allocated pages (page ids `0..num_pages` are valid).
    fn num_pages(&self) -> u32;

    /// Allocate a fresh zero-filled page and return its id.
    fn allocate(&self) -> StorageResult<PageId>;

    /// Read page `pid` into `buf` (`buf.len()` must equal the page size).
    fn read(&self, pid: PageId, buf: &mut [u8]) -> StorageResult<()>;

    /// Write `buf` to page `pid` (`buf.len()` must equal the page size).
    fn write(&self, pid: PageId, buf: &[u8]) -> StorageResult<()>;

    /// Flush any backend-level caches to stable storage.
    fn sync(&self) -> StorageResult<()>;
}

fn check_len(page_size: usize, got: usize) -> StorageResult<()> {
    if got != page_size {
        return Err(StorageError::BadBufferLen {
            expected: page_size,
            got,
        });
    }
    Ok(())
}

/// An in-memory simulated disk.
///
/// This is the experiment workhorse: the paper's metric is the *number* of
/// page transfers, not their latency, so the disk only needs to be
/// addressable and countable. Every transfer still physically copies the
/// page so that bugs in dirty-tracking or eviction corrupt data loudly
/// instead of silently sharing buffers.
pub struct MemDisk {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
}

impl MemDisk {
    /// Create an empty disk with the given page size.
    #[must_use]
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to be useful");
        Self {
            page_size,
            pages: Mutex::new(Vec::new()),
        }
    }

    /// Create an empty disk with the paper's 1024-byte pages.
    #[must_use]
    pub fn default_size() -> Self {
        Self::new(crate::DEFAULT_PAGE_SIZE)
    }
}

impl DiskBackend for MemDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn allocate(&self) -> StorageResult<PageId> {
        let mut pages = self.pages.lock();
        if pages.len() >= (PageId::MAX as usize) {
            return Err(StorageError::DiskFull);
        }
        let pid = pages.len() as PageId;
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(pid)
    }

    fn read(&self, pid: PageId, buf: &mut [u8]) -> StorageResult<()> {
        check_len(self.page_size, buf.len())?;
        let pages = self.pages.lock();
        let page = pages
            .get(pid as usize)
            .ok_or(StorageError::PageOutOfBounds {
                pid,
                len: pages.len() as u32,
            })?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write(&self, pid: PageId, buf: &[u8]) -> StorageResult<()> {
        check_len(self.page_size, buf.len())?;
        let mut pages = self.pages.lock();
        let len = pages.len() as u32;
        let page = pages
            .get_mut(pid as usize)
            .ok_or(StorageError::PageOutOfBounds { pid, len })?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// A file-backed disk for persistence: page `pid` lives at byte offset
/// `pid * page_size`.
///
/// Used by the persistence tests and available to library users who want a
/// durable index; experiments use [`MemDisk`].
pub struct FileDisk {
    page_size: usize,
    file: File,
    num_pages: Mutex<u32>,
}

impl FileDisk {
    /// Create a new file (truncating any existing one).
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> StorageResult<Self> {
        assert!(page_size >= 64, "page size too small to be useful");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            page_size,
            file,
            num_pages: Mutex::new(0),
        })
    }

    /// Open an existing file; the page count is derived from its length.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> StorageResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let pages = (len / page_size as u64) as u32;
        Ok(Self {
            page_size,
            file,
            num_pages: Mutex::new(pages),
        })
    }

    fn offset(&self, pid: PageId) -> u64 {
        pid as u64 * self.page_size as u64
    }
}

#[cfg(unix)]
fn read_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_at(file: &File, buf: &[u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

impl DiskBackend for FileDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn allocate(&self) -> StorageResult<PageId> {
        let mut n = self.num_pages.lock();
        if *n == PageId::MAX {
            return Err(StorageError::DiskFull);
        }
        let pid = *n;
        // Extend the file with a zero page so reads of fresh pages succeed.
        let zeros = vec![0u8; self.page_size];
        write_at(&self.file, &zeros, self.offset(pid))?;
        *n += 1;
        Ok(pid)
    }

    fn read(&self, pid: PageId, buf: &mut [u8]) -> StorageResult<()> {
        check_len(self.page_size, buf.len())?;
        let n = *self.num_pages.lock();
        if pid >= n {
            return Err(StorageError::PageOutOfBounds { pid, len: n });
        }
        read_at(&self.file, buf, self.offset(pid))?;
        Ok(())
    }

    fn write(&self, pid: PageId, buf: &[u8]) -> StorageResult<()> {
        check_len(self.page_size, buf.len())?;
        let n = *self.num_pages.lock();
        if pid >= n {
            return Err(StorageError::PageOutOfBounds { pid, len: n });
        }
        write_at(&self.file, buf, self.offset(pid))?;
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskBackend) {
        let ps = disk.page_size();
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(disk.num_pages(), 2);

        let mut buf = vec![0u8; ps];
        disk.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0), "fresh pages are zeroed");

        let payload: Vec<u8> = (0..ps).map(|i| (i % 251) as u8).collect();
        disk.write(b, &payload).unwrap();
        disk.read(b, &mut buf).unwrap();
        assert_eq!(buf, payload);

        // Page a must be untouched.
        disk.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn memdisk_roundtrip() {
        roundtrip(&MemDisk::new(256));
    }

    /// Unit-test-local RAII dir (the integration tests share a richer
    /// helper in `tests/common`); removing only the file would leak the
    /// directory itself.
    struct TestDir(std::path::PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("bur-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn filedisk_roundtrip() {
        let dir = TestDir::new("filedisk");
        let path = dir.0.join("roundtrip.pages");
        roundtrip(&FileDisk::create(&path, 256).unwrap());
    }

    #[test]
    fn filedisk_reopen_preserves_pages() {
        let dir = TestDir::new("filedisk-re");
        let path = dir.0.join("reopen.pages");
        let payload = vec![42u8; 128];
        {
            let d = FileDisk::create(&path, 128).unwrap();
            let pid = d.allocate().unwrap();
            d.write(pid, &payload).unwrap();
            d.sync().unwrap();
        }
        {
            let d = FileDisk::open(&path, 128).unwrap();
            assert_eq!(d.num_pages(), 1);
            let mut buf = vec![0u8; 128];
            d.read(0, &mut buf).unwrap();
            assert_eq!(buf, payload);
        }
    }

    #[test]
    fn out_of_bounds_and_bad_len() {
        let d = MemDisk::new(128);
        let mut buf = vec![0u8; 128];
        assert!(matches!(
            d.read(0, &mut buf),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        d.allocate().unwrap();
        let mut short = vec![0u8; 64];
        assert!(matches!(
            d.read(0, &mut short),
            Err(StorageError::BadBufferLen { .. })
        ));
        assert!(matches!(
            d.write(0, &short),
            Err(StorageError::BadBufferLen { .. })
        ));
        assert!(matches!(
            d.write(5, &buf),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn concurrent_memdisk_access() {
        let d = std::sync::Arc::new(MemDisk::new(128));
        let mut ids = Vec::new();
        for _ in 0..8 {
            ids.push(d.allocate().unwrap());
        }
        std::thread::scope(|s| {
            for &pid in &ids {
                let d = d.clone();
                s.spawn(move || {
                    let payload = vec![pid as u8; 128];
                    for _ in 0..100 {
                        d.write(pid, &payload).unwrap();
                        let mut buf = vec![0u8; 128];
                        d.read(pid, &mut buf).unwrap();
                        assert_eq!(buf, payload);
                    }
                });
            }
        });
    }
}
