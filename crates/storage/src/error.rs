//! Error type for the storage substrate.

use crate::PageId;
use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by disks and the buffer pool.
#[derive(Debug)]
pub enum StorageError {
    /// A page id beyond the end of the disk was accessed.
    PageOutOfBounds {
        /// The offending page id.
        pid: PageId,
        /// Number of pages currently allocated.
        len: u32,
    },
    /// The caller passed a buffer whose length differs from the page size.
    BadBufferLen {
        /// Expected page size in bytes.
        expected: usize,
        /// Length of the buffer provided.
        got: usize,
    },
    /// The disk is full (page-id space exhausted).
    DiskFull,
    /// An underlying OS I/O error (file-backed disks only).
    Io(std::io::Error),
    /// A fault injected by [`crate::FaultyDisk`] (tests and failure
    /// drills only; real disks never raise this).
    InjectedFault {
        /// Operation class that failed ("read", "write", ...).
        op: &'static str,
        /// Page the operation addressed, when page-directed.
        pid: Option<PageId>,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds { pid, len } => {
                write!(f, "page {pid} out of bounds (disk has {len} pages)")
            }
            StorageError::BadBufferLen { expected, got } => {
                write!(f, "buffer length {got} does not match page size {expected}")
            }
            StorageError::DiskFull => write!(f, "disk full: page id space exhausted"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::InjectedFault { op, pid: Some(p) } => {
                write!(f, "injected fault: {op} of page {p}")
            }
            StorageError::InjectedFault { op, pid: None } => {
                write!(f, "injected fault: {op}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::PageOutOfBounds { pid: 7, len: 3 };
        assert!(e.to_string().contains("page 7"));
        let e = StorageError::BadBufferLen {
            expected: 1024,
            got: 512,
        };
        assert!(e.to_string().contains("512"));
        assert!(StorageError::DiskFull.to_string().contains("full"));
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
