//! Deterministic fault injection for disks.
//!
//! [`FaultyDisk`] wraps any [`DiskBackend`] and fails selected operations
//! with [`StorageError::InjectedFault`]. Schedules are explicit and
//! deterministic (fail the n-th read, fail every write to a page, fail
//! with a seeded probability), so robustness tests are reproducible:
//! the tests assert that faults surface as clean errors — never panics —
//! and that the structures above recover once the fault clears.

use crate::{DiskBackend, PageId, StorageError, StorageResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Which operation class a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail page reads.
    Read,
    /// Fail page writes.
    Write,
    /// Fail page allocations.
    Allocate,
    /// Fail `sync` calls.
    Sync,
    /// A power cut: the disk persists `after_writes` more writes, tears
    /// the write after that (only the first half of the page reaches the
    /// platter) and then stops persisting entirely — every later write,
    /// allocation and sync fails and leaves the disk unchanged. Reads
    /// keep working so recovery tooling can inspect what survived.
    ///
    /// Install with [`FaultyDisk::inject`] (the positional `fail_*`
    /// installers only understand the plain operation kinds).
    TornWrite {
        /// Number of writes that still reach stable storage before the
        /// cut (the cut write itself is the `after_writes`-th from now).
        after_writes: u64,
    },
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Read => "read",
            FaultKind::Write => "write",
            FaultKind::Allocate => "allocate",
            FaultKind::Sync => "sync",
            FaultKind::TornWrite { .. } => "torn-write",
        }
    }
}

/// One injection rule.
#[derive(Debug, Clone)]
enum Rule {
    /// Fail the operations whose (per-kind) sequence number lies in
    /// `[from, to)`, 0-based. `NthOps { from: 3, to: 4 }` fails exactly
    /// the fourth read (or write, ...).
    NthOps { kind: FaultKind, from: u64, to: u64 },
    /// Fail every access of `kind` touching page `pid`.
    Page { kind: FaultKind, pid: PageId },
    /// Fail everything of `kind` until cleared (a dead disk).
    Always { kind: FaultKind },
    /// Power cut at absolute write sequence number `at`: write `at` is
    /// torn (half-persisted), and all mutations after it are lost.
    PowerCut { at: u64 },
}

/// A [`DiskBackend`] decorator that injects deterministic faults.
///
/// ```
/// use bur_storage::{DiskBackend, FaultKind, FaultyDisk, MemDisk, StorageError};
/// use std::sync::Arc;
///
/// let disk = FaultyDisk::new(Arc::new(MemDisk::new(128)));
/// let pid = disk.allocate().unwrap();
/// disk.fail_page(FaultKind::Read, pid);
/// let mut buf = vec![0u8; 128];
/// assert!(matches!(
///     disk.read(pid, &mut buf),
///     Err(StorageError::InjectedFault { .. })
/// ));
/// disk.clear_faults();
/// assert!(disk.read(pid, &mut buf).is_ok());
/// ```
pub struct FaultyDisk {
    inner: Arc<dyn DiskBackend>,
    rules: Mutex<Vec<Rule>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    syncs: AtomicU64,
    injected: AtomicU64,
}

impl FaultyDisk {
    /// Wrap a disk. With no rules installed the wrapper is transparent.
    #[must_use]
    pub fn new(inner: Arc<dyn DiskBackend>) -> Self {
        Self {
            inner,
            rules: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Fail exactly the `n`-th operation of `kind` from now (0 = the next
    /// one), counting per kind.
    pub fn fail_nth(&self, kind: FaultKind, n: u64) {
        let base = self.seq(kind);
        self.rules.lock().push(Rule::NthOps {
            kind,
            from: base + n,
            to: base + n + 1,
        });
    }

    /// Fail the next `count` operations of `kind`.
    pub fn fail_next(&self, kind: FaultKind, count: u64) {
        let base = self.seq(kind);
        self.rules.lock().push(Rule::NthOps {
            kind,
            from: base,
            to: base + count,
        });
    }

    /// Fail every `kind` access to page `pid` until cleared.
    pub fn fail_page(&self, kind: FaultKind, pid: PageId) {
        self.rules.lock().push(Rule::Page { kind, pid });
    }

    /// Fail every operation of `kind` until cleared (a dead disk).
    pub fn fail_always(&self, kind: FaultKind) {
        self.rules.lock().push(Rule::Always { kind });
    }

    /// Install a fault by kind. For [`FaultKind::TornWrite`] this arms a
    /// power cut relative to the current write sequence; every other kind
    /// behaves like [`FaultyDisk::fail_always`].
    pub fn inject(&self, kind: FaultKind) {
        match kind {
            FaultKind::TornWrite { after_writes } => {
                let base = self.writes.load(Ordering::Relaxed);
                self.rules.lock().push(Rule::PowerCut {
                    at: base + after_writes,
                });
            }
            k => self.fail_always(k),
        }
    }

    /// The write sequence number at which an armed power cut tears (the
    /// earliest, when several are installed); `None` without one.
    #[must_use]
    pub fn power_cut_at(&self) -> Option<u64> {
        self.rules
            .lock()
            .iter()
            .filter_map(|r| match *r {
                Rule::PowerCut { at } => Some(at),
                _ => None,
            })
            .min()
    }

    /// `true` once an armed power cut has fired (the torn write happened;
    /// nothing after it persisted).
    #[must_use]
    pub fn power_cut_triggered(&self) -> bool {
        self.power_cut_at()
            .is_some_and(|at| self.writes.load(Ordering::Relaxed) > at)
    }

    /// Remove all rules; the disk behaves transparently again.
    pub fn clear_faults(&self) {
        self.rules.lock().clear();
    }

    /// Number of operations failed by injection so far.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn seq(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::Read => self.reads.load(Ordering::Relaxed),
            FaultKind::Write | FaultKind::TornWrite { .. } => self.writes.load(Ordering::Relaxed),
            FaultKind::Allocate => self.allocs.load(Ordering::Relaxed),
            FaultKind::Sync => self.syncs.load(Ordering::Relaxed),
        }
    }

    /// Account the operation and decide whether to fail it.
    fn check(&self, kind: FaultKind, pid: Option<PageId>) -> StorageResult<()> {
        let counter = match kind {
            FaultKind::Read => &self.reads,
            FaultKind::Write | FaultKind::TornWrite { .. } => &self.writes,
            FaultKind::Allocate => &self.allocs,
            FaultKind::Sync => &self.syncs,
        };
        let seq = counter.fetch_add(1, Ordering::Relaxed);
        self.check_seq(kind, seq, pid)
    }

    /// Decide whether the `seq`-th operation of `kind` fails, without
    /// touching the counters (the caller already accounted it).
    fn check_seq(&self, kind: FaultKind, seq: u64, pid: Option<PageId>) -> StorageResult<()> {
        let hit = self.rules.lock().iter().any(|rule| match *rule {
            Rule::NthOps { kind: k, from, to } => k == kind && (from..to).contains(&seq),
            Rule::Page { kind: k, pid: p } => k == kind && pid == Some(p),
            Rule::Always { kind: k } => k == kind,
            Rule::PowerCut { .. } => false, // handled by the write/sync paths
        });
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::InjectedFault {
                op: kind.label(),
                pid,
            });
        }
        Ok(())
    }

    /// `true` when a power cut forbids the mutation (cut already fired).
    fn power_lost(&self) -> StorageResult<()> {
        if self.power_cut_triggered() {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::InjectedFault {
                op: "torn-write",
                pid: None,
            });
        }
        Ok(())
    }
}

impl DiskBackend for FaultyDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn allocate(&self) -> StorageResult<PageId> {
        self.power_lost()?;
        self.check(FaultKind::Allocate, None)?;
        self.inner.allocate()
    }

    fn read(&self, pid: PageId, buf: &mut [u8]) -> StorageResult<()> {
        self.check(FaultKind::Read, Some(pid))?;
        self.inner.read(pid, buf)
    }

    fn write(&self, pid: PageId, buf: &[u8]) -> StorageResult<()> {
        let seq = self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(at) = self.power_cut_at() {
            if seq == at {
                // The cut write is torn: only the first half of the page
                // reaches stable storage; the rest keeps its old content.
                let mut torn = vec![0u8; buf.len()];
                if self.inner.read(pid, &mut torn).is_err() {
                    torn.fill(0);
                }
                let half = buf.len() / 2;
                torn[..half].copy_from_slice(&buf[..half]);
                let _ = self.inner.write(pid, &torn);
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::InjectedFault {
                    op: "torn-write",
                    pid: Some(pid),
                });
            }
            if seq > at {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::InjectedFault {
                    op: "torn-write",
                    pid: Some(pid),
                });
            }
        }
        self.check_seq(FaultKind::Write, seq, Some(pid))?;
        self.inner.write(pid, buf)
    }

    fn sync(&self) -> StorageResult<()> {
        self.power_lost()?;
        self.check(FaultKind::Sync, None)?;
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn faulty() -> FaultyDisk {
        let d = FaultyDisk::new(Arc::new(MemDisk::new(128)));
        for _ in 0..4 {
            d.allocate().unwrap();
        }
        d
    }

    #[test]
    fn transparent_without_rules() {
        let d = faulty();
        let mut buf = vec![0u8; 128];
        d.read(0, &mut buf).unwrap();
        d.write(1, &buf).unwrap();
        d.sync().unwrap();
        assert_eq!(d.injected_faults(), 0);
        assert_eq!(d.num_pages(), 4);
        assert_eq!(d.page_size(), 128);
    }

    #[test]
    fn nth_read_fails_once() {
        let d = faulty();
        let mut buf = vec![0u8; 128];
        d.fail_nth(FaultKind::Read, 1);
        d.read(0, &mut buf).unwrap(); // read #0
        let err = d.read(0, &mut buf).unwrap_err(); // read #1: injected
        assert!(matches!(
            err,
            StorageError::InjectedFault { op: "read", .. }
        ));
        d.read(0, &mut buf).unwrap(); // read #2 passes again
        assert_eq!(d.injected_faults(), 1);
    }

    #[test]
    fn fail_next_window() {
        let d = faulty();
        d.fail_next(FaultKind::Write, 2);
        let buf = vec![7u8; 128];
        assert!(d.write(0, &buf).is_err());
        assert!(d.write(0, &buf).is_err());
        assert!(d.write(0, &buf).is_ok());
        // The page never saw the failed payloads or did see the last one.
        let mut got = vec![0u8; 128];
        d.read(0, &mut got).unwrap();
        assert_eq!(got, buf);
    }

    #[test]
    fn page_targeted_fault() {
        let d = faulty();
        d.fail_page(FaultKind::Read, 2);
        let mut buf = vec![0u8; 128];
        d.read(1, &mut buf).unwrap();
        assert!(d.read(2, &mut buf).is_err());
        assert!(d.read(2, &mut buf).is_err(), "page faults persist");
        d.clear_faults();
        d.read(2, &mut buf).unwrap();
    }

    #[test]
    fn dead_disk_and_recovery() {
        let d = faulty();
        d.fail_always(FaultKind::Write);
        d.fail_always(FaultKind::Sync);
        let buf = vec![1u8; 128];
        assert!(d.write(0, &buf).is_err());
        assert!(d.sync().is_err());
        let mut r = vec![0u8; 128];
        d.read(0, &mut r).unwrap(); // reads unaffected
        d.clear_faults();
        d.write(0, &buf).unwrap();
        d.sync().unwrap();
    }

    #[test]
    fn allocation_faults() {
        let d = faulty();
        d.fail_nth(FaultKind::Allocate, 0);
        assert!(matches!(
            d.allocate(),
            Err(StorageError::InjectedFault { op: "allocate", .. })
        ));
        assert_eq!(d.num_pages(), 4, "failed allocation must not allocate");
        assert_eq!(d.allocate().unwrap(), 4);
    }

    #[test]
    fn torn_write_cuts_power_at_boundary() {
        let d = faulty();
        let a = vec![0xAAu8; 128];
        let b = vec![0xBBu8; 128];
        d.write(0, &a).unwrap();
        d.inject(FaultKind::TornWrite { after_writes: 1 });
        assert!(!d.power_cut_triggered());
        // Write #0 after arming still persists.
        d.write(1, &a).unwrap();
        // Write #1 is the cut: torn, and reported as a fault.
        let err = d.write(0, &b).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::InjectedFault {
                    op: "torn-write",
                    ..
                }
            ),
            "got {err}"
        );
        assert!(d.power_cut_triggered());
        // The torn page holds the new first half and the old second half.
        let mut got = vec![0u8; 128];
        d.read(0, &mut got).unwrap();
        assert!(got[..64].iter().all(|&x| x == 0xBB), "new prefix persisted");
        assert!(got[64..].iter().all(|&x| x == 0xAA), "old suffix survives");
        // Everything after the cut is lost: writes, allocations, syncs.
        assert!(d.write(1, &b).is_err());
        d.read(1, &mut got).unwrap();
        assert_eq!(got, a, "post-cut write must not persist");
        assert!(d.allocate().is_err());
        assert_eq!(d.num_pages(), 4);
        assert!(d.sync().is_err());
        // Reads still serve the surviving image (recovery inspects it).
        d.read(1, &mut got).unwrap();
        assert!(d.injected_faults() >= 4);
        // Power restored: the disk works again.
        d.clear_faults();
        d.write(1, &b).unwrap();
        d.sync().unwrap();
        assert!(d.power_cut_at().is_none());
    }

    #[test]
    fn torn_write_zero_budget_tears_next_write() {
        let d = faulty();
        d.inject(FaultKind::TornWrite { after_writes: 0 });
        assert_eq!(d.power_cut_at(), Some(0));
        let buf = vec![0x11u8; 128];
        assert!(d.write(2, &buf).is_err(), "the very next write is the cut");
        let mut got = vec![0u8; 128];
        d.read(2, &mut got).unwrap();
        assert!(got[..64].iter().all(|&x| x == 0x11));
        assert!(got[64..].iter().all(|&x| x == 0));
        // Sync before any further write also fails: the cut has fired.
        assert!(d.sync().is_err());
    }

    #[test]
    fn inject_of_plain_kind_is_fail_always() {
        let d = faulty();
        d.inject(FaultKind::Read);
        let mut buf = vec![0u8; 128];
        assert!(d.read(0, &mut buf).is_err());
        d.clear_faults();
        d.read(0, &mut buf).unwrap();
        assert_eq!(
            FaultKind::TornWrite { after_writes: 3 }.label(),
            "torn-write"
        );
    }

    #[test]
    fn error_message_names_op_and_page() {
        let d = faulty();
        d.fail_page(FaultKind::Write, 3);
        let err = d.write(3, &[0u8; 128]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("write") && msg.contains('3'), "got: {msg}");
    }
}
