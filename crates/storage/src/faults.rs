//! Deterministic fault injection for disks.
//!
//! [`FaultyDisk`] wraps any [`DiskBackend`] and fails selected operations
//! with [`StorageError::InjectedFault`]. Schedules are explicit and
//! deterministic (fail the n-th read, fail every write to a page, fail
//! with a seeded probability), so robustness tests are reproducible:
//! the tests assert that faults surface as clean errors — never panics —
//! and that the structures above recover once the fault clears.

use crate::{DiskBackend, PageId, StorageError, StorageResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Which operation class a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail page reads.
    Read,
    /// Fail page writes.
    Write,
    /// Fail page allocations.
    Allocate,
    /// Fail `sync` calls.
    Sync,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Read => "read",
            FaultKind::Write => "write",
            FaultKind::Allocate => "allocate",
            FaultKind::Sync => "sync",
        }
    }
}

/// One injection rule.
#[derive(Debug, Clone)]
enum Rule {
    /// Fail the operations whose (per-kind) sequence number lies in
    /// `[from, to)`, 0-based. `NthOps { from: 3, to: 4 }` fails exactly
    /// the fourth read (or write, ...).
    NthOps { kind: FaultKind, from: u64, to: u64 },
    /// Fail every access of `kind` touching page `pid`.
    Page { kind: FaultKind, pid: PageId },
    /// Fail everything of `kind` until cleared (a dead disk).
    Always { kind: FaultKind },
}

/// A [`DiskBackend`] decorator that injects deterministic faults.
///
/// ```
/// use bur_storage::{DiskBackend, FaultKind, FaultyDisk, MemDisk, StorageError};
/// use std::sync::Arc;
///
/// let disk = FaultyDisk::new(Arc::new(MemDisk::new(128)));
/// let pid = disk.allocate().unwrap();
/// disk.fail_page(FaultKind::Read, pid);
/// let mut buf = vec![0u8; 128];
/// assert!(matches!(
///     disk.read(pid, &mut buf),
///     Err(StorageError::InjectedFault { .. })
/// ));
/// disk.clear_faults();
/// assert!(disk.read(pid, &mut buf).is_ok());
/// ```
pub struct FaultyDisk {
    inner: Arc<dyn DiskBackend>,
    rules: Mutex<Vec<Rule>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    syncs: AtomicU64,
    injected: AtomicU64,
}

impl FaultyDisk {
    /// Wrap a disk. With no rules installed the wrapper is transparent.
    #[must_use]
    pub fn new(inner: Arc<dyn DiskBackend>) -> Self {
        Self {
            inner,
            rules: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Fail exactly the `n`-th operation of `kind` from now (0 = the next
    /// one), counting per kind.
    pub fn fail_nth(&self, kind: FaultKind, n: u64) {
        let base = self.seq(kind);
        self.rules.lock().push(Rule::NthOps {
            kind,
            from: base + n,
            to: base + n + 1,
        });
    }

    /// Fail the next `count` operations of `kind`.
    pub fn fail_next(&self, kind: FaultKind, count: u64) {
        let base = self.seq(kind);
        self.rules.lock().push(Rule::NthOps {
            kind,
            from: base,
            to: base + count,
        });
    }

    /// Fail every `kind` access to page `pid` until cleared.
    pub fn fail_page(&self, kind: FaultKind, pid: PageId) {
        self.rules.lock().push(Rule::Page { kind, pid });
    }

    /// Fail every operation of `kind` until cleared (a dead disk).
    pub fn fail_always(&self, kind: FaultKind) {
        self.rules.lock().push(Rule::Always { kind });
    }

    /// Remove all rules; the disk behaves transparently again.
    pub fn clear_faults(&self) {
        self.rules.lock().clear();
    }

    /// Number of operations failed by injection so far.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn seq(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::Read => self.reads.load(Ordering::Relaxed),
            FaultKind::Write => self.writes.load(Ordering::Relaxed),
            FaultKind::Allocate => self.allocs.load(Ordering::Relaxed),
            FaultKind::Sync => self.syncs.load(Ordering::Relaxed),
        }
    }

    /// Account the operation and decide whether to fail it.
    fn check(&self, kind: FaultKind, pid: Option<PageId>) -> StorageResult<()> {
        let counter = match kind {
            FaultKind::Read => &self.reads,
            FaultKind::Write => &self.writes,
            FaultKind::Allocate => &self.allocs,
            FaultKind::Sync => &self.syncs,
        };
        let seq = counter.fetch_add(1, Ordering::Relaxed);
        let hit = self.rules.lock().iter().any(|rule| match *rule {
            Rule::NthOps { kind: k, from, to } => k == kind && (from..to).contains(&seq),
            Rule::Page { kind: k, pid: p } => k == kind && pid == Some(p),
            Rule::Always { kind: k } => k == kind,
        });
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::InjectedFault {
                op: kind.label(),
                pid,
            });
        }
        Ok(())
    }
}

impl DiskBackend for FaultyDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn allocate(&self) -> StorageResult<PageId> {
        self.check(FaultKind::Allocate, None)?;
        self.inner.allocate()
    }

    fn read(&self, pid: PageId, buf: &mut [u8]) -> StorageResult<()> {
        self.check(FaultKind::Read, Some(pid))?;
        self.inner.read(pid, buf)
    }

    fn write(&self, pid: PageId, buf: &[u8]) -> StorageResult<()> {
        self.check(FaultKind::Write, Some(pid))?;
        self.inner.write(pid, buf)
    }

    fn sync(&self) -> StorageResult<()> {
        self.check(FaultKind::Sync, None)?;
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn faulty() -> FaultyDisk {
        let d = FaultyDisk::new(Arc::new(MemDisk::new(128)));
        for _ in 0..4 {
            d.allocate().unwrap();
        }
        d
    }

    #[test]
    fn transparent_without_rules() {
        let d = faulty();
        let mut buf = vec![0u8; 128];
        d.read(0, &mut buf).unwrap();
        d.write(1, &buf).unwrap();
        d.sync().unwrap();
        assert_eq!(d.injected_faults(), 0);
        assert_eq!(d.num_pages(), 4);
        assert_eq!(d.page_size(), 128);
    }

    #[test]
    fn nth_read_fails_once() {
        let d = faulty();
        let mut buf = vec![0u8; 128];
        d.fail_nth(FaultKind::Read, 1);
        d.read(0, &mut buf).unwrap(); // read #0
        let err = d.read(0, &mut buf).unwrap_err(); // read #1: injected
        assert!(matches!(
            err,
            StorageError::InjectedFault { op: "read", .. }
        ));
        d.read(0, &mut buf).unwrap(); // read #2 passes again
        assert_eq!(d.injected_faults(), 1);
    }

    #[test]
    fn fail_next_window() {
        let d = faulty();
        d.fail_next(FaultKind::Write, 2);
        let buf = vec![7u8; 128];
        assert!(d.write(0, &buf).is_err());
        assert!(d.write(0, &buf).is_err());
        assert!(d.write(0, &buf).is_ok());
        // The page never saw the failed payloads or did see the last one.
        let mut got = vec![0u8; 128];
        d.read(0, &mut got).unwrap();
        assert_eq!(got, buf);
    }

    #[test]
    fn page_targeted_fault() {
        let d = faulty();
        d.fail_page(FaultKind::Read, 2);
        let mut buf = vec![0u8; 128];
        d.read(1, &mut buf).unwrap();
        assert!(d.read(2, &mut buf).is_err());
        assert!(d.read(2, &mut buf).is_err(), "page faults persist");
        d.clear_faults();
        d.read(2, &mut buf).unwrap();
    }

    #[test]
    fn dead_disk_and_recovery() {
        let d = faulty();
        d.fail_always(FaultKind::Write);
        d.fail_always(FaultKind::Sync);
        let buf = vec![1u8; 128];
        assert!(d.write(0, &buf).is_err());
        assert!(d.sync().is_err());
        let mut r = vec![0u8; 128];
        d.read(0, &mut r).unwrap(); // reads unaffected
        d.clear_faults();
        d.write(0, &buf).unwrap();
        d.sync().unwrap();
    }

    #[test]
    fn allocation_faults() {
        let d = faulty();
        d.fail_nth(FaultKind::Allocate, 0);
        assert!(matches!(
            d.allocate(),
            Err(StorageError::InjectedFault { op: "allocate", .. })
        ));
        assert_eq!(d.num_pages(), 4, "failed allocation must not allocate");
        assert_eq!(d.allocate().unwrap(), 4);
    }

    #[test]
    fn error_message_names_op_and_page() {
        let d = faulty();
        d.fail_page(FaultKind::Write, 3);
        let err = d.write(3, &[0u8; 128]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("write") && msg.contains('3'), "got: {msg}");
    }
}
