//! Page storage substrate for the `bur` workspace.
//!
//! The VLDB 2003 bottom-up R-tree paper measures *average disk I/O per
//! operation* behind a buffer whose size is a percentage of the database
//! size (their reference \[8\] is Leutenegger & Lopez, "The Effect of
//! Buffering on the Performance of R-Trees"). This crate reproduces that
//! substrate:
//!
//! * [`DiskBackend`] — a page-addressed disk. Two implementations are
//!   provided: [`MemDisk`] (a simulated disk held in memory — the default
//!   for experiments, where only the *count* of physical accesses matters)
//!   and [`FileDisk`] (a real file, for persistence tests and durability).
//! * [`BufferPool`] — an LRU, write-back buffer pool. Fetching a cached
//!   page is free; a miss costs one physical read; evicting or flushing a
//!   dirty page costs one physical write. Capacity 0 models the paper's
//!   "0 % buffer" configuration (pages are kept only while pinned).
//! * [`IoStats`] / [`IoSnapshot`] — atomic counters and snapshot deltas,
//!   the measurement device behind every "Avg Disk I/O" figure.
//!
//! # Pinning and latching
//!
//! [`BufferPool::fetch`] returns a [`PageRef`] that pins the frame (it
//! cannot be evicted) and exposes the page bytes behind a `parking_lot`
//! read/write latch. Dropping the guard unpins the frame and, if the pool
//! is over capacity, triggers LRU eviction. Callers that hold several
//! guards at once (e.g. a root-to-leaf path) must acquire latches in a
//! consistent order; the R-tree crate always latches parent before child.
//!
//! # Write-ahead-log mode
//!
//! [`BufferPool::set_wal_mode`] switches the pool into a WAL-aware mode
//! for `bur-wal`-backed durability: every write-latched page is tracked
//! as *touched*, and a dirty frame may not be written back to disk until
//! its last logged image is durable (`page_lsn <= durable_lsn`) — the
//! classic WAL rule, plus no-steal for pages touched since the last
//! commit. Frames that cannot be written back simply stay resident, so
//! the pool may transiently exceed its capacity between commits.

#![warn(missing_docs)]

mod disk;
mod error;
mod faults;
mod lru;
mod pool;
mod replacer;
mod stats;

pub use disk::{DiskBackend, FileDisk, MemDisk};
pub use error::{StorageError, StorageResult};
pub use faults::{FaultKind, FaultyDisk};
pub use pool::{BufferPool, PageReadLatch, PageRef, PageWriteLatch, PoolConfig};
pub use replacer::EvictionPolicy;
pub use stats::{IoSnapshot, IoStats};

/// Identifier of a page on a disk. Pages are allocated densely from 0.
pub type PageId = u32;

/// A log sequence number: the position of a record in a write-ahead log.
/// Strictly increasing over the life of an index; 0 means "none yet".
pub type Lsn = u64;

/// When a write-ahead log makes appended records durable (`fsync`
/// cadence). Consumed by `bur-wal`; defined here because the WAL-aware
/// [`BufferPool`] mode and the log must agree on what "durable" means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Sync on every commit record: an acknowledged operation is always
    /// durable. The strongest (and slowest) setting; the default.
    #[default]
    EveryCommit,
    /// Group commit: sync once every `n` commits. Operations between
    /// syncs are acknowledged before they are durable and may be lost to
    /// a crash; throughput improves by amortizing the sync cost.
    GroupCommit(u32),
    /// Asynchronous group commit: every commit *requests* a sync and
    /// returns immediately; a background thread batches the requests into
    /// as few `fsync`s as the device allows and publishes the durable-LSN
    /// watermark as each batch lands. Committers overlap log I/O instead
    /// of serialising on it; callers that need a hard ack wait on the
    /// watermark. Same crash window as [`SyncPolicy::GroupCommit`]: an
    /// acknowledged-but-unsynced tail may be lost.
    Async,
    /// Sync only at checkpoints and explicit flushes. Maximum
    /// throughput, weakest durability.
    Manual,
}

/// Sentinel for "no page" (e.g. a leaf's missing parent pointer).
pub const INVALID_PAGE: PageId = PageId::MAX;

/// The paper's page size: "The page size is set to 1024 bytes for all
/// techniques."
pub const DEFAULT_PAGE_SIZE: usize = 1024;
