//! An O(1) intrusive LRU list over page ids.
//!
//! The buffer pool keeps *unpinned* frames in this list: most recently
//! used at the front, eviction victims popped from the back. All three
//! operations (`push_front`, `remove`, `pop_back`) are O(1) via a
//! doubly-linked list threaded through a hash map.

use crate::PageId;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Links {
    prev: Option<PageId>,
    next: Option<PageId>,
}

/// Doubly-linked LRU queue of page ids.
#[derive(Debug, Default)]
pub(crate) struct LruList {
    links: HashMap<PageId, Links>,
    head: Option<PageId>,
    tail: Option<PageId>,
}

impl LruList {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.links.len()
    }

    pub(crate) fn contains(&self, pid: PageId) -> bool {
        self.links.contains_key(&pid)
    }

    /// Insert `pid` as most-recently-used. Panics if already present
    /// (callers must `remove` first); this catches accounting bugs early.
    pub(crate) fn push_front(&mut self, pid: PageId) {
        debug_assert!(!self.contains(pid), "page {pid} already in LRU list");
        let old_head = self.head;
        self.links.insert(
            pid,
            Links {
                prev: None,
                next: old_head,
            },
        );
        if let Some(h) = old_head {
            self.links.get_mut(&h).expect("head must be linked").prev = Some(pid);
        }
        self.head = Some(pid);
        if self.tail.is_none() {
            self.tail = Some(pid);
        }
    }

    /// Remove `pid` from the list; returns `false` when absent.
    pub(crate) fn remove(&mut self, pid: PageId) -> bool {
        let Some(links) = self.links.remove(&pid) else {
            return false;
        };
        match links.prev {
            Some(p) => self.links.get_mut(&p).expect("prev must be linked").next = links.next,
            None => self.head = links.next,
        }
        match links.next {
            Some(n) => self.links.get_mut(&n).expect("next must be linked").prev = links.prev,
            None => self.tail = links.prev,
        }
        true
    }

    /// Pop the least-recently-used page id.
    pub(crate) fn pop_back(&mut self) -> Option<PageId> {
        let victim = self.tail?;
        self.remove(victim);
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_when_no_touches() {
        let mut l = LruList::new();
        for pid in 0..5 {
            l.push_front(pid);
        }
        assert_eq!(l.len(), 5);
        // 0 was pushed first => least recently used.
        assert_eq!(l.pop_back(), Some(0));
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new();
        for pid in 0..4 {
            l.push_front(pid);
        }
        // Touch page 0: remove + re-push.
        assert!(l.remove(0));
        l.push_front(0);
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(3));
        assert_eq!(l.pop_back(), Some(0));
        assert_eq!(l.pop_back(), None);
    }

    #[test]
    fn remove_middle_head_tail() {
        let mut l = LruList::new();
        for pid in 0..3 {
            l.push_front(pid);
        }
        assert!(l.remove(1)); // middle
        assert!(l.remove(2)); // head
        assert!(l.remove(0)); // tail (and only element)
        assert_eq!(l.len(), 0);
        assert_eq!(l.pop_back(), None);
        assert!(!l.remove(7));
    }

    #[test]
    fn interleaved_operations() {
        let mut l = LruList::new();
        l.push_front(10);
        l.push_front(20);
        assert_eq!(l.pop_back(), Some(10));
        l.push_front(30);
        assert!(l.contains(20));
        assert!(l.contains(30));
        assert_eq!(l.pop_back(), Some(20));
        assert_eq!(l.pop_back(), Some(30));
        assert_eq!(l.pop_back(), None);
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn model_check_against_vecdeque() {
        use std::collections::VecDeque;
        let mut l = LruList::new();
        let mut model: VecDeque<PageId> = VecDeque::new();
        // Deterministic pseudo-random op sequence.
        let mut state = 0x9e3779b9u32;
        for _ in 0..2000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let op = state % 3;
            let pid = (state >> 8) % 32;
            match op {
                0 => {
                    if !l.contains(pid) {
                        l.push_front(pid);
                        model.push_front(pid);
                    }
                }
                1 => {
                    let was = l.remove(pid);
                    let model_had = model.iter().any(|&x| x == pid);
                    assert_eq!(was, model_had);
                    model.retain(|&x| x != pid);
                }
                _ => {
                    assert_eq!(l.pop_back(), model.pop_back());
                }
            }
            assert_eq!(l.len(), model.len());
        }
    }
}
