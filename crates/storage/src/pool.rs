//! Write-back buffer pool (LRU or Clock replacement).

use crate::replacer::Replacer;
use crate::{DiskBackend, EvictionPolicy, IoStats, Lsn, PageId, StorageResult};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Buffer pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of *unpinned* frames retained in memory. `0` reproduces the
    /// paper's "0 % buffer": a page survives only while pinned, so every
    /// fetch is a physical read and every dirty page is written back as
    /// soon as its last guard drops.
    pub capacity: usize,
    /// Replacement policy for unpinned frames (LRU by default — the
    /// experiments' policy; Clock for the ablation).
    pub policy: EvictionPolicy,
}

impl Default for PoolConfig {
    fn default() -> Self {
        // A small default; experiments size this explicitly as a
        // percentage of the data pages (the paper's default is 1 %).
        Self {
            capacity: 128,
            policy: EvictionPolicy::Lru,
        }
    }
}

/// One cached page.
struct Frame {
    pid: PageId,
    data: RwLock<Box<[u8]>>,
    dirty: AtomicBool,
    pins: AtomicUsize,
}

struct PoolState {
    /// All resident frames, pinned or not.
    table: HashMap<PageId, Arc<Frame>>,
    /// Unpinned frames, ordered by the configured replacement policy.
    replacer: Replacer,
    /// Unpinned frames the WAL gate refused to evict (uncommitted or not
    /// yet durable). Parked out of the replacer so capacity sweeps never
    /// rescan them; they re-enter when the durable LSN advances
    /// ([`BufferPool::set_durable_lsn`]), on a checkpoint reset, or when
    /// they are re-pinned. Invariant: an unpinned resident frame is in
    /// exactly one of `replacer` / `parked`.
    parked: HashSet<PageId>,
}

/// Bookkeeping for the WAL-aware pool mode (see the crate docs).
#[derive(Default)]
struct WalGate {
    /// Pages write-latched since their last logged image ("touched"):
    /// their current content is not in the log yet, so writing them back
    /// would steal uncommitted data onto disk.
    touched: HashSet<PageId>,
    /// LSN of the last logged image of each page. A dirty frame may only
    /// be written back once the log is durable past this LSN.
    page_lsn: HashMap<PageId, Lsn>,
}

/// An LRU write-back buffer pool over a [`DiskBackend`].
///
/// * fetch hit — no physical I/O;
/// * fetch miss — one physical read;
/// * eviction or flush of a dirty frame — one physical write.
///
/// Frames returned by [`BufferPool::fetch`] are pinned until the guard is
/// dropped; pinned frames are never evicted. Capacity counts *unpinned*
/// frames, so deep operations can transiently hold more pages than the
/// capacity without failing, matching how the experiments in the paper
/// treat the buffer as a cache rather than a hard memory budget.
///
/// ```
/// use bur_storage::{BufferPool, MemDisk, PoolConfig};
/// use std::sync::Arc;
///
/// let pool = BufferPool::new(
///     Arc::new(MemDisk::new(1024)),
///     PoolConfig { capacity: 8, ..PoolConfig::default() },
/// );
/// let (pid, page) = pool.new_page().unwrap();
/// page.write()[0] = 42;
/// drop(page);
/// assert_eq!(pool.fetch(pid).unwrap().read()[0], 42);
/// // Physical I/O is counted at the pool:
/// assert_eq!(pool.stats().snapshot().reads, 0); // the page was cached
/// ```
pub struct BufferPool {
    disk: Arc<dyn DiskBackend>,
    capacity: AtomicUsize,
    state: Mutex<PoolState>,
    stats: IoStats,
    /// WAL-aware mode switch. Off by default; the hot paths only pay one
    /// relaxed atomic load while it stays off.
    wal_mode: AtomicBool,
    /// Touched-page and page-LSN tracking, live only in WAL mode.
    /// Lock order: `state` before `wal_gate` (never the reverse).
    wal_gate: Mutex<WalGate>,
    /// Highest LSN known durable in the log.
    durable_lsn: AtomicU64,
}

impl BufferPool {
    /// Create a pool over `disk`.
    #[must_use]
    pub fn new(disk: Arc<dyn DiskBackend>, config: PoolConfig) -> Self {
        Self {
            disk,
            capacity: AtomicUsize::new(config.capacity),
            state: Mutex::new(PoolState {
                table: HashMap::new(),
                replacer: Replacer::new(config.policy),
                parked: HashSet::new(),
            }),
            stats: IoStats::new(),
            wal_mode: AtomicBool::new(false),
            wal_gate: Mutex::new(WalGate::default()),
            durable_lsn: AtomicU64::new(0),
        }
    }

    // ---- WAL-aware mode --------------------------------------------------

    /// Switch the WAL-aware mode on or off (see the crate docs). Turning
    /// it off clears all gate state.
    pub fn set_wal_mode(&self, enabled: bool) {
        self.wal_mode.store(enabled, Ordering::Relaxed);
        if !enabled {
            let mut state = self.state.lock();
            {
                let mut gate = self.wal_gate.lock();
                gate.touched.clear();
                gate.page_lsn.clear();
            }
            Self::unpark_all(&mut state);
        }
    }

    /// `true` when the WAL-aware mode is active.
    #[must_use]
    pub fn wal_mode(&self) -> bool {
        self.wal_mode.load(Ordering::Relaxed)
    }

    /// Pages write-latched since their last logged image, sorted for
    /// deterministic log layouts. These are the pages a commit must log.
    #[must_use]
    pub fn touched_pages(&self) -> Vec<PageId> {
        let gate = self.wal_gate.lock();
        let mut v: Vec<PageId> = gate.touched.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Record that the current content of `pid` was appended to the log
    /// as `lsn`: the page is no longer touched, and becomes writable back
    /// to disk once the log is durable past `lsn`.
    pub fn note_page_logged(&self, pid: PageId, lsn: Lsn) {
        let mut gate = self.wal_gate.lock();
        gate.touched.remove(&pid);
        gate.page_lsn.insert(pid, lsn);
    }

    /// Publish the log's durable horizon; frames whose last image lies at
    /// or below it become flushable. Parked frames the gate had turned
    /// away re-enter the replacer here (and the capacity is re-enforced),
    /// so eviction is event-driven instead of rescanning blocked frames
    /// on every unpin.
    pub fn set_durable_lsn(&self, lsn: Lsn) {
        self.durable_lsn.store(lsn, Ordering::Relaxed);
        if !self.wal_mode.load(Ordering::Relaxed) {
            return;
        }
        let mut state = self.state.lock();
        if state.parked.is_empty() {
            return;
        }
        let unparked: Vec<PageId> = {
            let gate = self.wal_gate.lock();
            state
                .parked
                .iter()
                .copied()
                .filter(|pid| {
                    !gate.touched.contains(pid) && gate.page_lsn.get(pid).is_none_or(|&l| l <= lsn)
                })
                .collect()
        };
        for pid in unparked {
            state.parked.remove(&pid);
            state.replacer.insert(pid);
        }
        // Write-back errors have nowhere to report from here; the frames
        // are retained and the error resurfaces on the next flush.
        let _ = self.enforce_capacity(&mut state);
    }

    /// The published durable horizon.
    #[must_use]
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn.load(Ordering::Relaxed)
    }

    /// LSN of the last logged image of `pid`, when one was noted.
    #[must_use]
    pub fn page_lsn(&self, pid: PageId) -> Option<Lsn> {
        self.wal_gate.lock().page_lsn.get(&pid).copied()
    }

    /// `true` while `pid` is write-latched since its last logged image
    /// (its current content exists only in memory). Commit paths use this
    /// to decide which pages a batch must log.
    #[must_use]
    pub fn is_touched(&self, pid: PageId) -> bool {
        self.wal_gate.lock().touched.contains(&pid)
    }

    /// Pin `pid`, run `f` under its shared (S) latch, and unpin.
    ///
    /// The pin and latch are scoped to the call, so `f` must not attempt
    /// to latch the same frame again (the page latch is not reentrant).
    /// A miss performs one physical read, exactly like
    /// [`BufferPool::fetch`].
    ///
    /// ```
    /// use bur_storage::{BufferPool, MemDisk, PoolConfig};
    /// use std::sync::Arc;
    ///
    /// let pool = BufferPool::new(Arc::new(MemDisk::new(64)), PoolConfig::default());
    /// let (pid, page) = pool.new_page().unwrap();
    /// page.write()[2] = 5;
    /// drop(page);
    /// let v = pool.with_page_read(pid, |bytes| bytes[2]).unwrap();
    /// assert_eq!(v, 5);
    /// ```
    pub fn with_page_read<T>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> T) -> StorageResult<T> {
        let page = self.fetch(pid)?;
        let latch = page.read();
        Ok(f(&latch))
    }

    /// Pin `pid`, run `f` under its exclusive (X) latch, and unpin.
    ///
    /// Marks the frame dirty (and touched in WAL mode) like
    /// [`PageRef::write`]. Single-page read-modify-writes — the parent
    /// entry enlargement of the bottom-up update paths, for example — use
    /// this so the read, the decision, and the write are one atomic
    /// critical section with respect to every other latcher of the frame.
    ///
    /// ```
    /// use bur_storage::{BufferPool, MemDisk, PoolConfig};
    /// use std::sync::Arc;
    ///
    /// let pool = BufferPool::new(Arc::new(MemDisk::new(64)), PoolConfig::default());
    /// let (pid, page) = pool.new_page().unwrap();
    /// drop(page);
    /// pool.with_page_write(pid, |bytes| bytes[0] = bytes[0].max(9)).unwrap();
    /// assert_eq!(pool.with_page_read(pid, |b| b[0]).unwrap(), 9);
    /// ```
    pub fn with_page_write<T>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut [u8]) -> T,
    ) -> StorageResult<T> {
        let page = self.fetch(pid)?;
        let mut latch = page.write();
        Ok(f(&mut latch))
    }

    /// Checkpoint reset: after the caller has made the log durable and is
    /// about to flush every frame as the new base image, all per-page
    /// gate state is obsolete. Clears touched pages and page LSNs (so the
    /// following [`BufferPool::flush_all`] writes everything) and unparks
    /// every gated frame.
    pub fn wal_checkpoint_reset(&self) {
        let mut state = self.state.lock();
        {
            let mut gate = self.wal_gate.lock();
            gate.touched.clear();
            gate.page_lsn.clear();
        }
        Self::unpark_all(&mut state);
    }

    /// Page size of the underlying disk.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    /// The underlying disk.
    #[must_use]
    pub fn disk(&self) -> &Arc<dyn DiskBackend> {
        &self.disk
    }

    /// I/O counters (shared by all users of this pool).
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Current capacity in unpinned frames.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Number of resident frames (pinned + unpinned).
    #[must_use]
    pub fn resident(&self) -> usize {
        self.state.lock().table.len()
    }

    /// Change the capacity, evicting immediately if shrinking.
    pub fn set_capacity(&self, capacity: usize) -> StorageResult<()> {
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut state = self.state.lock();
        // Exhaustive (unbudgeted): an explicit shrink must land fully.
        Self::unpark_all(&mut state);
        self.enforce_capacity_inner(&mut state, usize::MAX)
    }

    /// Allocate a fresh zeroed page and return it pinned.
    pub fn new_page(&self) -> StorageResult<(PageId, PageRef<'_>)> {
        let pid = self.disk.allocate()?;
        self.stats.record_allocation();
        let frame = Arc::new(Frame {
            pid,
            data: RwLock::new(vec![0u8; self.disk.page_size()].into_boxed_slice()),
            dirty: AtomicBool::new(false),
            pins: AtomicUsize::new(1),
        });
        let mut state = self.state.lock();
        let prev = state.table.insert(pid, frame.clone());
        debug_assert!(prev.is_none(), "fresh page id {pid} already resident");
        drop(state);
        Ok((pid, PageRef { pool: self, frame }))
    }

    /// Fetch a page, pinning it. A miss performs one physical read.
    pub fn fetch(&self, pid: PageId) -> StorageResult<PageRef<'_>> {
        self.stats.record_fetch();
        let mut state = self.state.lock();
        if let Some(frame) = state.table.get(&pid).cloned() {
            let prev = frame.pins.fetch_add(1, Ordering::Relaxed);
            if prev == 0 {
                state.replacer.remove(pid);
                state.parked.remove(&pid);
            }
            return Ok(PageRef { pool: self, frame });
        }
        // Miss: read from disk while holding the state lock. This
        // serializes concurrent misses for the same page (no duplicate
        // frames) at the cost of serializing physical reads, which is fine
        // for a simulated disk.
        let mut buf = vec![0u8; self.disk.page_size()].into_boxed_slice();
        self.disk.read(pid, &mut buf)?;
        self.stats.record_read();
        let frame = Arc::new(Frame {
            pid,
            data: RwLock::new(buf),
            dirty: AtomicBool::new(false),
            pins: AtomicUsize::new(1),
        });
        state.table.insert(pid, frame.clone());
        Ok(PageRef { pool: self, frame })
    }

    /// Fetch a page the caller will *fully overwrite*, pinning it. Unlike
    /// [`BufferPool::fetch`], a miss does not read the old contents from
    /// disk (a "blind write"): the frame starts zeroed and is marked dirty
    /// by the caller's first write latch. Node rewrites use this so that a
    /// read-modify-write of one page costs exactly one read and one write
    /// even with a cold cache, matching the paper's I/O accounting
    /// ("R/W leaf node = 2").
    ///
    /// Contract: the caller **must** overwrite the whole page before the
    /// guard drops. On a miss the frame starts zeroed and already dirty,
    /// so skipping the overwrite would persist zeros.
    pub fn fetch_for_overwrite(&self, pid: PageId) -> StorageResult<PageRef<'_>> {
        self.stats.record_fetch();
        let mut state = self.state.lock();
        if let Some(frame) = state.table.get(&pid).cloned() {
            let prev = frame.pins.fetch_add(1, Ordering::Relaxed);
            if prev == 0 {
                state.replacer.remove(pid);
                state.parked.remove(&pid);
            }
            return Ok(PageRef { pool: self, frame });
        }
        let frame = Arc::new(Frame {
            pid,
            data: RwLock::new(vec![0u8; self.disk.page_size()].into_boxed_slice()),
            dirty: AtomicBool::new(true),
            pins: AtomicUsize::new(1),
        });
        state.table.insert(pid, frame.clone());
        // The frame is dirty from birth: gate it like any other write.
        if self.wal_mode.load(Ordering::Relaxed) {
            self.wal_gate.lock().touched.insert(pid);
        }
        Ok(PageRef { pool: self, frame })
    }

    /// Write all dirty frames back to disk (counting physical writes) and
    /// sync the backend. Frames stay resident. In WAL mode, frames whose
    /// last image is not yet durable in the log are silently skipped.
    pub fn flush_all(&self) -> StorageResult<()> {
        let state = self.state.lock();
        for frame in state.table.values() {
            self.write_back(frame)?;
        }
        self.disk.sync()
    }

    /// Flush dirty frames and drop every unpinned frame — a cold cache.
    /// In WAL mode, frames that may not leave memory yet stay resident.
    pub fn evict_all(&self) -> StorageResult<()> {
        let mut state = self.state.lock();
        // Give parked frames another chance: the gate may have opened
        // since they were turned away (the loop re-parks the rest).
        Self::unpark_all(&mut state);
        let mut retained = Vec::new();
        let mut result = Ok(());
        while let Some(victim) = state.replacer.evict() {
            let frame = state
                .table
                .get(&victim)
                .cloned()
                .expect("replacer entry must be resident");
            match self.write_back(&frame) {
                Ok(true) => {
                    state.table.remove(&victim);
                }
                Ok(false) => {
                    state.parked.insert(victim);
                }
                Err(e) => {
                    // Keep the frame (and the already-popped victims)
                    // reachable by the replacer; report the error after
                    // restoring consistency.
                    retained.push(victim);
                    result = Err(e);
                    break;
                }
            }
        }
        for pid in retained {
            state.replacer.insert(pid);
        }
        result?;
        // Pinned frames (if any) are flushed but stay resident.
        for frame in state.table.values() {
            self.write_back(frame)?;
        }
        self.disk.sync()
    }

    /// Write one frame back if dirty. Returns `false` when the WAL gate
    /// forbids it (uncommitted content, or image not yet durable): the
    /// frame keeps its dirty bit and must stay resident.
    fn write_back(&self, frame: &Frame) -> StorageResult<bool> {
        if !frame.dirty.load(Ordering::Relaxed) {
            return Ok(true);
        }
        if self.wal_mode.load(Ordering::Relaxed) {
            let gate = self.wal_gate.lock();
            let blocked = gate.touched.contains(&frame.pid)
                || gate
                    .page_lsn
                    .get(&frame.pid)
                    .is_some_and(|&lsn| lsn > self.durable_lsn.load(Ordering::Relaxed));
            if blocked {
                return Ok(false);
            }
        }
        if frame.dirty.swap(false, Ordering::Relaxed) {
            let data = frame.data.read();
            if let Err(e) = self.disk.write(frame.pid, &data) {
                // Restore the dirty bit (under the read latch, so no
                // concurrent writer can be lost): the frame still holds
                // the only copy and the next flush must retry it.
                frame.dirty.store(true, Ordering::Relaxed);
                return Err(e);
            }
            self.stats.record_write();
        }
        Ok(true)
    }

    /// Per-unpin capacity enforcement. Bounded: in WAL mode, dirty frames
    /// whose image is not yet durable cannot be written back, and between
    /// syncs there can be far more of them than the capacity. Without a
    /// budget every unpin would rescan all of them (O(resident) per
    /// operation); with one, each call examines a bounded slice and
    /// blocked victims re-enter at the MRU end, so successive sweeps
    /// rotate through different candidates and still reclaim every
    /// evictable frame.
    fn enforce_capacity(&self, state: &mut PoolState) -> StorageResult<()> {
        self.enforce_capacity_inner(state, 64)
    }

    fn enforce_capacity_inner(
        &self,
        state: &mut PoolState,
        mut budget: usize,
    ) -> StorageResult<()> {
        let cap = self.capacity.load(Ordering::Relaxed);
        let mut retained = Vec::new();
        let mut result = Ok(());
        while state.replacer.len() > cap && budget > 0 {
            budget -= 1;
            let Some(victim) = state.replacer.evict() else {
                break;
            };
            let frame = state
                .table
                .get(&victim)
                .cloned()
                .expect("replacer entry must be resident");
            match self.write_back(&frame) {
                Ok(true) => {
                    state.table.remove(&victim);
                }
                Ok(false) => {
                    // WAL gate: park out of the replacer until the
                    // durable horizon advances (no rescans meanwhile).
                    state.parked.insert(victim);
                }
                Err(e) => {
                    // The disk rejected the write-back. Keep the frame (and
                    // its dirty data) in memory so nothing is lost; the
                    // error resurfaces on the next explicit flush.
                    retained.push(victim);
                    result = Err(e);
                    break;
                }
            }
        }
        for pid in retained {
            state.replacer.insert(pid);
        }
        result
    }

    /// Move every parked frame back into the replacer (gate state
    /// changed wholesale; eviction sweeps re-park whatever is still
    /// blocked).
    fn unpark_all(state: &mut PoolState) {
        for pid in std::mem::take(&mut state.parked) {
            state.replacer.insert(pid);
        }
    }

    /// Called by [`PageRef::drop`].
    fn unpin(&self, frame: &Arc<Frame>) {
        let mut state = self.state.lock();
        let prev = frame.pins.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "unpin of unpinned frame {}", frame.pid);
        if prev == 1 {
            // Frame may have been force-removed by evict_all while pinned
            // is impossible (evict_all only pops unpinned); but a frame can
            // be re-fetched and unpinned concurrently — all under the state
            // lock, so the accounting here is exact.
            if state.table.contains_key(&frame.pid) {
                state.replacer.insert(frame.pid);
                // A write-back failure here has nowhere to report from a
                // destructor; enforce_capacity retains the frame (no data
                // is lost) and the error resurfaces on the next flush.
                let _ = self.enforce_capacity(&mut state);
            }
        }
    }
}

/// A pinned reference to a buffered page.
///
/// # Pins vs latches
///
/// A `PageRef` is a **pin**: it guarantees residency (the frame cannot be
/// evicted) but grants *no* access to the bytes. Byte access requires a
/// **latch** — [`PageRef::read`] (shared) or [`PageRef::write`]
/// (exclusive) — whose guard lifetime is independent of the pin. The two
/// lifetimes are deliberately separated so that an operation can keep a
/// page resident across several short latch windows (the bottom-up update
/// paths do exactly this), and so that pin counting never blocks on frame
/// contents.
///
/// The write latch marks the frame dirty (and, in WAL mode, *touched*).
/// Dropping the `PageRef` unpins the frame and may trigger eviction of
/// *other* (least-recently-used) frames — never of a frame whose latch or
/// pin is still held.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    frame: Arc<Frame>,
}

impl PageRef<'_> {
    /// Id of the pinned page.
    #[must_use]
    pub fn pid(&self) -> PageId {
        self.frame.pid
    }

    /// Acquire the shared (S) page latch.
    ///
    /// Blocks while another thread holds the exclusive latch on the same
    /// frame. Readers never observe a torn page: every writer mutates the
    /// bytes only under the exclusive latch.
    ///
    /// # Latch invariants
    ///
    /// * Hold at most one latch per frame per thread — the latch is not
    ///   reentrant, and S→X upgrade attempts on the same frame deadlock.
    /// * Callers that latch *multiple* frames must follow the crate-wide
    ///   latch order (parent before child, one-at-a-time in the bottom-up
    ///   paths); see `docs/ARCHITECTURE.md` ("Latching protocol").
    pub fn read(&self) -> PageReadLatch<'_> {
        PageReadLatch {
            guard: self.frame.data.read(),
        }
    }

    /// Acquire the exclusive (X) page latch and mark the frame dirty
    /// (and, in WAL mode, touched — its content must be logged before it
    /// may be written back).
    ///
    /// # Latch invariants
    ///
    /// Same ordering rules as [`PageRef::read`]. Additionally, the dirty
    /// and touched marks are set *before* latch acquisition: a concurrent
    /// commit that snapshots the touched set therefore either sees this
    /// page (and logs its post-write image after the latch drops) or the
    /// write happens entirely after the snapshot — never a lost update.
    pub fn write(&self) -> PageWriteLatch<'_> {
        self.frame.dirty.store(true, Ordering::Relaxed);
        if self.pool.wal_mode.load(Ordering::Relaxed) {
            self.pool.wal_gate.lock().touched.insert(self.frame.pid);
        }
        PageWriteLatch {
            guard: self.frame.data.write(),
        }
    }

    /// `true` when the frame has unwritten modifications.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.frame.dirty.load(Ordering::Relaxed)
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(&self.frame);
    }
}

/// Shared (S) latch on one page's bytes; see [`PageRef::read`].
///
/// Derefs to `[u8]`. Holding it blocks writers of *this* frame only;
/// frames are latched independently, which is what lets disjoint-granule
/// batches overlap physically.
///
/// ```
/// use bur_storage::{BufferPool, MemDisk, PoolConfig};
/// use std::sync::Arc;
///
/// let pool = BufferPool::new(Arc::new(MemDisk::new(64)), PoolConfig::default());
/// let (pid, page) = pool.new_page().unwrap();
/// page.write()[0] = 7; // exclusive latch, released at the end of the statement
/// let latch = page.read(); // shared latch
/// assert_eq!(latch[0], 7);
/// assert_eq!(latch.len(), 64);
/// # let _ = pid;
/// ```
pub struct PageReadLatch<'a> {
    guard: RwLockReadGuard<'a, Box<[u8]>>,
}

impl std::ops::Deref for PageReadLatch<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

/// Exclusive (X) latch on one page's bytes; see [`PageRef::write`].
///
/// Derefs to `[u8]` (mutably). Acquiring it has already marked the frame
/// dirty/touched, so the WAL gate can never write back a frame whose
/// mutation is still in flight.
///
/// ```
/// use bur_storage::{BufferPool, MemDisk, PoolConfig};
/// use std::sync::Arc;
///
/// let pool = BufferPool::new(Arc::new(MemDisk::new(64)), PoolConfig::default());
/// let (_pid, page) = pool.new_page().unwrap();
/// let mut latch = page.write();
/// latch.fill(3);
/// latch[1] = 9;
/// drop(latch); // X latch released; the pin (`page`) is still held
/// assert_eq!(page.read()[0], 3);
/// ```
pub struct PageWriteLatch<'a> {
    guard: RwLockWriteGuard<'a, Box<[u8]>>,
}

impl std::ops::Deref for PageWriteLatch<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.guard
    }
}

impl std::ops::DerefMut for PageWriteLatch<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDisk;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(
            Arc::new(MemDisk::new(128)),
            PoolConfig {
                capacity,
                ..PoolConfig::default()
            },
        )
    }

    #[test]
    fn hit_does_not_read_disk() {
        let p = pool(4);
        let (pid, guard) = p.new_page().unwrap();
        drop(guard);
        let before = p.stats().snapshot();
        let g = p.fetch(pid).unwrap();
        drop(g);
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.reads, 0, "resident page must not hit the disk");
        assert_eq!(d.fetches, 1);
    }

    #[test]
    fn miss_reads_once() {
        let p = pool(1);
        let (a, ga) = p.new_page().unwrap();
        {
            let mut w = ga.write();
            w[0] = 7;
        }
        drop(ga);
        let (_b, gb) = p.new_page().unwrap();
        drop(gb); // capacity 1: unpinning b evicts a (LRU), writing it back.
        let before = p.stats().snapshot();
        let g = p.fetch(a).unwrap();
        assert_eq!(g.read()[0], 7, "written data must survive eviction");
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.reads, 1);
    }

    #[test]
    fn dirty_eviction_counts_write() {
        let p = pool(0);
        let (pid, g) = p.new_page().unwrap();
        {
            let mut w = g.write();
            w[5] = 99;
        }
        let before = p.stats().snapshot();
        drop(g); // capacity 0: immediate write-back + eviction.
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.writes, 1);
        assert_eq!(p.resident(), 0);
        // Data must be on disk.
        let g = p.fetch(pid).unwrap();
        assert_eq!(g.read()[5], 99);
    }

    #[test]
    fn clean_eviction_skips_write() {
        let p = pool(0);
        let (pid, g) = p.new_page().unwrap();
        drop(g); // clean (never write-latched): no disk write
        let before = p.stats().snapshot();
        let g = p.fetch(pid).unwrap();
        drop(g);
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn pinned_frames_never_evicted() {
        let p = pool(0);
        let (pid, g) = p.new_page().unwrap();
        // Create pressure: allocate and drop several other pages.
        for _ in 0..4 {
            let (_x, gx) = p.new_page().unwrap();
            drop(gx);
        }
        assert_eq!(p.resident(), 1, "only the pinned page stays");
        assert_eq!(g.pid(), pid);
    }

    #[test]
    fn lru_victim_selection() {
        let p = pool(2);
        let (a, ga) = p.new_page().unwrap();
        let (b, gb) = p.new_page().unwrap();
        let (c, gc) = p.new_page().unwrap();
        drop(ga);
        drop(gb);
        drop(gc); // unpinned order: a, b, c → a is LRU, capacity 2 evicts a
        assert_eq!(p.resident(), 2);
        let before = p.stats().snapshot();
        drop(p.fetch(b).unwrap()); // hit
        drop(p.fetch(c).unwrap()); // hit
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.reads, 0);
        let before = p.stats().snapshot();
        drop(p.fetch(a).unwrap()); // miss
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.reads, 1);
    }

    #[test]
    fn refetch_refreshes_recency() {
        let p = pool(2);
        let (a, ga) = p.new_page().unwrap();
        let (b, gb) = p.new_page().unwrap();
        drop(ga);
        drop(gb);
        // Touch a so that b becomes the LRU victim.
        drop(p.fetch(a).unwrap());
        let (_c, gc) = p.new_page().unwrap();
        drop(gc); // evicts b
        let before = p.stats().snapshot();
        drop(p.fetch(a).unwrap());
        assert_eq!(p.stats().snapshot().since(&before).reads, 0);
        let before = p.stats().snapshot();
        drop(p.fetch(b).unwrap());
        assert_eq!(p.stats().snapshot().since(&before).reads, 1);
    }

    #[test]
    fn multiple_pins_same_page() {
        let p = pool(0);
        let (pid, g1) = p.new_page().unwrap();
        let g2 = p.fetch(pid).unwrap();
        drop(g1);
        assert_eq!(p.resident(), 1, "still pinned by g2");
        g2.write()[0] = 1;
        drop(g2);
        assert_eq!(p.resident(), 0);
        assert_eq!(p.fetch(pid).unwrap().read()[0], 1);
    }

    #[test]
    fn flush_all_writes_dirty_only() {
        let p = pool(8);
        let (_a, ga) = p.new_page().unwrap();
        let (_b, gb) = p.new_page().unwrap();
        ga.write()[0] = 1;
        drop(ga);
        drop(gb);
        let before = p.stats().snapshot();
        p.flush_all().unwrap();
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.writes, 1, "only the dirty frame is written");
        // Second flush: nothing dirty.
        let before = p.stats().snapshot();
        p.flush_all().unwrap();
        assert_eq!(p.stats().snapshot().since(&before).writes, 0);
    }

    #[test]
    fn evict_all_empties_cache() {
        let p = pool(8);
        for _ in 0..5 {
            let (_pid, g) = p.new_page().unwrap();
            g.write()[1] = 2;
            drop(g);
        }
        assert_eq!(p.resident(), 5);
        p.evict_all().unwrap();
        assert_eq!(p.resident(), 0);
        let before = p.stats().snapshot();
        drop(p.fetch(0).unwrap());
        assert_eq!(p.stats().snapshot().since(&before).reads, 1);
    }

    #[test]
    fn shrink_capacity_evicts() {
        let p = pool(8);
        for _ in 0..6 {
            let (_pid, g) = p.new_page().unwrap();
            drop(g);
        }
        assert_eq!(p.resident(), 6);
        p.set_capacity(2).unwrap();
        assert_eq!(p.resident(), 2);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn concurrent_fetch_stress() {
        let disk = Arc::new(MemDisk::new(128));
        let p = Arc::new(BufferPool::new(
            disk,
            PoolConfig {
                capacity: 4,
                ..PoolConfig::default()
            },
        ));
        let mut pids = Vec::new();
        for i in 0..16u8 {
            let (pid, g) = p.new_page().unwrap();
            g.write()[0] = i;
            drop(g);
            pids.push(pid);
        }
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = p.clone();
                let pids = pids.clone();
                s.spawn(move || {
                    for round in 0..200 {
                        let pid = pids[(t * 7 + round * 13) % pids.len()];
                        let g = p.fetch(pid).unwrap();
                        let v = g.read()[0];
                        assert_eq!(v as u32, pid, "page content must match id");
                    }
                });
            }
        });
        // Pool must still be consistent afterwards.
        p.flush_all().unwrap();
        for &pid in &pids {
            assert_eq!(p.fetch(pid).unwrap().read()[0] as u32, pid);
        }
    }

    #[test]
    fn overwrite_fetch_skips_read() {
        let p = pool(0);
        let (pid, g) = p.new_page().unwrap();
        g.write()[3] = 9;
        drop(g); // evicted + written (capacity 0)
        let before = p.stats().snapshot();
        let g = p.fetch_for_overwrite(pid).unwrap();
        {
            let mut w = g.write();
            w.fill(0);
            w[3] = 42;
        }
        drop(g);
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.reads, 0, "blind write must not read the old page");
        assert_eq!(d.writes, 1);
        assert_eq!(p.fetch(pid).unwrap().read()[3], 42);
    }

    #[test]
    fn overwrite_fetch_hits_cache() {
        let p = pool(4);
        let (pid, g) = p.new_page().unwrap();
        g.write()[0] = 5;
        drop(g);
        let g = p.fetch_for_overwrite(pid).unwrap();
        // Cached frame: old bytes still visible (caller overwrites anyway).
        assert_eq!(g.read()[0], 5);
        drop(g);
    }

    #[test]
    fn stats_accessors() {
        let p = pool(4);
        assert_eq!(p.page_size(), 128);
        assert_eq!(p.capacity(), 4);
        let (_pid, g) = p.new_page().unwrap();
        assert!(!g.is_dirty());
        g.write()[0] = 1;
        assert!(g.is_dirty());
        drop(g);
        assert_eq!(p.stats().snapshot().allocations, 1);
        assert_eq!(p.disk().num_pages(), 1);
    }

    #[test]
    fn wal_gate_blocks_touched_pages() {
        let p = pool(0); // capacity 0: everything evicts on unpin normally
        p.set_wal_mode(true);
        assert!(p.wal_mode());
        let (pid, g) = p.new_page().unwrap();
        g.write()[0] = 7;
        let before = p.stats().snapshot();
        drop(g); // would evict+write without the gate
        assert_eq!(p.stats().snapshot().since(&before).writes, 0);
        assert_eq!(p.resident(), 1, "uncommitted frame must stay resident");
        assert_eq!(p.touched_pages(), vec![pid]);
        // flush_all skips it too.
        p.flush_all().unwrap();
        assert_eq!(p.stats().snapshot().since(&before).writes, 0);
        // Log the image but keep it beyond the durable horizon: still held.
        p.note_page_logged(pid, 5);
        assert!(p.touched_pages().is_empty());
        assert_eq!(p.page_lsn(pid), Some(5));
        p.evict_all().unwrap();
        assert_eq!(p.resident(), 1, "undurable frame must stay resident");
        // Durable horizon catches up: the frame drains normally.
        p.set_durable_lsn(5);
        assert_eq!(p.durable_lsn(), 5);
        p.evict_all().unwrap();
        assert_eq!(p.resident(), 0);
        let d = p.stats().snapshot().since(&before);
        assert_eq!(d.writes, 1);
        assert_eq!(p.fetch(pid).unwrap().read()[0], 7);
    }

    #[test]
    fn gate_blocked_frames_park_and_unpark_on_durable_advance() {
        // Many undurable frames over a tiny capacity: the pool must stay
        // correct, and the durable-LSN advance must drain them without
        // the caller issuing explicit flushes.
        let p = pool(2);
        p.set_wal_mode(true);
        let mut pids = Vec::new();
        for i in 0..20u8 {
            let (pid, g) = p.new_page().unwrap();
            g.write()[0] = i;
            drop(g);
            p.note_page_logged(pid, u64::from(i) + 1);
            pids.push(pid);
        }
        // Nothing durable: everything is resident (parked), nothing hit
        // the disk.
        assert_eq!(p.resident(), 20);
        assert_eq!(p.stats().snapshot().writes, 0);
        // Half become durable: the advance evicts down toward capacity.
        p.set_durable_lsn(10);
        assert!(p.resident() <= 12, "resident: {}", p.resident());
        // All durable: the pool drains to its capacity.
        p.set_durable_lsn(20);
        assert_eq!(p.resident(), 2);
        // Data survived the parked phase.
        for (i, &pid) in pids.iter().enumerate() {
            assert_eq!(p.fetch(pid).unwrap().read()[0] as usize, i);
        }
    }

    #[test]
    fn parked_frame_can_be_refetched_and_modified() {
        let p = pool(0);
        p.set_wal_mode(true);
        let (pid, g) = p.new_page().unwrap();
        g.write()[0] = 1;
        drop(g); // parked (touched, unlogged)
        assert_eq!(p.resident(), 1);
        // Re-pin the parked frame, modify, unpin: still gated, no loss.
        let g = p.fetch(pid).unwrap();
        g.write()[0] = 2;
        drop(g);
        assert_eq!(p.resident(), 1);
        p.note_page_logged(pid, 7);
        p.set_durable_lsn(7); // unparks and (capacity 0) evicts + writes
        assert_eq!(p.resident(), 0);
        assert_eq!(p.fetch(pid).unwrap().read()[0], 2);
    }

    #[test]
    fn wal_checkpoint_reset_unblocks_everything() {
        let p = pool(8);
        p.set_wal_mode(true);
        let (_a, ga) = p.new_page().unwrap();
        let (_b, gb) = p.new_page().unwrap();
        ga.write()[0] = 1;
        gb.write()[0] = 2;
        drop(ga);
        drop(gb);
        let before = p.stats().snapshot();
        p.flush_all().unwrap();
        assert_eq!(p.stats().snapshot().since(&before).writes, 0);
        p.wal_checkpoint_reset();
        p.flush_all().unwrap();
        assert_eq!(p.stats().snapshot().since(&before).writes, 2);
        // Disabling WAL mode clears the gate as well.
        let (_c, gc) = p.new_page().unwrap();
        gc.write()[0] = 3;
        drop(gc);
        p.set_wal_mode(false);
        assert!(p.touched_pages().is_empty());
        p.flush_all().unwrap();
        assert_eq!(p.stats().snapshot().since(&before).writes, 3);
    }

    #[test]
    fn transient_write_fault_keeps_frame_dirty_for_retry() {
        use crate::{FaultKind, FaultyDisk};
        let disk = Arc::new(FaultyDisk::new(Arc::new(MemDisk::new(128))));
        let p = BufferPool::new(
            disk.clone(),
            PoolConfig {
                capacity: 8,
                ..PoolConfig::default()
            },
        );
        let (pid, g) = p.new_page().unwrap();
        g.write()[3] = 77;
        drop(g);
        disk.fail_next(FaultKind::Write, 1);
        assert!(p.flush_all().is_err(), "the injected fault must surface");
        disk.clear_faults();
        // The frame must still be dirty: this flush has to write it.
        let before = p.stats().snapshot();
        p.flush_all().unwrap();
        assert_eq!(p.stats().snapshot().since(&before).writes, 1);
        p.evict_all().unwrap();
        assert_eq!(p.fetch(pid).unwrap().read()[3], 77, "data reached disk");
    }

    #[test]
    fn evict_all_error_keeps_frames_reachable() {
        use crate::{FaultKind, FaultyDisk};
        let disk = Arc::new(FaultyDisk::new(Arc::new(MemDisk::new(128))));
        let p = BufferPool::new(
            disk.clone(),
            PoolConfig {
                capacity: 8,
                ..PoolConfig::default()
            },
        );
        for i in 0..4u8 {
            let (_pid, g) = p.new_page().unwrap();
            g.write()[0] = i;
            drop(g);
        }
        disk.fail_next(FaultKind::Write, 1);
        assert!(p.evict_all().is_err());
        disk.clear_faults();
        // Every frame popped before/at the error must still be evictable.
        p.evict_all().unwrap();
        assert_eq!(p.resident(), 0);
        for pid in 0..4u32 {
            assert_eq!(p.fetch(pid).unwrap().read()[0] as u32, pid);
        }
    }

    #[test]
    fn wal_mode_off_is_transparent() {
        let p = pool(0);
        let (pid, g) = p.new_page().unwrap();
        g.write()[0] = 9;
        drop(g);
        assert_eq!(p.resident(), 0, "default mode still evicts eagerly");
        assert!(p.touched_pages().is_empty());
        assert_eq!(p.page_lsn(pid), None);
    }

    #[test]
    fn clock_pool_serves_correct_data_under_pressure() {
        let p = BufferPool::new(
            Arc::new(MemDisk::new(128)),
            PoolConfig {
                capacity: 3,
                policy: crate::EvictionPolicy::Clock,
            },
        );
        let mut pids = Vec::new();
        for i in 0..12u8 {
            let (pid, g) = p.new_page().unwrap();
            g.write()[0] = i;
            drop(g);
            pids.push(pid);
        }
        assert!(p.resident() <= 3);
        // Sweep twice; every page must come back intact regardless of the
        // clock's victim choices.
        for round in 0..2 {
            for (i, &pid) in pids.iter().enumerate() {
                let g = p.fetch(pid).unwrap();
                assert_eq!(g.read()[0] as usize, i, "round {round}");
            }
        }
    }

    #[test]
    fn clock_retains_hot_page_through_scan() {
        // The point of the second chance: a page touched between scans
        // keeps its reference bit set and survives eviction pressure from
        // one-shot pages.
        let p = BufferPool::new(
            Arc::new(MemDisk::new(128)),
            PoolConfig {
                capacity: 4,
                policy: crate::EvictionPolicy::Clock,
            },
        );
        let (hot, g) = p.new_page().unwrap();
        g.write()[0] = 0xAA;
        drop(g);
        let mut cold = Vec::new();
        for _ in 0..8 {
            let (pid, g) = p.new_page().unwrap();
            drop(g);
            cold.push(pid);
        }
        // Scan the cold pages while re-touching the hot one in between.
        let before = p.stats().snapshot();
        for chunk in cold.chunks(2) {
            for &pid in chunk {
                drop(p.fetch(pid).unwrap());
            }
            drop(p.fetch(hot).unwrap());
        }
        let d = p.stats().snapshot().since(&before);
        // The hot page was fetched 4 times; at most its first fetch may
        // have missed.
        assert!(
            d.reads <= cold.len() as u64 + 1,
            "hot page should not thrash: {d}"
        );
    }
}
