//! Frame replacement policies.
//!
//! The paper runs every experiment behind a buffer and cites Leutenegger
//! & Lopez ("The Effect of Buffering on the Performance of R-Trees") for
//! the setup; that study compares replacement policies on R-tree page
//! streams. The pool therefore supports two:
//!
//! * **LRU** (default, and what the experiments use): exact
//!   least-recently-used via a doubly-linked list.
//! * **Clock** (second chance): an approximation that trades exactness
//!   for O(1) state per frame and no list maintenance on hits — what
//!   production buffer managers typically deploy.
//!
//! Both implement one interface over *unpinned* page ids: `insert` when a
//! frame loses its last pin, `remove` when it is re-pinned, `evict` to
//! pick a victim.

use crate::lru::LruList;
use crate::PageId;
use std::collections::HashMap;

/// Which replacement policy a [`crate::BufferPool`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Exact least-recently-used (the experiments' policy).
    #[default]
    Lru,
    /// Clock / second chance: a frame's reference bit is set on insert
    /// and spends one sweep being cleared before the frame is evictable.
    Clock,
}

/// Policy-dispatched replacement state.
#[derive(Debug)]
pub(crate) enum Replacer {
    Lru(LruList),
    Clock(ClockRing),
}

impl Replacer {
    pub(crate) fn new(policy: EvictionPolicy) -> Self {
        match policy {
            EvictionPolicy::Lru => Replacer::Lru(LruList::new()),
            EvictionPolicy::Clock => Replacer::Clock(ClockRing::default()),
        }
    }

    /// Number of unpinned frames tracked.
    pub(crate) fn len(&self) -> usize {
        match self {
            Replacer::Lru(l) => l.len(),
            Replacer::Clock(c) => c.live,
        }
    }

    /// Track a frame that just lost its last pin.
    pub(crate) fn insert(&mut self, pid: PageId) {
        match self {
            Replacer::Lru(l) => l.push_front(pid),
            Replacer::Clock(c) => c.insert(pid),
        }
    }

    /// Stop tracking a frame (it was re-pinned or force-evicted).
    /// Returns `false` when the frame was not tracked.
    pub(crate) fn remove(&mut self, pid: PageId) -> bool {
        match self {
            Replacer::Lru(l) => l.remove(pid),
            Replacer::Clock(c) => c.remove(pid),
        }
    }

    /// Choose and untrack a victim; `None` when empty.
    pub(crate) fn evict(&mut self) -> Option<PageId> {
        match self {
            Replacer::Lru(l) => l.pop_back(),
            Replacer::Clock(c) => c.evict(),
        }
    }
}

/// A clock over a growable slot vector. Removed entries leave tombstones
/// that the sweep skips; the vector is compacted when tombstones dominate
/// so memory stays proportional to the live count.
#[derive(Debug, Default)]
pub(crate) struct ClockRing {
    /// `(pid, referenced)` or a tombstone.
    slots: Vec<Option<(PageId, bool)>>,
    /// pid → slot index.
    pos: HashMap<PageId, usize>,
    /// The clock hand: next slot the sweep examines.
    hand: usize,
    /// Number of live (non-tombstone) slots.
    live: usize,
}

impl ClockRing {
    fn insert(&mut self, pid: PageId) {
        debug_assert!(!self.pos.contains_key(&pid), "page {pid} already in clock");
        self.pos.insert(pid, self.slots.len());
        self.slots.push(Some((pid, true)));
        self.live += 1;
    }

    fn remove(&mut self, pid: PageId) -> bool {
        match self.pos.remove(&pid) {
            Some(idx) => {
                self.slots[idx] = None;
                self.live -= 1;
                self.maybe_compact();
                true
            }
            None => false,
        }
    }

    fn evict(&mut self) -> Option<PageId> {
        if self.live == 0 {
            return None;
        }
        // At most two sweeps: the first clears reference bits, the second
        // must find a victim.
        for _ in 0..2 * self.slots.len() {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            let idx = self.hand;
            self.hand += 1;
            match &mut self.slots[idx] {
                None => {}
                Some((_, referenced @ true)) => *referenced = false, // second chance
                Some((pid, false)) => {
                    let pid = *pid;
                    self.slots[idx] = None;
                    self.pos.remove(&pid);
                    self.live -= 1;
                    self.maybe_compact();
                    return Some(pid);
                }
            }
        }
        unreachable!("a live entry must be evictable within two sweeps");
    }

    /// Rebuild without tombstones, preserving sweep order from the hand.
    fn maybe_compact(&mut self) {
        if self.slots.len() < 32 || self.slots.len() < 2 * self.live.max(1) {
            return;
        }
        let n = self.slots.len();
        let mut fresh = Vec::with_capacity(self.live);
        for i in 0..n {
            let idx = (self.hand + i) % n;
            if let Some(entry) = self.slots[idx] {
                fresh.push(Some(entry));
            }
        }
        self.pos = fresh
            .iter()
            .enumerate()
            .map(|(i, e)| (e.expect("compacted entries are live").0, i))
            .collect();
        self.slots = fresh;
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_gives_second_chance() {
        let mut r = Replacer::new(EvictionPolicy::Clock);
        r.insert(1);
        r.insert(2);
        r.insert(3);
        // First sweep clears 1, 2, 3's bits; the sweep continues and
        // evicts 1 (oldest with a cleared bit).
        assert_eq!(r.evict(), Some(1));
        // Re-reference 2 by re-pin/unpin: remove + insert sets its bit.
        assert!(r.remove(2));
        r.insert(2);
        // 3's bit is already clear → evicted before the re-referenced 2.
        assert_eq!(r.evict(), Some(3));
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), None);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn lru_exact_order() {
        let mut r = Replacer::new(EvictionPolicy::Lru);
        r.insert(1);
        r.insert(2);
        r.insert(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.evict(), Some(1));
        assert!(r.remove(2));
        r.insert(2); // 2 becomes most recent
        assert_eq!(r.evict(), Some(3));
        assert_eq!(r.evict(), Some(2));
        assert_eq!(r.evict(), None);
    }

    #[test]
    fn remove_absent_is_false() {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Clock] {
            let mut r = Replacer::new(policy);
            assert!(!r.remove(9));
            r.insert(9);
            assert!(r.remove(9));
            assert!(!r.remove(9));
            assert_eq!(r.evict(), None);
        }
    }

    #[test]
    fn clock_compaction_preserves_entries() {
        let mut r = Replacer::new(EvictionPolicy::Clock);
        // Heavy churn to force tombstone buildup and compaction.
        for pid in 0..200u32 {
            r.insert(pid);
        }
        for pid in 0..150u32 {
            assert!(r.remove(pid));
        }
        assert_eq!(r.len(), 50);
        // All 50 survivors must come out exactly once.
        let mut evicted = Vec::new();
        while let Some(pid) = r.evict() {
            evicted.push(pid);
        }
        evicted.sort_unstable();
        let expect: Vec<u32> = (150..200).collect();
        assert_eq!(evicted, expect);
    }

    #[test]
    fn clock_interleaved_churn_is_consistent() {
        let mut r = Replacer::new(EvictionPolicy::Clock);
        let mut tracked = std::collections::HashSet::new();
        for round in 0..500u32 {
            let pid = round % 37;
            if tracked.contains(&pid) {
                assert!(r.remove(pid));
                tracked.remove(&pid);
            } else {
                r.insert(pid);
                tracked.insert(pid);
            }
            if round % 11 == 0 {
                if let Some(victim) = r.evict() {
                    assert!(tracked.remove(&victim), "evicted untracked {victim}");
                }
            }
            assert_eq!(r.len(), tracked.len());
        }
    }
}
