//! Physical/logical I/O accounting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic I/O counters owned by a [`crate::BufferPool`].
///
/// *Physical* reads and writes are transfers between the pool and the
/// disk; *logical* fetches count every page request regardless of whether
/// it hit the pool. The paper's "Avg Disk I/O" metric is
/// `(physical reads + physical writes) / operations`, measured as deltas
/// of [`IoSnapshot`]s around each batch of operations.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    fetches: AtomicU64,
    allocations: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one physical page read.
    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one physical page write.
    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one logical fetch (hit or miss).
    #[inline]
    pub fn record_fetch(&self) {
        self.fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one page allocation.
    #[inline]
    pub fn record_allocation(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.fetches.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`], supporting subtraction to obtain
/// per-phase deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Physical page reads.
    pub reads: u64,
    /// Physical page writes.
    pub writes: u64,
    /// Logical fetches (pool hits + misses).
    pub fetches: u64,
    /// Pages allocated.
    pub allocations: u64,
}

impl IoSnapshot {
    /// Total physical transfers — the paper's "disk I/O".
    #[must_use]
    pub fn physical(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counter-wise difference `self − earlier` (saturating).
    #[must_use]
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            fetches: self.fetches.saturating_sub(earlier.fetches),
            allocations: self.allocations.saturating_sub(earlier.allocations),
        }
    }

    /// Buffer hit ratio over this snapshot's window (`1 − reads/fetches`);
    /// `None` when no fetches happened.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        if self.fetches == 0 {
            None
        } else {
            Some(1.0 - self.reads as f64 / self.fetches as f64)
        }
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} fetches={} allocs={}",
            self.reads, self.writes, self.fetches, self.allocations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_fetch();
        s.record_allocation();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.fetches, 1);
        assert_eq!(snap.allocations, 1);
        assert_eq!(snap.physical(), 3);
    }

    #[test]
    fn delta_between_snapshots() {
        let s = IoStats::new();
        s.record_read();
        let a = s.snapshot();
        s.record_read();
        s.record_write();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
        assert_eq!(d.physical(), 2);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record_read();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn hit_ratio() {
        let mut snap = IoSnapshot::default();
        assert!(snap.hit_ratio().is_none());
        snap.fetches = 10;
        snap.reads = 2;
        assert!((snap.hit_ratio().unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        let s = IoStats::new();
        s.record_write();
        assert!(s.snapshot().to_string().contains("writes=1"));
    }
}
