//! Model-based property test for the buffer pool: under arbitrary
//! operation sequences (allocation, reads, writes, flushes, eviction,
//! capacity changes) the pool must never lose or corrupt a byte, and its
//! I/O counters must respect basic conservation laws.

use bur_storage::{BufferPool, EvictionPolicy, MemDisk, PoolConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn arb_policy() -> impl Strategy<Value = EvictionPolicy> {
    prop_oneof![Just(EvictionPolicy::Lru), Just(EvictionPolicy::Clock)]
}

/// Number of distinct pages among the held guards (a page may be pinned
/// several times but occupies one frame).
fn distinct_pids(pinned: &[bur_storage::PageRef<'_>]) -> usize {
    let mut ids: Vec<u32> = pinned.iter().map(|g| g.pid()).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

#[derive(Debug, Clone)]
enum Op {
    New(u8),
    Write(u8, u8),
    /// Blind write through `fetch_for_overwrite`: overwrites the whole
    /// page without reading the old content from disk.
    BlindWrite(u8, u8),
    Read(u8),
    /// Fetch a page and *hold* the guard across later operations.
    Pin(u8),
    /// Drop the oldest held guard.
    Unpin,
    Flush,
    EvictAll,
    SetCapacity(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => any::<u8>().prop_map(Op::New),
        4 => (any::<u8>(), any::<u8>()).prop_map(|(p, v)| Op::Write(p, v)),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(p, v)| Op::BlindWrite(p, v)),
        4 => any::<u8>().prop_map(Op::Read),
        2 => any::<u8>().prop_map(Op::Pin),
        2 => Just(Op::Unpin),
        1 => Just(Op::Flush),
        1 => Just(Op::EvictAll),
        1 => (0u8..8).prop_map(Op::SetCapacity),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn pool_never_loses_data(
        ops in proptest::collection::vec(arb_op(), 1..200),
        policy in arb_policy(),
    ) {
        let pool = BufferPool::new(
            Arc::new(MemDisk::new(128)),
            PoolConfig { capacity: 2, policy },
        );
        // Model: page id -> the byte we last wrote at offset 7.
        let mut model: HashMap<u32, u8> = HashMap::new();
        let mut pids: Vec<u32> = Vec::new();
        // Guards held open across operations (pinned frames).
        let mut pinned = Vec::new();
        for op in ops {
            match op {
                Op::New(v) => {
                    let (pid, guard) = pool.new_page().unwrap();
                    guard.write()[7] = v;
                    drop(guard);
                    model.insert(pid, v);
                    pids.push(pid);
                }
                Op::Write(which, v) => {
                    if pids.is_empty() { continue; }
                    let pid = pids[which as usize % pids.len()];
                    let guard = pool.fetch(pid).unwrap();
                    guard.write()[7] = v;
                    drop(guard);
                    model.insert(pid, v);
                }
                Op::BlindWrite(which, v) => {
                    if pids.is_empty() { continue; }
                    let pid = pids[which as usize % pids.len()];
                    let guard = pool.fetch_for_overwrite(pid).unwrap();
                    {
                        // Contract: a blind write overwrites the whole page.
                        let mut w = guard.write();
                        w.fill(0);
                        w[7] = v;
                    }
                    drop(guard);
                    model.insert(pid, v);
                }
                Op::Read(which) => {
                    if pids.is_empty() { continue; }
                    let pid = pids[which as usize % pids.len()];
                    let guard = pool.fetch(pid).unwrap();
                    let got = guard.read()[7];
                    prop_assert_eq!(got, model[&pid], "page {} corrupted", pid);
                }
                Op::Pin(which) => {
                    if pids.is_empty() { continue; }
                    let pid = pids[which as usize % pids.len()];
                    pinned.push(pool.fetch(pid).unwrap());
                }
                Op::Unpin => {
                    if !pinned.is_empty() {
                        pinned.remove(0);
                    }
                }
                Op::Flush => pool.flush_all().unwrap(),
                Op::EvictAll => pool.evict_all().unwrap(),
                Op::SetCapacity(c) => pool.set_capacity(c as usize).unwrap(),
            }
            // Conservation: fetches >= physical reads; pinned frames are
            // always resident and still serve fresh content.
            let snap = pool.stats().snapshot();
            prop_assert!(snap.fetches >= snap.reads);
            prop_assert!(pool.resident() >= distinct_pids(&pinned));
            for guard in &pinned {
                prop_assert_eq!(guard.read()[7], model[&guard.pid()],
                    "pinned page {} corrupted", guard.pid());
            }
        }
        // Final audit: every page readable with the right content, even
        // while some frames are still pinned.
        for (&pid, &v) in &model {
            let guard = pool.fetch(pid).unwrap();
            prop_assert_eq!(guard.read()[7], v);
        }
        // Dropping the pins and evicting everything: the disk alone must
        // hold the truth (pinned frames were flushed, not lost).
        pool.evict_all().unwrap();
        drop(pinned);
        pool.evict_all().unwrap();
        prop_assert_eq!(pool.resident(), 0);
        for (&pid, &v) in &model {
            let guard = pool.fetch(pid).unwrap();
            prop_assert_eq!(guard.read()[7], v, "page {} lost after evict_all", pid);
        }
    }

    #[test]
    fn capacity_is_respected_when_unpinned(
        cap in 0usize..6,
        n in 1usize..30,
        policy in arb_policy(),
    ) {
        let pool = BufferPool::new(
            Arc::new(MemDisk::new(128)),
            PoolConfig { capacity: cap, policy },
        );
        for _ in 0..n {
            let (_pid, guard) = pool.new_page().unwrap();
            drop(guard);
        }
        prop_assert!(pool.resident() <= cap, "resident {} > capacity {}", pool.resident(), cap);
    }
}
