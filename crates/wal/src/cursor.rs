//! Incremental log tailing for replication.
//!
//! A [`LogCursor`] follows a live log chain the way [`crate::scan`] reads
//! a dead one: page by page from the anchor, CRC-framed record by record
//! — but it *remembers where it stopped*. Each [`LogCursor::poll`]
//! resumes at the first unconsumed record boundary (pages before it are
//! never re-read once full), returns only records newer than the last
//! LSN handed out, and stops at the first incomplete or torn frame, so a
//! batch is always a clean, exactly-once extension of the previous one.
//!
//! Checkpoint rewinds are survived through the generation tag in every
//! log page header: when the resume page (or the anchor) turns up under
//! a different generation, the cursor restarts from the anchor and
//! returns the new generation's surviving records with
//! [`ShipBatch::rewound`] set — the follower's signal to resync its base
//! image before applying them. LSNs are globally monotonic across
//! generations, so records already consumed can never be replayed: stale
//! bytes parse as a torn tail and recycled pages change generation.
//!
//! Polling a *live* log from another thread is safe because every log
//! page write is a single atomic page-sized disk write and the stream
//! within a page is append-only: a concurrent tail rewrite either shows
//! the old prefix or a longer one, and a chain pointer to a page not yet
//! written under the new generation reads as a generation mismatch — the
//! batch simply ends at the last complete record.

use crate::log::{parse_frame, FrameStep, HDR, WAL_PAGE_MAGIC};
use crate::WalRecord;
use bur_storage::{DiskBackend, Lsn, PageId, StorageResult, INVALID_PAGE};

/// One increment of log tailing — what [`LogCursor::poll`] found since
/// the previous poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipBatch {
    /// Generation of the chain the records came from.
    pub generation: u32,
    /// `true` when the log was checkpoint-rewound since the last poll
    /// (or this is the first poll): the consumer must resynchronize its
    /// base image before applying `records`, which restart at the new
    /// generation's opening [`WalRecord::Checkpoint`].
    pub rewound: bool,
    /// New records in LSN order (empty when nothing new landed).
    pub records: Vec<(Lsn, WalRecord)>,
    /// `true` when the stream ended in an incomplete or torn record
    /// rather than at a clean boundary. On a live log this is routinely
    /// a record mid-append and the next poll picks it up; after a crash
    /// it is the torn tail recovery would discard.
    pub torn_tail: bool,
}

/// A resumable reader over a log chain (see the module docs).
///
/// The cursor holds no reference to the disk — the caller passes it to
/// every [`LogCursor::poll`] — so it can be stored beside whichever
/// handle owns the primary's disk.
#[derive(Debug, Clone)]
pub struct LogCursor {
    anchor: PageId,
    /// Generation being followed; 0 before the first successful poll.
    generation: u32,
    /// Highest LSN handed out in a batch.
    last_lsn: Lsn,
    /// Page holding the first unconsumed stream byte.
    resume_page: PageId,
    /// Offset of that byte within the page's stream area.
    resume_off: usize,
}

impl LogCursor {
    /// A cursor over the chain headed at `anchor`, positioned before the
    /// first record.
    #[must_use]
    pub fn new(anchor: PageId) -> Self {
        Self {
            anchor,
            generation: 0,
            last_lsn: 0,
            resume_page: anchor,
            resume_off: 0,
        }
    }

    /// `(generation, last shipped LSN)` — where the cursor stands.
    #[must_use]
    pub fn position(&self) -> (u32, Lsn) {
        (self.generation, self.last_lsn)
    }

    /// The chain's anchor page.
    #[must_use]
    pub fn anchor(&self) -> PageId {
        self.anchor
    }

    /// Read everything appended (and surviving) since the last poll.
    ///
    /// Errors only on I/O failure or when the anchor is not a log page
    /// at all (the disk was never durable); torn tails and generation
    /// changes are reported in the batch, not as errors.
    pub fn poll(&mut self, disk: &dyn DiskBackend) -> StorageResult<ShipBatch> {
        let ps = disk.page_size();
        let cap = ps - HDR;
        let mut buf = vec![0u8; ps];

        // The anchor's generation tag is the ground truth for rewinds: a
        // recycled page keeps its stale bytes until reused, so only the
        // anchor — rewritten by every `checkpoint_rewind` — can say which
        // generation is current. It is read first on every poll.
        let Some((anchor_gen, _, _)) = read_log_page(disk, self.anchor, &mut buf)? else {
            return Err(bur_storage::StorageError::Io(std::io::Error::other(
                "log cursor: anchor page is not a write-ahead log",
            )));
        };
        let mut rewound = false;
        let (start_page, start_off) = if anchor_gen != self.generation {
            // A fresh cursor (generation 0) or a checkpoint rewind since
            // the last poll: restart at the new generation's head.
            rewound = true;
            self.generation = anchor_gen;
            (self.anchor, 0)
        } else if self.resume_page == self.anchor {
            // `buf` already holds the anchor.
            (self.anchor, self.resume_off)
        } else {
            match read_log_page(disk, self.resume_page, &mut buf)? {
                Some((gen, _, _)) if gen == self.generation => (self.resume_page, self.resume_off),
                // The generation is current at the anchor but the resume
                // page is unreadable or stale: a crash artifact on the
                // tail. Report a torn batch; the caller decides whether
                // to fail over.
                _ => {
                    return Ok(ShipBatch {
                        generation: anchor_gen,
                        rewound: false,
                        records: Vec::new(),
                        torn_tail: true,
                    });
                }
            }
        };
        let generation = self.generation;

        // Collect the stream from the resume point onward, remembering
        // where each page's bytes start so consumed offsets map back to
        // a page position.
        let mut stream: Vec<u8> = Vec::new();
        // (pid, stream offset of the page's stream byte 0). Negative for
        // the first page when the poll resumed mid-page.
        let mut segments: Vec<(PageId, isize)> = Vec::new();
        let mut torn_tail = false;
        let mut pid = start_page;
        let mut skip = start_off;
        let mut visited: Vec<PageId> = Vec::new();
        loop {
            if visited.contains(&pid) {
                torn_tail = true;
                break;
            }
            visited.push(pid);
            let next = u32::from_le_bytes(buf[8..12].try_into().unwrap());
            let used = u16::from_le_bytes(buf[12..14].try_into().unwrap()) as usize;
            if used > cap || skip > used {
                torn_tail = true;
                break;
            }
            segments.push((pid, stream.len() as isize - skip as isize));
            stream.extend_from_slice(&buf[HDR + skip..HDR + used]);
            skip = 0;
            if next == INVALID_PAGE {
                break;
            }
            match read_log_page(disk, next, &mut buf)? {
                Some((gen, _, _)) if gen == generation => pid = next,
                // The next page was never (re)written under this
                // generation — the chain ends here (mid-append race or
                // crash artifact).
                _ => {
                    torn_tail = true;
                    break;
                }
            }
        }

        // Parse complete records; stop at the first incomplete frame and
        // remember its position as the next resume point.
        let mut records = Vec::new();
        let mut off = 0usize;
        let mut prev_lsn = self.last_lsn;
        let clean_end = loop {
            match parse_frame(&stream, off, prev_lsn) {
                FrameStep::Parsed { lsn, rec, next_off } => {
                    records.push((lsn, rec));
                    prev_lsn = lsn;
                    off = next_off;
                }
                FrameStep::End => break true,
                FrameStep::Torn => break false,
            }
        };
        torn_tail |= !clean_end;
        self.last_lsn = prev_lsn;

        // Map the consumed boundary back to (page, in-page offset): the
        // segment bases ascend, so the owning page is the last one whose
        // base lies at or before `off`. The first base is `-start_off`
        // (≤ 0), so a match always exists.
        let offi = off as isize;
        if let Some(&(rpid, base)) = segments.iter().rev().find(|&&(_, base)| base <= offi) {
            self.resume_page = rpid;
            self.resume_off = (offi - base) as usize;
        }
        Ok(ShipBatch {
            generation,
            rewound,
            records,
            torn_tail,
        })
    }
}

/// Read page `pid` and parse its log-page header; `Ok(None)` when the
/// page is out of bounds (an allocation lost to a crash) or not a log
/// page. Genuine read failures propagate — a dying disk must not be
/// mistaken for a quiescent or never-durable log.
fn read_log_page(
    disk: &dyn DiskBackend,
    pid: PageId,
    buf: &mut [u8],
) -> StorageResult<Option<(u32, PageId, usize)>> {
    if pid >= disk.num_pages() {
        return Ok(None);
    }
    disk.read(pid, buf)?;
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != WAL_PAGE_MAGIC {
        return Ok(None);
    }
    let gen = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let next = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let used = u16::from_le_bytes(buf[12..14].try_into().unwrap()) as usize;
    Ok(Some((gen, next, used)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan, Wal};
    use bur_storage::{MemDisk, SyncPolicy};
    use std::sync::Arc;

    fn disk(ps: usize) -> Arc<MemDisk> {
        Arc::new(MemDisk::new(ps))
    }

    fn image(pid: PageId, fill: u8, len: usize) -> WalRecord {
        WalRecord::PageImage {
            pid,
            data: vec![fill; len],
        }
    }

    #[test]
    fn poll_is_incremental_and_exactly_once() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        let mut cur = LogCursor::new(wal.anchor());

        // Nothing yet: first poll reports the attach rewind, no records.
        let b = cur.poll(d.as_ref()).unwrap();
        assert!(b.rewound, "first poll always resynchronizes");
        assert!(b.records.is_empty());
        assert!(!b.torn_tail);

        wal.append(&image(9, 0xAA, 100)).unwrap();
        wal.commit(b"c1".to_vec()).unwrap();
        let b = cur.poll(d.as_ref()).unwrap();
        assert!(!b.rewound);
        assert_eq!(b.records.len(), 2);
        assert!(!b.torn_tail);

        // No new records: empty batch, and repeated polls stay empty.
        assert!(cur.poll(d.as_ref()).unwrap().records.is_empty());
        assert!(cur.poll(d.as_ref()).unwrap().records.is_empty());

        // New records arrive exactly once, spanning page boundaries.
        wal.append(&image(10, 0xBB, 200)).unwrap();
        wal.append(&image(11, 0xCC, 200)).unwrap();
        wal.commit(b"c2".to_vec()).unwrap();
        let b = cur.poll(d.as_ref()).unwrap();
        assert_eq!(b.records.len(), 3);
        assert_eq!(
            b.records.last().unwrap().1,
            WalRecord::Commit {
                meta: b"c2".to_vec()
            }
        );
        assert!(cur.poll(d.as_ref()).unwrap().records.is_empty());
    }

    #[test]
    fn poll_matches_scan_cumulatively() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        let mut cur = LogCursor::new(wal.anchor());
        let mut collected = Vec::new();
        for round in 0..7u8 {
            for p in 0..3 {
                wal.append(&image(p, round, 120)).unwrap();
            }
            wal.commit(vec![round]).unwrap();
            collected.extend(cur.poll(d.as_ref()).unwrap().records);
        }
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert_eq!(collected, s.records, "increments must concatenate to scan");
    }

    #[test]
    fn rewind_is_reported_and_stale_records_are_skipped() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        let mut cur = LogCursor::new(wal.anchor());
        wal.append(&image(5, 1, 150)).unwrap();
        wal.commit(b"pre".to_vec()).unwrap();
        let b = cur.poll(d.as_ref()).unwrap();
        assert_eq!(b.records.len(), 2);
        let (gen_before, lsn_before) = cur.position();

        wal.checkpoint_rewind(b"ckpt".to_vec()).unwrap();
        wal.append(&image(6, 2, 150)).unwrap();
        wal.commit(b"post".to_vec()).unwrap();

        let b = cur.poll(d.as_ref()).unwrap();
        assert!(b.rewound, "generation change must be reported");
        assert_eq!(b.generation, gen_before + 1);
        // The new generation ships from its opening checkpoint; nothing
        // from the dead generation reappears.
        assert_eq!(b.records.len(), 3);
        assert!(matches!(b.records[0].1, WalRecord::Checkpoint { .. }));
        assert!(b.records[0].0 > lsn_before);
        assert!(cur.poll(d.as_ref()).unwrap().records.is_empty());
    }

    #[test]
    fn unsynced_tail_is_invisible_until_written() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        let mut cur = LogCursor::new(wal.anchor());
        cur.poll(d.as_ref()).unwrap();
        wal.append(&image(1, 1, 80)).unwrap();
        // Still only in the tail buffer: nothing to ship.
        assert!(cur.poll(d.as_ref()).unwrap().records.is_empty());
        wal.sync().unwrap();
        assert_eq!(cur.poll(d.as_ref()).unwrap().records.len(), 1);
    }

    #[test]
    fn torn_tail_ships_the_clean_prefix_only() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        let mut cur = LogCursor::new(wal.anchor());
        wal.append(&image(1, 1, 64)).unwrap();
        wal.append(&image(2, 2, 64)).unwrap();
        wal.sync().unwrap();
        let pages = scan(d.as_ref(), wal.anchor()).unwrap().pages;
        let tail = *pages.last().unwrap();
        let mut buf = vec![0u8; 256];
        d.read(tail, &mut buf).unwrap();
        let used = u16::from_le_bytes(buf[12..14].try_into().unwrap()) as usize;
        for b in &mut buf[HDR + used - 8..HDR + used] {
            *b ^= 0xFF;
        }
        d.write(tail, &buf).unwrap();

        let b = cur.poll(d.as_ref()).unwrap();
        assert!(b.torn_tail);
        assert_eq!(b.records.len(), 1, "only the intact prefix ships");
        assert_eq!(b.records[0].1, image(1, 1, 64));
    }

    #[test]
    fn poll_of_garbage_anchor_is_an_error() {
        let d = disk(256);
        d.allocate().unwrap(); // zeroed page: not a log
        let mut cur = LogCursor::new(0);
        assert!(cur.poll(d.as_ref()).is_err());
        let mut cur = LogCursor::new(9); // out of bounds
        assert!(cur.poll(d.as_ref()).is_err());
    }

    #[test]
    fn cursor_survives_many_rewinds() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        let mut cur = LogCursor::new(wal.anchor());
        let mut commits_seen = 0usize;
        for round in 0..5u8 {
            for p in 0..4 {
                wal.append(&image(p, round, 180)).unwrap();
            }
            wal.commit(vec![round]).unwrap();
            let b = cur.poll(d.as_ref()).unwrap();
            commits_seen += b
                .records
                .iter()
                .filter(|(_, r)| matches!(r, WalRecord::Commit { .. }))
                .count();
            wal.checkpoint_rewind(vec![round, round]).unwrap();
            let b = cur.poll(d.as_ref()).unwrap();
            assert!(b.rewound, "round {round}");
            assert_eq!(b.records.len(), 1, "only the fresh checkpoint");
        }
        assert_eq!(commits_seen, 5, "every commit shipped exactly once");
    }
}
