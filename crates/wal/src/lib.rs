//! # bur-wal — write-ahead logging and crash recovery for `bur`
//!
//! The VLDB 2003 bottom-up update techniques make frequent updates cheap,
//! but a cheap update is only useful in production if it *survives*: dirty
//! pages leave the buffer pool in arbitrary order, so a crash mid-stream
//! can tear the tree, and GBU's main-memory summary structure simply
//! vanishes. This crate adds the missing durability layer:
//!
//! * [`Wal`] — a page-oriented, physiological write-ahead log that lives
//!   on the **same page disk** as the index it protects (so a single
//!   simulated power cut covers both), chained from a fixed anchor page;
//! * **records** ([`WalRecord`]) — LSN-stamped page images plus commit
//!   and checkpoint records that carry an opaque metadata snapshot of the
//!   index (root, height, object count, ...);
//! * **delta records** ([`WalRecord::PageDelta`]) — byte-range diffs of a
//!   page against its previous logged image within the same generation.
//!   In-place bottom-up updates touch a few dozen bytes of a 1 KiB page,
//!   so deltas cut log volume several-fold; full images are re-emitted as
//!   periodic *anchors* ([`DeltaPolicy`]) so redo stays a bounded replay
//!   of one generation;
//! * **group commit** — the sync cadence is a [`SyncPolicy`]: every
//!   commit, every *n* commits, asynchronous (a background sync thread
//!   batches `fsync`s and publishes durable-LSN watermarks), or manual;
//! * **checkpoints as rewind** — a checkpoint makes the log durable,
//!   flushes the buffer pool as the new base image, then *rewinds* the
//!   log onto its own pages under a fresh generation number, reusing them
//!   instead of growing forever;
//! * **redo recovery** ([`Wal::reopen`] / [`scan`]) — replay every page
//!   image up to the last durable commit, in order, onto the surviving
//!   base image. Records are CRC-framed and generation-tagged, so a torn
//!   tail (a write cut mid-page by power loss) is detected and discarded,
//!   never replayed. Delta chains replay onto the full image that anchors
//!   them — the first record of every page in a generation is always a
//!   full image, so redo never depends on pre-crash disk content.
//!
//! The protocol is ARIES-style redo-only: the WAL-aware
//! [`BufferPool`](bur_storage::BufferPool) mode guarantees no page leaves
//! the pool before its image is durable in the log (no-steal for
//! uncommitted content, flush gating on the durable LSN for committed
//! content), so recovery never needs undo.
//!
//! ```
//! use bur_storage::{MemDisk, SyncPolicy};
//! use bur_wal::{Wal, WalRecord};
//! use std::sync::Arc;
//!
//! let disk = Arc::new(MemDisk::new(256));
//! let wal = Wal::create(disk.clone(), SyncPolicy::EveryCommit).unwrap();
//! let anchor = wal.anchor();
//! wal.append(&WalRecord::PageImage { pid: 9, data: vec![7u8; 256] }).unwrap();
//! wal.append(&WalRecord::Commit { meta: b"snapshot".to_vec() }).unwrap();
//! wal.sync().unwrap();
//!
//! let scan = bur_wal::scan(disk.as_ref(), anchor).unwrap();
//! assert_eq!(scan.records.len(), 2);
//! assert!(!scan.torn_tail);
//! ```

#![warn(missing_docs)]

mod cursor;
mod log;

pub use bur_storage::{Lsn, SyncPolicy};
pub use cursor::{LogCursor, ShipBatch};
pub use log::{
    scan, ScanResult, Wal, WalStatsSnapshot, WalWaiter, DEFAULT_ASYNC_COALESCE, WAL_PAGE_MAGIC,
};

/// When [`Wal::append_page`] may log a byte-range delta instead of a full
/// page image.
///
/// Deltas are only ever taken against the previous logged image of the
/// same page *within the current log generation*; the first image of a
/// page after a checkpoint is always full. `anchor_every` bounds how long
/// a delta chain may grow before a fresh full image (an *anchor*) is
/// forced, so replay work per page stays bounded even within one
/// generation and a single corrupt delta cannot poison an unbounded
/// suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaPolicy {
    /// Log deltas at all. Off reproduces the original full-image log.
    pub enabled: bool,
    /// Force a full-image anchor every this many records per page (one
    /// anchor followed by `anchor_every - 1` deltas). Values below 2
    /// disable deltas.
    pub anchor_every: u32,
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            anchor_every: 16,
        }
    }
}

impl DeltaPolicy {
    /// A policy that always logs full page images (the pre-delta format).
    #[must_use]
    pub fn full_images() -> Self {
        Self {
            enabled: false,
            anchor_every: 16,
        }
    }
}

/// One contiguous byte range rewritten by a [`WalRecord::PageDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRange {
    /// Byte offset of the range within the page.
    pub offset: u16,
    /// The new bytes at `offset`.
    pub bytes: Vec<u8>,
}

/// One record in the log.
///
/// Page images are *physical* redo: replaying them in log order is
/// idempotent, so recovery needs no page-level LSN comparison. Page
/// deltas are physical too but *chained*: each applies onto the page
/// state produced by the record `base_lsn`, which in-order replay
/// guarantees is already in place. Commit and checkpoint records carry
/// the index's serialized metadata snapshot (opaque bytes owned by
/// `bur-core`), which makes every commit a consistent recovery point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The full content of page `pid` as of the enclosing commit.
    PageImage {
        /// The page this image belongs to.
        pid: bur_storage::PageId,
        /// The page bytes (exactly one page).
        data: Vec<u8>,
    },
    /// Byte ranges of page `pid` that changed since its previous logged
    /// image (`base_lsn`) in the same generation.
    PageDelta {
        /// The page this delta belongs to.
        pid: bur_storage::PageId,
        /// LSN of the page's previous image/delta record — the state this
        /// delta applies onto. Replay verifies the chain is unbroken.
        base_lsn: Lsn,
        /// Changed ranges, ascending and non-overlapping.
        ranges: Vec<DeltaRange>,
    },
    /// One index operation (or batch of operations) committed; `meta` is
    /// the index metadata snapshot taken *after* the last of them.
    Commit {
        /// Serialized index metadata (opaque to the log).
        meta: Vec<u8>,
    },
    /// A checkpoint: the on-disk pages at this point are a complete base
    /// image for `meta`. Always the first record of a log generation.
    Checkpoint {
        /// Serialized index metadata (opaque to the log).
        meta: Vec<u8>,
    },
}

impl WalRecord {
    /// Short display name ("image" / "delta" / "commit" / "checkpoint").
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WalRecord::PageImage { .. } => "image",
            WalRecord::PageDelta { .. } => "delta",
            WalRecord::Commit { .. } => "commit",
            WalRecord::Checkpoint { .. } => "checkpoint",
        }
    }
}

/// Apply the ranges of a [`WalRecord::PageDelta`] onto a page buffer.
/// Returns `false` (page untouched beyond already-applied ranges) when a
/// range falls outside the buffer — a corrupt record.
#[must_use]
pub fn apply_delta(page: &mut [u8], ranges: &[DeltaRange]) -> bool {
    for r in ranges {
        let start = r.offset as usize;
        let end = start + r.bytes.len();
        if end > page.len() {
            return false;
        }
        page[start..end].copy_from_slice(&r.bytes);
    }
    true
}

/// CRC-32 slice-by-8 lookup tables (IEEE 802.3 polynomial), built at
/// compile time. `T[0]` is the classic byte table; `T[k][b]` extends a
/// byte's contribution `k` positions further into the stream, so eight
/// bytes fold in one step.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 (IEEE 802.3 polynomial, slice-by-8). Small and
/// dependency-free; the log only needs torn-tail detection, not
/// cryptographic strength. Folding eight bytes per step keeps the CRC
/// off the durable-update critical path (every appended record is
/// framed with one).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    const T: &[[u32; 256]; 8] = &CRC32_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        crc = T[7][(lo & 0xFF) as usize]
            ^ T[6][((lo >> 8) & 0xFF) as usize]
            ^ T[5][((lo >> 16) & 0xFF) as usize]
            ^ T[4][(lo >> 24) as usize]
            ^ T[3][(hi & 0xFF) as usize]
            ^ T[2][((hi >> 8) & 0xFF) as usize]
            ^ T[1][((hi >> 16) & 0xFF) as usize]
            ^ T[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ T[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_names() {
        assert_eq!(
            WalRecord::PageImage {
                pid: 0,
                data: vec![]
            }
            .name(),
            "image"
        );
        assert_eq!(
            WalRecord::PageDelta {
                pid: 0,
                base_lsn: 1,
                ranges: vec![]
            }
            .name(),
            "delta"
        );
        assert_eq!(WalRecord::Commit { meta: vec![] }.name(), "commit");
        assert_eq!(WalRecord::Checkpoint { meta: vec![] }.name(), "checkpoint");
    }

    #[test]
    fn apply_delta_bounds_checked() {
        let mut page = vec![0u8; 16];
        let ok = apply_delta(
            &mut page,
            &[
                DeltaRange {
                    offset: 2,
                    bytes: vec![9, 9],
                },
                DeltaRange {
                    offset: 14,
                    bytes: vec![7, 7],
                },
            ],
        );
        assert!(ok);
        assert_eq!(page[2], 9);
        assert_eq!(page[15], 7);
        let bad = apply_delta(
            &mut page,
            &[DeltaRange {
                offset: 15,
                bytes: vec![1, 1],
            }],
        );
        assert!(!bad, "out-of-bounds range must be rejected");
    }

    #[test]
    fn delta_policy_defaults() {
        let p = DeltaPolicy::default();
        assert!(p.enabled);
        assert!(p.anchor_every >= 2);
        assert!(!DeltaPolicy::full_images().enabled);
    }
}
