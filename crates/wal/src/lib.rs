//! # bur-wal — write-ahead logging and crash recovery for `bur`
//!
//! The VLDB 2003 bottom-up update techniques make frequent updates cheap,
//! but a cheap update is only useful in production if it *survives*: dirty
//! pages leave the buffer pool in arbitrary order, so a crash mid-stream
//! can tear the tree, and GBU's main-memory summary structure simply
//! vanishes. This crate adds the missing durability layer:
//!
//! * [`Wal`] — a page-oriented, physiological write-ahead log that lives
//!   on the **same page disk** as the index it protects (so a single
//!   simulated power cut covers both), chained from a fixed anchor page;
//! * **records** ([`WalRecord`]) — LSN-stamped page images plus commit
//!   and checkpoint records that carry an opaque metadata snapshot of the
//!   index (root, height, object count, ...);
//! * **group commit** — the sync cadence is a [`SyncPolicy`]: every
//!   commit, every *n* commits, or manual;
//! * **checkpoints as rewind** — a checkpoint makes the log durable,
//!   flushes the buffer pool as the new base image, then *rewinds* the
//!   log onto its own pages under a fresh generation number, reusing them
//!   instead of growing forever;
//! * **redo recovery** ([`Wal::reopen`] / [`scan`]) — replay every page
//!   image up to the last durable commit, in order, onto the surviving
//!   base image. Records are CRC-framed and generation-tagged, so a torn
//!   tail (a write cut mid-page by power loss) is detected and discarded,
//!   never replayed.
//!
//! The protocol is ARIES-style redo-only: the WAL-aware
//! [`BufferPool`](bur_storage::BufferPool) mode guarantees no page leaves
//! the pool before its image is durable in the log (no-steal for
//! uncommitted content, flush gating on the durable LSN for committed
//! content), so recovery never needs undo.
//!
//! ```
//! use bur_storage::{MemDisk, SyncPolicy};
//! use bur_wal::{Wal, WalRecord};
//! use std::sync::Arc;
//!
//! let disk = Arc::new(MemDisk::new(256));
//! let wal = Wal::create(disk.clone(), SyncPolicy::EveryCommit).unwrap();
//! let anchor = wal.anchor();
//! wal.append(&WalRecord::PageImage { pid: 9, data: vec![7u8; 256] }).unwrap();
//! wal.append(&WalRecord::Commit { meta: b"snapshot".to_vec() }).unwrap();
//! wal.sync().unwrap();
//!
//! let scan = bur_wal::scan(disk.as_ref(), anchor).unwrap();
//! assert_eq!(scan.records.len(), 2);
//! assert!(!scan.torn_tail);
//! ```

#![warn(missing_docs)]

mod log;

pub use bur_storage::{Lsn, SyncPolicy};
pub use log::{scan, ScanResult, Wal, WalStatsSnapshot, WAL_PAGE_MAGIC};

/// One record in the log.
///
/// Page images are *physical* redo: replaying them in log order is
/// idempotent, so recovery needs no page-level LSN comparison. Commit and
/// checkpoint records carry the index's serialized metadata snapshot
/// (opaque bytes owned by `bur-core`), which makes every commit a
/// consistent recovery point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The full content of page `pid` as of the enclosing commit.
    PageImage {
        /// The page this image belongs to.
        pid: bur_storage::PageId,
        /// The page bytes (exactly one page).
        data: Vec<u8>,
    },
    /// One index operation committed; `meta` is the index metadata
    /// snapshot taken *after* the operation.
    Commit {
        /// Serialized index metadata (opaque to the log).
        meta: Vec<u8>,
    },
    /// A checkpoint: the on-disk pages at this point are a complete base
    /// image for `meta`. Always the first record of a log generation.
    Checkpoint {
        /// Serialized index metadata (opaque to the log).
        meta: Vec<u8>,
    },
}

impl WalRecord {
    /// Record kind tag on the wire.
    pub(crate) fn kind(&self) -> u8 {
        match self {
            WalRecord::PageImage { .. } => 1,
            WalRecord::Commit { .. } => 2,
            WalRecord::Checkpoint { .. } => 3,
        }
    }

    /// Short display name ("image" / "commit" / "checkpoint").
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WalRecord::PageImage { .. } => "image",
            WalRecord::Commit { .. } => "commit",
            WalRecord::Checkpoint { .. } => "checkpoint",
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial, bitwise). Small and dependency-free;
/// the log only needs torn-tail detection, not cryptographic strength.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_names() {
        assert_eq!(
            WalRecord::PageImage {
                pid: 0,
                data: vec![]
            }
            .name(),
            "image"
        );
        assert_eq!(WalRecord::Commit { meta: vec![] }.name(), "commit");
        assert_eq!(WalRecord::Checkpoint { meta: vec![] }.name(), "checkpoint");
    }
}
