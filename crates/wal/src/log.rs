//! The log: a byte stream of CRC-framed records chunked into a chain of
//! pages on a [`DiskBackend`], rewound in place at every checkpoint.
//!
//! # On-disk layout
//!
//! Every log page starts with a 14-byte header:
//!
//! ```text
//! [magic u32 = "BWAL"] [generation u32] [next PageId u32] [used u16]
//! ```
//!
//! followed by `used` bytes of record stream. Records span page
//! boundaries freely; each is framed as
//!
//! ```text
//! [len u32] [crc32 u32] [kind u8] [lsn u64] [payload ...]
//! ```
//!
//! with the CRC covering `kind..payload`. Within one page the stream is
//! append-only, so a torn rewrite of the tail page (power cut half-way
//! through the sector) either reproduces the old bytes exactly or breaks
//! the CRC of the record under the tear — either way [`scan`] stops at a
//! well-defined prefix and reports `torn_tail`.
//!
//! A checkpoint *rewinds* the log: the chain's pages are recycled, the
//! generation number is bumped, and a fresh stream starts at the anchor
//! page with a [`WalRecord::Checkpoint`]. Stale pages of older
//! generations are ignored by [`scan`] (generation mismatch ends the
//! chain), so the log never grows past one generation of records.

use crate::{crc32, WalRecord};
use bur_storage::{DiskBackend, Lsn, PageId, StorageResult, SyncPolicy, INVALID_PAGE};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic number opening every log page ("BWAL", little-endian).
pub const WAL_PAGE_MAGIC: u32 = 0x4C41_5742;

/// Log page header size in bytes.
const HDR: usize = 14;

/// Record frame header size ahead of the body (`len` + `crc`).
const FRAME: usize = 8;

/// Body prefix: kind tag + LSN.
const BODY_PREFIX: usize = 9;

fn wal_state_error(msg: &'static str) -> bur_storage::StorageError {
    bur_storage::StorageError::Io(std::io::Error::other(msg))
}

/// Mutable log state behind the [`Wal`] lock.
struct WalInner {
    generation: u32,
    /// Page currently being filled.
    cur: PageId,
    /// In-memory image of `cur` (header rewritten on every page write).
    buf: Box<[u8]>,
    /// Bytes of record stream in `cur`.
    used: usize,
    /// Pages of the current generation, anchor first.
    chain: Vec<PageId>,
    /// Recycled pages from previous generations.
    spare: Vec<PageId>,
    next_lsn: Lsn,
    last_lsn: Lsn,
    durable_lsn: Lsn,
    /// `cur` holds appended bytes not yet written to the disk.
    dirty_tail: bool,
    commits_since_sync: u32,
    /// Set by [`Wal::reopen`]: the log must be rewound (checkpointed)
    /// before new records may be appended.
    needs_rewind: bool,
}

/// Monotonic counters describing log activity since creation.
#[derive(Debug, Default)]
struct WalCounters {
    records: AtomicU64,
    images: AtomicU64,
    commits: AtomicU64,
    checkpoints: AtomicU64,
    syncs: AtomicU64,
    page_writes: AtomicU64,
    bytes_appended: AtomicU64,
    rewinds: AtomicU64,
}

/// A point-in-time view of a [`Wal`]'s counters and positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStatsSnapshot {
    /// Records appended (all kinds).
    pub records: u64,
    /// Page-image records appended.
    pub images: u64,
    /// Commit records appended.
    pub commits: u64,
    /// Checkpoints taken (log rewinds).
    pub checkpoints: u64,
    /// Durable syncs performed.
    pub syncs: u64,
    /// Physical log-page writes.
    pub page_writes: u64,
    /// Record-stream bytes appended.
    pub bytes_appended: u64,
    /// Log rewinds (equals checkpoints; kept separate for clarity).
    pub rewinds: u64,
    /// Highest LSN assigned.
    pub last_lsn: Lsn,
    /// Highest LSN known durable.
    pub durable_lsn: Lsn,
    /// Current log generation.
    pub generation: u32,
    /// Pages owned by the log (current chain + recycled spares).
    pub log_pages: usize,
}

impl fmt::Display for WalStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gen {} lsn {} (durable {}) | {} records ({} images, {} commits, {} checkpoints) \
             | {} B appended, {} page writes, {} syncs, {} pages",
            self.generation,
            self.last_lsn,
            self.durable_lsn,
            self.records,
            self.images,
            self.commits,
            self.checkpoints,
            self.bytes_appended,
            self.page_writes,
            self.syncs,
            self.log_pages
        )
    }
}

/// The write-ahead log. See the [crate docs](crate) for the protocol;
/// the on-disk layout is documented at the top of this source file.
pub struct Wal {
    disk: Arc<dyn DiskBackend>,
    anchor: PageId,
    policy: SyncPolicy,
    inner: Mutex<WalInner>,
    counters: WalCounters,
}

impl Wal {
    /// Create a fresh log: allocates the anchor page and writes an empty
    /// generation-1 stream to it.
    pub fn create(disk: Arc<dyn DiskBackend>, policy: SyncPolicy) -> StorageResult<Self> {
        let anchor = disk.allocate()?;
        let ps = disk.page_size();
        let wal = Self {
            disk,
            anchor,
            policy,
            inner: Mutex::new(WalInner {
                generation: 1,
                cur: anchor,
                buf: vec![0u8; ps].into_boxed_slice(),
                used: 0,
                chain: vec![anchor],
                spare: Vec::new(),
                next_lsn: 1,
                last_lsn: 0,
                durable_lsn: 0,
                dirty_tail: false,
                commits_since_sync: 0,
                needs_rewind: false,
            }),
            counters: WalCounters::default(),
        };
        {
            let mut inner = wal.inner.lock();
            wal.write_cur_page(&mut inner, INVALID_PAGE)?;
        }
        Ok(wal)
    }

    /// Reopen an existing log for recovery: scans it and returns the
    /// surviving records. The log is positioned *read-only* — it must be
    /// rewound with [`Wal::checkpoint_rewind`] (after replaying the
    /// records and flushing the new base image) before appending again.
    pub fn reopen(
        disk: Arc<dyn DiskBackend>,
        anchor: PageId,
        policy: SyncPolicy,
    ) -> StorageResult<(Self, ScanResult)> {
        let scanned = scan(disk.as_ref(), anchor)?;
        let ps = disk.page_size();
        let last = scanned.records.last().map_or(0, |&(lsn, _)| lsn);
        let wal = Self {
            disk,
            anchor,
            policy,
            inner: Mutex::new(WalInner {
                generation: scanned.generation,
                cur: anchor,
                buf: vec![0u8; ps].into_boxed_slice(),
                used: 0,
                chain: vec![anchor],
                spare: scanned
                    .pages
                    .iter()
                    .copied()
                    .filter(|&p| p != anchor)
                    .collect(),
                next_lsn: last + 1,
                last_lsn: last,
                durable_lsn: last,
                dirty_tail: false,
                commits_since_sync: 0,
                needs_rewind: true,
            }),
            counters: WalCounters::default(),
        };
        Ok((wal, scanned))
    }

    /// The anchor (first) page of the log chain.
    #[must_use]
    pub fn anchor(&self) -> PageId {
        self.anchor
    }

    /// The configured sync cadence.
    #[must_use]
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Highest LSN assigned so far.
    #[must_use]
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().last_lsn
    }

    /// Highest LSN known durable (on disk and synced).
    #[must_use]
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.lock().durable_lsn
    }

    /// Counter snapshot for tooling and benches.
    #[must_use]
    pub fn stats(&self) -> WalStatsSnapshot {
        let inner = self.inner.lock();
        WalStatsSnapshot {
            records: self.counters.records.load(Ordering::Relaxed),
            images: self.counters.images.load(Ordering::Relaxed),
            commits: self.counters.commits.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            syncs: self.counters.syncs.load(Ordering::Relaxed),
            page_writes: self.counters.page_writes.load(Ordering::Relaxed),
            bytes_appended: self.counters.bytes_appended.load(Ordering::Relaxed),
            rewinds: self.counters.rewinds.load(Ordering::Relaxed),
            last_lsn: inner.last_lsn,
            durable_lsn: inner.durable_lsn,
            generation: inner.generation,
            log_pages: inner.chain.len() + inner.spare.len(),
        }
    }

    /// Append one record; returns its LSN. The record is durable only
    /// after the next [`Wal::sync`] (or automatic sync via
    /// [`Wal::commit`]'s policy).
    pub fn append(&self, rec: &WalRecord) -> StorageResult<Lsn> {
        let mut inner = self.inner.lock();
        self.append_inner(&mut inner, rec)
    }

    /// Append a [`WalRecord::Commit`] and apply the sync policy. Returns
    /// `(lsn, durable)` where `durable` says whether this commit is
    /// already synced.
    pub fn commit(&self, meta: Vec<u8>) -> StorageResult<(Lsn, bool)> {
        let mut inner = self.inner.lock();
        let lsn = self.append_inner(&mut inner, &WalRecord::Commit { meta })?;
        inner.commits_since_sync += 1;
        let do_sync = match self.policy {
            SyncPolicy::EveryCommit => true,
            SyncPolicy::GroupCommit(n) => inner.commits_since_sync >= n.max(1),
            SyncPolicy::Manual => false,
        };
        if do_sync {
            self.sync_inner(&mut inner)?;
        }
        self.counters.commits.fetch_add(1, Ordering::Relaxed);
        Ok((lsn, do_sync))
    }

    /// Make every appended record durable: write the tail page and sync
    /// the disk.
    pub fn sync(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        self.sync_inner(&mut inner)
    }

    /// Checkpoint: recycle the current generation's pages, start a fresh
    /// generation at the anchor whose first record is a
    /// [`WalRecord::Checkpoint`] carrying `meta`, and sync it. The caller
    /// must have flushed the buffer pool *before* this, so the on-disk
    /// pages are a complete base image for `meta`.
    pub fn checkpoint_rewind(&self, meta: Vec<u8>) -> StorageResult<Lsn> {
        let mut inner = self.inner.lock();
        let old_chain = std::mem::take(&mut inner.chain);
        inner
            .spare
            .extend(old_chain.into_iter().filter(|&p| p != self.anchor));
        inner.generation = inner.generation.wrapping_add(1);
        inner.cur = self.anchor;
        inner.used = 0;
        inner.buf.fill(0);
        inner.chain = vec![self.anchor];
        inner.dirty_tail = true; // the fresh header must reach the disk
        inner.needs_rewind = false;
        inner.commits_since_sync = 0;
        let lsn = self.append_inner(&mut inner, &WalRecord::Checkpoint { meta })?;
        self.sync_inner(&mut inner)?;
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.counters.rewinds.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    // ---- internals -------------------------------------------------------

    fn append_inner(&self, inner: &mut WalInner, rec: &WalRecord) -> StorageResult<Lsn> {
        if inner.needs_rewind {
            return Err(wal_state_error(
                "wal: reopened log must be checkpoint-rewound before appending",
            ));
        }
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.last_lsn = lsn;

        let mut body = Vec::with_capacity(BODY_PREFIX + 16);
        body.push(rec.kind());
        body.extend_from_slice(&lsn.to_le_bytes());
        match rec {
            WalRecord::PageImage { pid, data } => {
                body.extend_from_slice(&pid.to_le_bytes());
                body.extend_from_slice(data);
                self.counters.images.fetch_add(1, Ordering::Relaxed);
            }
            WalRecord::Commit { meta } => {
                body.extend_from_slice(meta);
            }
            WalRecord::Checkpoint { meta } => {
                body.extend_from_slice(meta);
            }
        }
        let mut frame = Vec::with_capacity(FRAME + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);

        let cap = self.disk.page_size() - HDR;
        let mut off = 0;
        while off < frame.len() {
            if inner.used == cap {
                self.advance_page(inner)?;
            }
            let n = (cap - inner.used).min(frame.len() - off);
            let start = HDR + inner.used;
            inner.buf[start..start + n].copy_from_slice(&frame[off..off + n]);
            inner.used += n;
            off += n;
            inner.dirty_tail = true;
        }
        self.counters.records.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_appended
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Finalize the (full) current page with a pointer to a fresh page
    /// and switch to it.
    fn advance_page(&self, inner: &mut WalInner) -> StorageResult<()> {
        let next = match inner.spare.pop() {
            Some(p) => p,
            None => self.disk.allocate()?,
        };
        self.write_cur_page(inner, next)?;
        inner.chain.push(next);
        inner.cur = next;
        inner.used = 0;
        inner.buf.fill(0);
        inner.dirty_tail = false;
        Ok(())
    }

    /// Write the current page image (header + stream) to the disk.
    fn write_cur_page(&self, inner: &mut WalInner, next: PageId) -> StorageResult<()> {
        inner.buf[0..4].copy_from_slice(&WAL_PAGE_MAGIC.to_le_bytes());
        inner.buf[4..8].copy_from_slice(&inner.generation.to_le_bytes());
        inner.buf[8..12].copy_from_slice(&next.to_le_bytes());
        inner.buf[12..14].copy_from_slice(&(inner.used as u16).to_le_bytes());
        self.disk.write(inner.cur, &inner.buf)?;
        self.counters.page_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync_inner(&self, inner: &mut WalInner) -> StorageResult<()> {
        if inner.dirty_tail {
            self.write_cur_page(inner, INVALID_PAGE)?;
            inner.dirty_tail = false;
        }
        self.disk.sync()?;
        inner.durable_lsn = inner.last_lsn;
        inner.commits_since_sync = 0;
        self.counters.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// What [`scan`] found in a log chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// `false` when the anchor page is not a log page at all (no magic):
    /// every other field is empty/zero then.
    pub valid: bool,
    /// Generation of the scanned chain.
    pub generation: u32,
    /// Surviving records in LSN order.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Pages of the chain, anchor first.
    pub pages: Vec<PageId>,
    /// `true` when the stream ended in a torn or stale record (crash
    /// artifact) rather than cleanly.
    pub torn_tail: bool,
    /// Total record-stream bytes seen (including any torn tail).
    pub stream_bytes: usize,
}

/// Read a log chain from `anchor` and parse every surviving record.
/// Read-only: used by recovery and by `burctl wal-stats`.
pub fn scan(disk: &dyn DiskBackend, anchor: PageId) -> StorageResult<ScanResult> {
    let ps = disk.page_size();
    let cap = ps - HDR;
    let mut out = ScanResult {
        valid: false,
        generation: 0,
        records: Vec::new(),
        pages: Vec::new(),
        torn_tail: false,
        stream_bytes: 0,
    };
    if anchor >= disk.num_pages() {
        return Ok(out);
    }
    let mut buf = vec![0u8; ps];
    disk.read(anchor, &mut buf)?;
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != WAL_PAGE_MAGIC {
        return Ok(out);
    }
    out.valid = true;
    out.generation = u32::from_le_bytes(buf[4..8].try_into().unwrap());

    // Collect the stream across the chain.
    let mut stream = Vec::new();
    let mut pid = anchor;
    loop {
        out.pages.push(pid);
        let next = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let used = u16::from_le_bytes(buf[12..14].try_into().unwrap()) as usize;
        if used > cap {
            out.torn_tail = true;
            break;
        }
        stream.extend_from_slice(&buf[HDR..HDR + used]);
        if next == INVALID_PAGE {
            break;
        }
        if next >= disk.num_pages() || out.pages.contains(&next) {
            // The pointer outruns the disk (allocation lost to the crash)
            // or loops (stale garbage): stop at what we have.
            out.torn_tail = true;
            break;
        }
        if disk.read(next, &mut buf).is_err() {
            out.torn_tail = true;
            break;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let gen = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if magic != WAL_PAGE_MAGIC || gen != out.generation {
            // The next page was never (re)written under this generation:
            // the chain ends here.
            out.torn_tail = true;
            break;
        }
        pid = next;
    }
    out.stream_bytes = stream.len();

    // Parse records until the stream ends or breaks.
    let mut off = 0;
    let mut prev_lsn = 0;
    while off + FRAME <= stream.len() {
        let len = u32::from_le_bytes(stream[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(stream[off + 4..off + 8].try_into().unwrap());
        if len < BODY_PREFIX || off + FRAME + len > stream.len() {
            out.torn_tail = true;
            break;
        }
        let body = &stream[off + FRAME..off + FRAME + len];
        if crc32(body) != crc {
            out.torn_tail = true;
            break;
        }
        let kind = body[0];
        let lsn = u64::from_le_bytes(body[1..9].try_into().unwrap());
        if lsn <= prev_lsn {
            // Stale bytes from an earlier pass over a recycled page.
            out.torn_tail = true;
            break;
        }
        let payload = &body[BODY_PREFIX..];
        let rec = match kind {
            1 => {
                if payload.len() < 4 {
                    out.torn_tail = true;
                    break;
                }
                WalRecord::PageImage {
                    pid: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
                    data: payload[4..].to_vec(),
                }
            }
            2 => WalRecord::Commit {
                meta: payload.to_vec(),
            },
            3 => WalRecord::Checkpoint {
                meta: payload.to_vec(),
            },
            _ => {
                out.torn_tail = true;
                break;
            }
        };
        out.records.push((lsn, rec));
        prev_lsn = lsn;
        off += FRAME + len;
    }
    if off < stream.len() && !out.torn_tail {
        out.torn_tail = true;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bur_storage::MemDisk;

    fn disk(ps: usize) -> Arc<MemDisk> {
        Arc::new(MemDisk::new(ps))
    }

    fn image(pid: PageId, fill: u8, ps: usize) -> WalRecord {
        WalRecord::PageImage {
            pid,
            data: vec![fill; ps],
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        let l1 = wal.append(&image(9, 0xAA, 256)).unwrap();
        let l2 = wal.append(&image(10, 0xBB, 256)).unwrap();
        let (l3, durable) = wal.commit(b"meta-1".to_vec()).unwrap();
        assert!(durable);
        assert!(l1 < l2 && l2 < l3);
        assert_eq!(wal.durable_lsn(), l3);

        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert!(s.valid);
        assert!(!s.torn_tail);
        assert_eq!(s.generation, 1);
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[0], (l1, image(9, 0xAA, 256)));
        assert_eq!(
            s.records[2],
            (
                l3,
                WalRecord::Commit {
                    meta: b"meta-1".to_vec()
                }
            )
        );
        // Two images of a 256-byte page cannot fit in one 256-byte log
        // page: the chain must have grown.
        assert!(s.pages.len() >= 2, "chain: {:?}", s.pages);
    }

    #[test]
    fn records_span_pages() {
        let d = disk(128);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        // One image is larger than a whole log page.
        let rec = WalRecord::PageImage {
            pid: 3,
            data: (0..128).map(|i| i as u8).collect(),
        };
        wal.append(&rec).unwrap();
        wal.sync().unwrap();
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].1, rec);
        assert!(!s.torn_tail);
    }

    #[test]
    fn unsynced_tail_is_invisible_after_crash() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        wal.append(&image(1, 1, 64)).unwrap();
        wal.sync().unwrap();
        // Appended but never synced: lives only in the tail buffer.
        wal.append(&image(2, 2, 64)).unwrap();
        drop(wal); // crash
        let s = scan(d.as_ref(), 0).unwrap();
        assert_eq!(s.records.len(), 1, "only the synced record survives");
        assert!(!s.torn_tail, "a clean prefix is not a torn tail");
    }

    #[test]
    fn torn_tail_is_detected_and_clipped() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        wal.append(&image(1, 1, 64)).unwrap();
        wal.append(&image(2, 2, 64)).unwrap();
        wal.sync().unwrap();
        let anchor = wal.anchor();
        let pages = scan(d.as_ref(), anchor).unwrap().pages;
        // Corrupt the last bytes of the stream on the tail page.
        let tail = *pages.last().unwrap();
        let mut buf = vec![0u8; 256];
        d.read(tail, &mut buf).unwrap();
        let used = u16::from_le_bytes(buf[12..14].try_into().unwrap()) as usize;
        for b in &mut buf[HDR + used - 8..HDR + used] {
            *b ^= 0xFF;
        }
        d.write(tail, &buf).unwrap();

        let s = scan(d.as_ref(), anchor).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records.len(), 1, "the intact prefix survives");
        assert_eq!(s.records[0].1, image(1, 1, 64));
    }

    #[test]
    fn rewind_recycles_pages_and_bumps_generation() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        for round in 0..5u8 {
            for p in 0..4 {
                wal.append(&image(p, round, 200)).unwrap();
            }
            wal.commit(vec![round]).unwrap();
            wal.checkpoint_rewind(vec![round, round]).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.checkpoints, 5);
        // The chain is recycled: the disk must not have grown by five
        // rounds' worth of log pages.
        let after_one_round = stats.log_pages;
        assert!(
            d.num_pages() as usize <= after_one_round + 1,
            "log leaked pages: {} on disk, {} owned",
            d.num_pages(),
            after_one_round
        );
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert_eq!(s.generation, 6);
        assert_eq!(s.records.len(), 1, "rewind discards earlier generations");
        assert_eq!(s.records[0].1, WalRecord::Checkpoint { meta: vec![4, 4] });
        assert!(!s.torn_tail);
    }

    #[test]
    fn group_commit_policy_batches_syncs() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::GroupCommit(3)).unwrap();
        let mut durables = Vec::new();
        for i in 0..7u8 {
            let (_, durable) = wal.commit(vec![i]).unwrap();
            durables.push(durable);
        }
        assert_eq!(
            durables,
            vec![false, false, true, false, false, true, false]
        );
        assert!(wal.durable_lsn() < wal.last_lsn());
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), wal.last_lsn());
        assert_eq!(wal.stats().commits, 7);
        assert_eq!(wal.stats().records, 7);
    }

    #[test]
    fn manual_policy_never_syncs_on_commit() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::Manual).unwrap();
        let before = wal.stats().syncs;
        for i in 0..4u8 {
            let (_, durable) = wal.commit(vec![i]).unwrap();
            assert!(!durable);
        }
        assert_eq!(wal.stats().syncs, before);
    }

    #[test]
    fn reopen_requires_rewind_before_append() {
        let d = disk(256);
        let anchor;
        {
            let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
            anchor = wal.anchor();
            wal.append(&image(5, 5, 100)).unwrap();
            wal.commit(b"m".to_vec()).unwrap();
        }
        let (wal, s) = Wal::reopen(d.clone(), anchor, SyncPolicy::EveryCommit).unwrap();
        assert!(s.valid);
        assert_eq!(s.records.len(), 2);
        assert!(wal.append(&image(1, 1, 8)).is_err(), "append before rewind");
        wal.checkpoint_rewind(b"base".to_vec()).unwrap();
        wal.append(&image(1, 1, 8)).unwrap();
        wal.commit(b"m2".to_vec()).unwrap();
        let s = scan(d.as_ref(), anchor).unwrap();
        assert_eq!(s.records.len(), 3, "checkpoint + image + commit");
        assert!(matches!(s.records[0].1, WalRecord::Checkpoint { .. }));
        // LSNs continued past the pre-crash log.
        assert!(s.records[0].0 > 2);
    }

    #[test]
    fn reopen_of_garbage_is_invalid_not_fatal() {
        let d = disk(256);
        d.allocate().unwrap(); // a zeroed page is not a log
        let s = scan(d.as_ref(), 0).unwrap();
        assert!(!s.valid);
        assert!(s.records.is_empty());
        let s = scan(d.as_ref(), 7).unwrap(); // out of bounds
        assert!(!s.valid);
    }

    #[test]
    fn stats_display_is_readable() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::EveryCommit).unwrap();
        wal.append(&image(1, 1, 32)).unwrap();
        wal.commit(vec![]).unwrap();
        let text = wal.stats().to_string();
        assert!(text.contains("records"), "{text}");
        assert!(text.contains("gen 1"), "{text}");
        assert_eq!(wal.policy(), SyncPolicy::EveryCommit);
    }
}
