//! The log: a byte stream of CRC-framed records chunked into a chain of
//! pages on a [`DiskBackend`], rewound in place at every checkpoint.
//!
//! # On-disk layout
//!
//! Every log page starts with a 14-byte header:
//!
//! ```text
//! [magic u32 = "BWAL"] [generation u32] [next PageId u32] [used u16]
//! ```
//!
//! followed by `used` bytes of record stream. Records span page
//! boundaries freely; each is framed as
//!
//! ```text
//! [len u32] [crc32 u32] [kind u8] [lsn u64] [payload ...]
//! ```
//!
//! with the CRC covering `kind..payload`. Page-delta payloads (kind 4)
//! are `[pid u32] [base_lsn u64] [count u16]` followed by `count` ranges
//! of `[offset u16] [len u16] [bytes ...]`.
//!
//! Within one page the stream is append-only, so a torn rewrite of the
//! tail page (power cut half-way through the sector) either reproduces
//! the old bytes exactly or breaks the CRC of the record under the tear —
//! either way [`scan`] stops at a well-defined prefix and reports
//! `torn_tail`.
//!
//! A checkpoint *rewinds* the log: the chain's pages are recycled, the
//! generation number is bumped, and a fresh stream starts at the anchor
//! page with a [`WalRecord::Checkpoint`]. Stale pages of older
//! generations are ignored by [`scan`] (generation mismatch ends the
//! chain), so the log never grows past one generation of records.
//!
//! # Async group commit
//!
//! Under [`SyncPolicy::Async`] the `Wal` owns a background sync thread.
//! A commit appends its record, flags a sync request and returns; the
//! thread wakes, snapshots the tail page to disk, releases the log lock,
//! syncs the device, and then publishes the durable-LSN watermark (to
//! [`Wal::wait_durable`] waiters and the registered watcher). Commits
//! that land while a sync is in flight are batched into the next one.

use crate::{crc32, DeltaPolicy, DeltaRange, WalRecord};
use bur_storage::{DiskBackend, Lsn, PageId, StorageResult, SyncPolicy, INVALID_PAGE};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic number opening every log page ("BWAL", little-endian).
pub const WAL_PAGE_MAGIC: u32 = 0x4C41_5742;

/// Default commit-record debounce under [`SyncPolicy::Async`]: the
/// background syncer is *requested* only every this many commit records
/// (see [`Wal::set_async_coalesce`]); in between, commits ride the
/// coalescing window.
pub const DEFAULT_ASYNC_COALESCE: u32 = 8;

/// How long the background syncer lets further commits accumulate after
/// the first unsynced one before syncing anyway. Bounds the durability
/// lag of a debounced single-threaded commit stream.
const ASYNC_COALESCE_WINDOW: Duration = Duration::from_millis(2);

/// Log page header size in bytes.
pub(crate) const HDR: usize = 14;

/// Record frame header size ahead of the body (`len` + `crc`).
pub(crate) const FRAME: usize = 8;

/// Body prefix: kind tag + LSN.
pub(crate) const BODY_PREFIX: usize = 9;

/// A run of equal bytes shorter than this is folded into the surrounding
/// changed ranges when diffing a page: each extra range costs a 4-byte
/// header, so splitting on tiny gaps would grow the record.
const DIFF_MERGE_GAP: usize = 8;

fn wal_state_error(msg: &'static str) -> bur_storage::StorageError {
    bur_storage::StorageError::Io(std::io::Error::other(msg))
}

/// The previous logged image of a page within the current generation —
/// the base the next delta is diffed against.
struct PageTrack {
    data: Box<[u8]>,
    /// LSN of the record that produced `data`.
    last_lsn: Lsn,
    /// Records since the last full-image anchor.
    since_anchor: u32,
}

/// Mutable log state behind the [`Wal`] lock.
struct WalInner {
    generation: u32,
    /// Page currently being filled.
    cur: PageId,
    /// In-memory image of `cur` (header rewritten on every page write).
    buf: Box<[u8]>,
    /// Bytes of record stream in `cur`.
    used: usize,
    /// Pages of the current generation, anchor first.
    chain: Vec<PageId>,
    /// Recycled pages from previous generations.
    spare: Vec<PageId>,
    next_lsn: Lsn,
    last_lsn: Lsn,
    durable_lsn: Lsn,
    /// `cur` holds appended bytes not yet written to the disk.
    dirty_tail: bool,
    commits_since_sync: u32,
    /// Set by [`Wal::reopen`]: the log must be rewound (checkpointed)
    /// before new records may be appended.
    needs_rewind: bool,
    /// Per-page delta-encoder state, cleared at every rewind.
    tracks: HashMap<PageId, PageTrack>,
    /// Async: the background thread should sync as soon as it can.
    sync_requested: bool,
    /// Threads currently blocked in [`Wal::wait_durable`]; while any
    /// exist, commit debouncing is suspended (hard acks stay prompt).
    waiters: u32,
    /// Async: the background thread must exit.
    shutdown: bool,
    /// Async: a background sync failed; surfaced to the next caller that
    /// asks about durability.
    sync_error: Option<bur_storage::StorageError>,
}

/// Monotonic counters describing log activity since creation.
#[derive(Debug, Default)]
struct WalCounters {
    records: AtomicU64,
    images: AtomicU64,
    deltas: AtomicU64,
    delta_bytes: AtomicU64,
    delta_saved_bytes: AtomicU64,
    commits: AtomicU64,
    checkpoints: AtomicU64,
    syncs: AtomicU64,
    page_writes: AtomicU64,
    bytes_appended: AtomicU64,
    rewinds: AtomicU64,
}

/// A point-in-time view of a [`Wal`]'s counters and positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStatsSnapshot {
    /// Records appended (all kinds).
    pub records: u64,
    /// Full page-image records appended (delta anchors included).
    pub images: u64,
    /// Page-delta records appended.
    pub deltas: u64,
    /// Record-stream bytes spent on delta records (frame + body).
    pub delta_bytes: u64,
    /// Bytes the delta encoder avoided appending, versus logging a full
    /// image for each delta record.
    pub delta_saved_bytes: u64,
    /// Commit records appended.
    pub commits: u64,
    /// Checkpoints taken (log rewinds).
    pub checkpoints: u64,
    /// Durable syncs performed.
    pub syncs: u64,
    /// Physical log-page writes.
    pub page_writes: u64,
    /// Record-stream bytes appended.
    pub bytes_appended: u64,
    /// Log rewinds (equals checkpoints; kept separate for clarity).
    pub rewinds: u64,
    /// Highest LSN assigned.
    pub last_lsn: Lsn,
    /// Highest LSN known durable.
    pub durable_lsn: Lsn,
    /// Current log generation.
    pub generation: u32,
    /// Pages owned by the log (current chain + recycled spares).
    pub log_pages: usize,
}

impl fmt::Display for WalStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gen {} lsn {} (durable {}) | {} records ({} images, {} deltas, {} commits, \
             {} checkpoints) | {} B appended ({} B saved by deltas), {} page writes, {} syncs, \
             {} pages",
            self.generation,
            self.last_lsn,
            self.durable_lsn,
            self.records,
            self.images,
            self.deltas,
            self.commits,
            self.checkpoints,
            self.bytes_appended,
            self.delta_saved_bytes,
            self.page_writes,
            self.syncs,
            self.log_pages
        )
    }
}

/// A record about to be appended, borrowing its payload. Internal twin of
/// [`WalRecord`] so the hot path ([`Wal::append_page`]) never copies a
/// page just to wrap it in an owned enum.
enum RecordRef<'a> {
    Image {
        pid: PageId,
        data: &'a [u8],
    },
    Delta {
        pid: PageId,
        base_lsn: Lsn,
        ranges: &'a [DeltaRange],
    },
    Commit(&'a [u8]),
    Checkpoint(&'a [u8]),
}

impl RecordRef<'_> {
    fn kind(&self) -> u8 {
        match self {
            RecordRef::Image { .. } => 1,
            RecordRef::Commit(_) => 2,
            RecordRef::Checkpoint(_) => 3,
            RecordRef::Delta { .. } => 4,
        }
    }
}

/// Callback invoked with each new durable-LSN watermark.
type DurableWatcher = Box<dyn Fn(Lsn) + Send + Sync>;

/// State shared between the [`Wal`] handle and its background syncer.
struct WalShared {
    disk: Arc<dyn DiskBackend>,
    anchor: PageId,
    policy: SyncPolicy,
    delta: DeltaPolicy,
    inner: Mutex<WalInner>,
    counters: WalCounters,
    /// Wakes the background syncer (sync requested or shutdown).
    sync_signal: Condvar,
    /// Wakes threads blocked in [`Wal::wait_durable`].
    durable_signal: Condvar,
    /// `true` while a background syncer thread serves this log
    /// ([`SyncPolicy::Async`] and not yet shut down).
    has_syncer: AtomicBool,
    /// Async commit debounce: request a background sync only every this
    /// many commit records (min 1 = request per commit, the pre-debounce
    /// behavior). The coalescing window bounds the added latency.
    coalesce: AtomicU32,
    /// Called (outside the log lock) with the new durable LSN after every
    /// background sync; lets the buffer pool unblock gated flushes
    /// without polling.
    watcher: Mutex<Option<DurableWatcher>>,
}

impl WalShared {
    fn append_inner(&self, inner: &mut WalInner, rec: &RecordRef<'_>) -> StorageResult<Lsn> {
        if inner.needs_rewind {
            return Err(wal_state_error(
                "wal: reopened log must be checkpoint-rewound before appending",
            ));
        }
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.last_lsn = lsn;

        let mut body = Vec::with_capacity(BODY_PREFIX + 16);
        body.push(rec.kind());
        body.extend_from_slice(&lsn.to_le_bytes());
        match rec {
            RecordRef::Image { pid, data } => {
                body.extend_from_slice(&pid.to_le_bytes());
                body.extend_from_slice(data);
                self.counters.images.fetch_add(1, Ordering::Relaxed);
            }
            RecordRef::Delta {
                pid,
                base_lsn,
                ranges,
            } => {
                body.extend_from_slice(&pid.to_le_bytes());
                body.extend_from_slice(&base_lsn.to_le_bytes());
                body.extend_from_slice(&(ranges.len() as u16).to_le_bytes());
                for r in *ranges {
                    body.extend_from_slice(&r.offset.to_le_bytes());
                    body.extend_from_slice(&(r.bytes.len() as u16).to_le_bytes());
                    body.extend_from_slice(&r.bytes);
                }
                self.counters.deltas.fetch_add(1, Ordering::Relaxed);
            }
            RecordRef::Commit(meta) => {
                body.extend_from_slice(meta);
            }
            RecordRef::Checkpoint(meta) => {
                body.extend_from_slice(meta);
            }
        }
        let mut frame = Vec::with_capacity(FRAME + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        if let RecordRef::Delta { .. } = rec {
            self.counters
                .delta_bytes
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
        }

        let cap = self.disk.page_size() - HDR;
        let mut off = 0;
        while off < frame.len() {
            if inner.used == cap {
                self.advance_page(inner)?;
            }
            let n = (cap - inner.used).min(frame.len() - off);
            let start = HDR + inner.used;
            inner.buf[start..start + n].copy_from_slice(&frame[off..off + n]);
            inner.used += n;
            off += n;
            inner.dirty_tail = true;
        }
        self.counters.records.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_appended
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Finalize the (full) current page with a pointer to a fresh page
    /// and switch to it.
    fn advance_page(&self, inner: &mut WalInner) -> StorageResult<()> {
        let next = match inner.spare.pop() {
            Some(p) => p,
            None => self.disk.allocate()?,
        };
        self.write_cur_page(inner, next)?;
        inner.chain.push(next);
        inner.cur = next;
        inner.used = 0;
        inner.buf.fill(0);
        inner.dirty_tail = false;
        Ok(())
    }

    /// Write the current page image (header + stream) to the disk.
    fn write_cur_page(&self, inner: &mut WalInner, next: PageId) -> StorageResult<()> {
        inner.buf[0..4].copy_from_slice(&WAL_PAGE_MAGIC.to_le_bytes());
        inner.buf[4..8].copy_from_slice(&inner.generation.to_le_bytes());
        inner.buf[8..12].copy_from_slice(&next.to_le_bytes());
        inner.buf[12..14].copy_from_slice(&(inner.used as u16).to_le_bytes());
        self.disk.write(inner.cur, &inner.buf)?;
        self.counters.page_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn sync_inner(&self, inner: &mut WalInner) -> StorageResult<()> {
        if inner.dirty_tail {
            self.write_cur_page(inner, INVALID_PAGE)?;
            inner.dirty_tail = false;
        }
        self.disk.sync()?;
        inner.durable_lsn = inner.last_lsn;
        inner.commits_since_sync = 0;
        self.counters.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn notify_watcher(&self, lsn: Lsn) {
        let watcher = self.watcher.lock();
        if let Some(f) = watcher.as_ref() {
            f(lsn);
        }
    }

    /// Block until every record at or below `lsn` is durable; returns
    /// the durable watermark. Shared by [`Wal::wait_durable`] and
    /// [`WalWaiter::wait`].
    fn wait_durable_inner(&self, lsn: Lsn) -> StorageResult<Lsn> {
        let mut inner = self.inner.lock();
        loop {
            // Success first: a caller whose records are already durable
            // must not be handed a later batch's sync failure (that error
            // stays queued for a waiter it actually affects).
            if inner.durable_lsn >= lsn {
                return Ok(inner.durable_lsn);
            }
            if let Some(e) = inner.sync_error.take() {
                return Err(e);
            }
            if !self.has_syncer.load(Ordering::Acquire) {
                self.sync_inner(&mut inner)?;
                continue;
            }
            if inner.shutdown {
                return Err(wal_state_error(
                    "wal: log shut down before the awaited LSN became durable",
                ));
            }
            inner.waiters += 1;
            inner.sync_requested = true;
            self.sync_signal.notify_all();
            self.durable_signal.wait(&mut inner);
            inner.waiters -= 1;
        }
    }

    /// The background group-committer (Async policy). Batches every sync
    /// request that arrives while a device sync is in flight into the
    /// next one, and syncs the device *outside* the log lock so appenders
    /// overlap the I/O.
    ///
    /// Sync requests are debounced by the committers (one request per
    /// [`WalShared::coalesce`] commit records); the loop backstops the
    /// debounce with a *coalescing window*: once any commit is unsynced,
    /// it syncs after at most [`ASYNC_COALESCE_WINDOW`] even if the
    /// request threshold is never reached, so a stalling commit stream
    /// never leaves its tail lingering.
    fn syncer_loop(self: &Arc<Self>) {
        loop {
            let target = {
                let mut inner = self.inner.lock();
                loop {
                    if inner.shutdown {
                        // Exit without a final sync: dropping the log
                        // models a crash in tests, and clean shutdowns
                        // checkpoint (which syncs synchronously) before
                        // dropping.
                        return;
                    }
                    if inner.sync_requested {
                        break;
                    }
                    if inner.commits_since_sync > 0 || inner.dirty_tail {
                        // Unsynced work exists but nobody asked yet:
                        // coalesce, then sync at the deadline anyway.
                        let deadline = Instant::now() + ASYNC_COALESCE_WINDOW;
                        if self
                            .sync_signal
                            .wait_until(&mut inner, deadline)
                            .timed_out()
                        {
                            break;
                        }
                    } else {
                        self.sync_signal.wait(&mut inner);
                    }
                }
                inner.sync_requested = false;
                if inner.dirty_tail {
                    if let Err(e) = self.write_cur_page(&mut inner, INVALID_PAGE) {
                        inner.sync_error = Some(e);
                        drop(inner);
                        self.durable_signal.notify_all();
                        continue;
                    }
                    inner.dirty_tail = false;
                }
                // Everything at or below this LSN is fully written to log
                // pages; later appends may rewrite the tail page but only
                // ever extend its (append-only) stream.
                inner.last_lsn
            };
            let synced = self.disk.sync();
            let ok = synced.is_ok();
            {
                let mut inner = self.inner.lock();
                match synced {
                    Ok(()) => {
                        if target > inner.durable_lsn {
                            inner.durable_lsn = target;
                        }
                        inner.commits_since_sync = 0;
                        self.counters.syncs.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => inner.sync_error = Some(e),
                }
            }
            self.durable_signal.notify_all();
            if ok {
                self.notify_watcher(target);
            }
        }
    }
}

/// The write-ahead log. See the [crate docs](crate) for the protocol;
/// the on-disk layout is documented at the top of this source file.
pub struct Wal {
    shared: Arc<WalShared>,
    /// Background group-committer, live only under [`SyncPolicy::Async`].
    syncer: Option<std::thread::JoinHandle<()>>,
}

impl Wal {
    /// Create a fresh log with the default [`DeltaPolicy`]: allocates the
    /// anchor page and writes an empty generation-1 stream to it.
    pub fn create(disk: Arc<dyn DiskBackend>, policy: SyncPolicy) -> StorageResult<Self> {
        Self::create_with(disk, policy, DeltaPolicy::default())
    }

    /// Create a fresh log with an explicit delta policy.
    pub fn create_with(
        disk: Arc<dyn DiskBackend>,
        policy: SyncPolicy,
        delta: DeltaPolicy,
    ) -> StorageResult<Self> {
        let anchor = disk.allocate()?;
        let ps = disk.page_size();
        let shared = Arc::new(WalShared {
            disk,
            anchor,
            policy,
            delta,
            inner: Mutex::new(WalInner {
                generation: 1,
                cur: anchor,
                buf: vec![0u8; ps].into_boxed_slice(),
                used: 0,
                chain: vec![anchor],
                spare: Vec::new(),
                next_lsn: 1,
                last_lsn: 0,
                durable_lsn: 0,
                dirty_tail: false,
                commits_since_sync: 0,
                needs_rewind: false,
                tracks: HashMap::new(),
                sync_requested: false,
                waiters: 0,
                shutdown: false,
                sync_error: None,
            }),
            counters: WalCounters::default(),
            sync_signal: Condvar::new(),
            durable_signal: Condvar::new(),
            has_syncer: AtomicBool::new(false),
            coalesce: AtomicU32::new(DEFAULT_ASYNC_COALESCE),
            watcher: Mutex::new(None),
        });
        {
            let mut inner = shared.inner.lock();
            shared.write_cur_page(&mut inner, INVALID_PAGE)?;
        }
        Ok(Self::finish(shared))
    }

    /// Reopen an existing log for recovery with the default
    /// [`DeltaPolicy`]: scans it and returns the surviving records. The
    /// log is positioned *read-only* — it must be rewound with
    /// [`Wal::checkpoint_rewind`] (after replaying the records and
    /// flushing the new base image) before appending again.
    pub fn reopen(
        disk: Arc<dyn DiskBackend>,
        anchor: PageId,
        policy: SyncPolicy,
    ) -> StorageResult<(Self, ScanResult)> {
        Self::reopen_with(disk, anchor, policy, DeltaPolicy::default())
    }

    /// Reopen with an explicit delta policy (see [`Wal::reopen`]).
    pub fn reopen_with(
        disk: Arc<dyn DiskBackend>,
        anchor: PageId,
        policy: SyncPolicy,
        delta: DeltaPolicy,
    ) -> StorageResult<(Self, ScanResult)> {
        let scanned = scan(disk.as_ref(), anchor)?;
        let ps = disk.page_size();
        let last = scanned.records.last().map_or(0, |&(lsn, _)| lsn);
        let shared = Arc::new(WalShared {
            disk,
            anchor,
            policy,
            delta,
            inner: Mutex::new(WalInner {
                generation: scanned.generation,
                cur: anchor,
                buf: vec![0u8; ps].into_boxed_slice(),
                used: 0,
                chain: vec![anchor],
                spare: scanned
                    .pages
                    .iter()
                    .copied()
                    .filter(|&p| p != anchor)
                    .collect(),
                next_lsn: last + 1,
                last_lsn: last,
                durable_lsn: last,
                dirty_tail: false,
                commits_since_sync: 0,
                needs_rewind: true,
                tracks: HashMap::new(),
                sync_requested: false,
                waiters: 0,
                shutdown: false,
                sync_error: None,
            }),
            counters: WalCounters::default(),
            sync_signal: Condvar::new(),
            durable_signal: Condvar::new(),
            has_syncer: AtomicBool::new(false),
            coalesce: AtomicU32::new(DEFAULT_ASYNC_COALESCE),
            watcher: Mutex::new(None),
        });
        Ok((Self::finish(shared), scanned))
    }

    /// Spawn the background syncer when the policy asks for one.
    fn finish(shared: Arc<WalShared>) -> Self {
        let syncer = if shared.policy == SyncPolicy::Async {
            shared.has_syncer.store(true, Ordering::Release);
            let s = shared.clone();
            Some(std::thread::spawn(move || s.syncer_loop()))
        } else {
            None
        };
        Self { shared, syncer }
    }

    /// The anchor (first) page of the log chain.
    #[must_use]
    pub fn anchor(&self) -> PageId {
        self.shared.anchor
    }

    /// The configured sync cadence.
    #[must_use]
    pub fn policy(&self) -> SyncPolicy {
        self.shared.policy
    }

    /// The configured delta policy.
    #[must_use]
    pub fn delta_policy(&self) -> DeltaPolicy {
        self.shared.delta
    }

    /// Highest LSN assigned so far.
    #[must_use]
    pub fn last_lsn(&self) -> Lsn {
        self.shared.inner.lock().last_lsn
    }

    /// Highest LSN known durable (on disk and synced).
    #[must_use]
    pub fn durable_lsn(&self) -> Lsn {
        self.shared.inner.lock().durable_lsn
    }

    /// Register the durable-LSN watcher: called (outside the log lock)
    /// after every *background* sync with the new watermark. Synchronous
    /// sync paths report durability through their return values instead.
    pub fn set_durable_watcher(&self, f: Box<dyn Fn(Lsn) + Send + Sync>) {
        *self.shared.watcher.lock() = Some(f);
    }

    /// Block until every record at or below `lsn` is durable; returns the
    /// durable watermark. Under [`SyncPolicy::Async`] this waits on the
    /// background thread; under the synchronous policies it syncs inline.
    pub fn wait_durable(&self, lsn: Lsn) -> StorageResult<Lsn> {
        // Push the watermark to the registered watcher before returning:
        // the background syncer publishes `durable_lsn` (and wakes this
        // waiter) *before* it runs the watcher callback, so without this
        // a caller could observe durability while a flush-gating buffer
        // pool still holds the stale watermark. The watcher is monotone
        // (watchers take the max), so the duplicate notification is safe.
        let watermark = self.shared.wait_durable_inner(lsn)?;
        self.shared.notify_watcher(watermark);
        Ok(watermark)
    }

    /// A clonable handle that can await the durable-LSN watermark without
    /// borrowing the `Wal` (or the index owning it). This is what a
    /// commit ticket holds: `wait` blocks exactly like
    /// [`Wal::wait_durable`], including the inline-sync fallback under
    /// the synchronous policies.
    #[must_use]
    pub fn waiter(&self) -> WalWaiter {
        WalWaiter {
            shared: self.shared.clone(),
        }
    }

    /// Set the async commit debounce: under [`SyncPolicy::Async`] a
    /// background sync is *requested* only every `commits` commit
    /// records (the coalescing window still bounds the lag between a
    /// commit and its sync). `1` restores a request per commit — the
    /// pre-debounce behavior, which costs a condvar signal and usually a
    /// tail-page write per commit on single-threaded streams. Values of
    /// 0 are treated as 1. No effect under the synchronous policies.
    pub fn set_async_coalesce(&self, commits: u32) {
        self.shared
            .coalesce
            .store(commits.max(1), Ordering::Relaxed);
    }

    /// The configured async commit debounce (see
    /// [`Wal::set_async_coalesce`]).
    #[must_use]
    pub fn async_coalesce(&self) -> u32 {
        self.shared.coalesce.load(Ordering::Relaxed)
    }

    /// Counter snapshot for tooling and benches.
    #[must_use]
    pub fn stats(&self) -> WalStatsSnapshot {
        let c = &self.shared.counters;
        let inner = self.shared.inner.lock();
        WalStatsSnapshot {
            records: c.records.load(Ordering::Relaxed),
            images: c.images.load(Ordering::Relaxed),
            deltas: c.deltas.load(Ordering::Relaxed),
            delta_bytes: c.delta_bytes.load(Ordering::Relaxed),
            delta_saved_bytes: c.delta_saved_bytes.load(Ordering::Relaxed),
            commits: c.commits.load(Ordering::Relaxed),
            checkpoints: c.checkpoints.load(Ordering::Relaxed),
            syncs: c.syncs.load(Ordering::Relaxed),
            page_writes: c.page_writes.load(Ordering::Relaxed),
            bytes_appended: c.bytes_appended.load(Ordering::Relaxed),
            rewinds: c.rewinds.load(Ordering::Relaxed),
            last_lsn: inner.last_lsn,
            durable_lsn: inner.durable_lsn,
            generation: inner.generation,
            log_pages: inner.chain.len() + inner.spare.len(),
        }
    }

    /// Append one record; returns its LSN. The record is durable only
    /// after the next [`Wal::sync`] (or automatic sync via
    /// [`Wal::commit`]'s policy).
    pub fn append(&self, rec: &WalRecord) -> StorageResult<Lsn> {
        let mut inner = self.shared.inner.lock();
        let rref = match rec {
            WalRecord::PageImage { pid, data } => RecordRef::Image { pid: *pid, data },
            WalRecord::PageDelta {
                pid,
                base_lsn,
                ranges,
            } => RecordRef::Delta {
                pid: *pid,
                base_lsn: *base_lsn,
                ranges,
            },
            WalRecord::Commit { meta } => RecordRef::Commit(meta),
            WalRecord::Checkpoint { meta } => RecordRef::Checkpoint(meta),
        };
        self.shared.append_inner(&mut inner, &rref)
    }

    /// Log the current content of page `pid`, letting the delta encoder
    /// choose between a full image and a [`WalRecord::PageDelta`] against
    /// the page's previous image in this generation (see [`DeltaPolicy`]).
    /// Returns the record's LSN. `data` must be exactly one page; a copy
    /// is retained as the base for the page's next delta (reusing the
    /// page's existing track buffer, so the steady state allocates
    /// nothing).
    pub fn append_page(&self, pid: PageId, data: &[u8]) -> StorageResult<Lsn> {
        let shared = &self.shared;
        let delta = shared.delta;
        let mut inner = shared.inner.lock();
        let deltas_on =
            delta.enabled && delta.anchor_every >= 2 && data.len() <= usize::from(u16::MAX);
        if deltas_on {
            if let Some(track) = inner.tracks.get(&pid) {
                if track.data.len() == data.len() && track.since_anchor + 1 < delta.anchor_every {
                    let ranges = diff_ranges(&track.data, data);
                    let delta_body: usize =
                        14 + ranges.iter().map(|r| 4 + r.bytes.len()).sum::<usize>();
                    // Worth a delta only when it actually beats the full
                    // image (a full rewrite degenerates to one big range).
                    if delta_body < 4 + data.len() {
                        let base_lsn = track.last_lsn;
                        let lsn = shared.append_inner(
                            &mut inner,
                            &RecordRef::Delta {
                                pid,
                                base_lsn,
                                ranges: &ranges,
                            },
                        )?;
                        shared
                            .counters
                            .delta_saved_bytes
                            .fetch_add((4 + data.len() - delta_body) as u64, Ordering::Relaxed);
                        let track = inner.tracks.get_mut(&pid).expect("track checked above");
                        track.data.copy_from_slice(data);
                        track.last_lsn = lsn;
                        track.since_anchor += 1;
                        return Ok(lsn);
                    }
                }
            }
        }
        let lsn = shared.append_inner(&mut inner, &RecordRef::Image { pid, data })?;
        if deltas_on {
            match inner.tracks.get_mut(&pid) {
                Some(track) if track.data.len() == data.len() => {
                    track.data.copy_from_slice(data);
                    track.last_lsn = lsn;
                    track.since_anchor = 0;
                }
                _ => {
                    inner.tracks.insert(
                        pid,
                        PageTrack {
                            data: data.to_vec().into_boxed_slice(),
                            last_lsn: lsn,
                            since_anchor: 0,
                        },
                    );
                }
            }
        }
        Ok(lsn)
    }

    /// Append a [`WalRecord::Commit`] and apply the sync policy. Returns
    /// `(lsn, durable)` where `durable` says whether this commit is
    /// already synced. Under [`SyncPolicy::Async`] the commit returns
    /// immediately with `durable == false` and the background thread
    /// syncs it as part of the next batch ([`Wal::wait_durable`] blocks
    /// until then).
    pub fn commit(&self, meta: Vec<u8>) -> StorageResult<(Lsn, bool)> {
        let mut inner = self.shared.inner.lock();
        let lsn = self
            .shared
            .append_inner(&mut inner, &RecordRef::Commit(&meta))?;
        inner.commits_since_sync += 1;
        let do_sync = match self.shared.policy {
            SyncPolicy::EveryCommit => true,
            SyncPolicy::GroupCommit(n) => inner.commits_since_sync >= n.max(1),
            SyncPolicy::Async => {
                // Debounce: wake the syncer for the *first* unsynced
                // commit (it opens the coalescing window) and again once
                // a full coalesce batch accumulated — or immediately
                // while hard-ack waiters are blocked. Everything else
                // rides the window.
                let coalesce = self.shared.coalesce.load(Ordering::Relaxed).max(1);
                if inner.waiters > 0 || inner.commits_since_sync >= coalesce {
                    inner.sync_requested = true;
                    self.shared.sync_signal.notify_all();
                } else if inner.commits_since_sync == 1 {
                    self.shared.sync_signal.notify_all();
                }
                false
            }
            SyncPolicy::Manual => false,
        };
        if do_sync {
            self.shared.sync_inner(&mut inner)?;
        }
        self.shared.counters.commits.fetch_add(1, Ordering::Relaxed);
        Ok((lsn, do_sync))
    }

    /// Make every appended record durable: write the tail page and sync
    /// the disk (inline, regardless of policy).
    pub fn sync(&self) -> StorageResult<()> {
        let mut inner = self.shared.inner.lock();
        if let Some(e) = inner.sync_error.take() {
            return Err(e);
        }
        self.shared.sync_inner(&mut inner)
    }

    /// Checkpoint: recycle the current generation's pages, start a fresh
    /// generation at the anchor whose first record is a
    /// [`WalRecord::Checkpoint`] carrying `meta`, and sync it. The caller
    /// must have flushed the buffer pool *before* this, so the on-disk
    /// pages are a complete base image for `meta`.
    pub fn checkpoint_rewind(&self, meta: Vec<u8>) -> StorageResult<Lsn> {
        let mut inner = self.shared.inner.lock();
        let old_chain = std::mem::take(&mut inner.chain);
        inner
            .spare
            .extend(old_chain.into_iter().filter(|&p| p != self.shared.anchor));
        inner.generation = inner.generation.wrapping_add(1);
        inner.cur = self.shared.anchor;
        inner.used = 0;
        inner.buf.fill(0);
        inner.chain = vec![self.shared.anchor];
        inner.dirty_tail = true; // the fresh header must reach the disk
        inner.needs_rewind = false;
        inner.commits_since_sync = 0;
        // The new generation's first image of every page is full again.
        inner.tracks.clear();
        let lsn = self
            .shared
            .append_inner(&mut inner, &RecordRef::Checkpoint(&meta))?;
        self.shared.sync_inner(&mut inner)?;
        self.shared
            .counters
            .checkpoints
            .fetch_add(1, Ordering::Relaxed);
        self.shared.counters.rewinds.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if let Some(handle) = self.syncer.take() {
            {
                let mut inner = self.shared.inner.lock();
                inner.shutdown = true;
            }
            self.shared.sync_signal.notify_all();
            let _ = handle.join();
            // Outstanding `WalWaiter`s (commit tickets) must not hang on
            // a syncer that will never run again: wake them so the wait
            // loop observes the shutdown.
            self.shared.durable_signal.notify_all();
        }
    }
}

/// A clonable durable-watermark waiter detached from the [`Wal`] handle
/// (see [`Wal::waiter`]). Safe to hold across the index lock: waiting
/// never touches index state, only the log.
#[derive(Clone)]
pub struct WalWaiter {
    shared: Arc<WalShared>,
}

impl fmt::Debug for WalWaiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalWaiter")
            .field("durable_lsn", &self.durable_lsn())
            .finish()
    }
}

impl WalWaiter {
    /// Block until every record at or below `lsn` is durable; returns
    /// the durable watermark (like [`Wal::wait_durable`]). The watermark
    /// is also pushed to the registered durable watcher, so a buffer
    /// pool gating flushes on the durable LSN learns about inline syncs
    /// too.
    pub fn wait(&self, lsn: Lsn) -> StorageResult<Lsn> {
        let watermark = self.shared.wait_durable_inner(lsn)?;
        self.shared.notify_watcher(watermark);
        Ok(watermark)
    }

    /// Highest LSN currently known durable.
    #[must_use]
    pub fn durable_lsn(&self) -> Lsn {
        self.shared.inner.lock().durable_lsn
    }

    /// Highest LSN assigned so far.
    #[must_use]
    pub fn last_lsn(&self) -> Lsn {
        self.shared.inner.lock().last_lsn
    }
}

/// Diff `new` against `old` (equal lengths) into ascending changed
/// ranges, folding gaps shorter than [`DIFF_MERGE_GAP`] equal bytes into
/// the surrounding ranges.
fn diff_ranges(old: &[u8], new: &[u8]) -> Vec<DeltaRange> {
    debug_assert_eq!(old.len(), new.len());
    let n = new.len();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < n {
        // Fast-skip equal prefixes in 8-byte chunks.
        while i + 8 <= n && old[i..i + 8] == new[i..i + 8] {
            i += 8;
        }
        while i < n && old[i] == new[i] {
            i += 1;
        }
        if i == n {
            break;
        }
        let start = i;
        let mut end = i + 1;
        let mut j = i + 1;
        let mut gap = 0;
        while j < n && gap < DIFF_MERGE_GAP {
            if old[j] != new[j] {
                end = j + 1;
                gap = 0;
            } else {
                gap += 1;
            }
            j += 1;
        }
        ranges.push(DeltaRange {
            offset: start as u16,
            bytes: new[start..end].to_vec(),
        });
        i = end;
    }
    ranges
}

/// What [`scan`] found in a log chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// `false` when the anchor page is not a log page at all (no magic):
    /// every other field is empty/zero then.
    pub valid: bool,
    /// Generation of the scanned chain.
    pub generation: u32,
    /// Surviving records in LSN order.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Pages of the chain, anchor first.
    pub pages: Vec<PageId>,
    /// `true` when the stream ended in a torn or stale record (crash
    /// artifact) rather than cleanly.
    pub torn_tail: bool,
    /// Total record-stream bytes seen (including any torn tail).
    pub stream_bytes: usize,
}

/// Read a log chain from `anchor` and parse every surviving record.
/// Read-only: used by recovery and by `burctl wal-stats`.
pub fn scan(disk: &dyn DiskBackend, anchor: PageId) -> StorageResult<ScanResult> {
    let ps = disk.page_size();
    let cap = ps - HDR;
    let mut out = ScanResult {
        valid: false,
        generation: 0,
        records: Vec::new(),
        pages: Vec::new(),
        torn_tail: false,
        stream_bytes: 0,
    };
    if anchor >= disk.num_pages() {
        return Ok(out);
    }
    let mut buf = vec![0u8; ps];
    disk.read(anchor, &mut buf)?;
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != WAL_PAGE_MAGIC {
        return Ok(out);
    }
    out.valid = true;
    out.generation = u32::from_le_bytes(buf[4..8].try_into().unwrap());

    // Collect the stream across the chain.
    let mut stream = Vec::new();
    let mut pid = anchor;
    loop {
        out.pages.push(pid);
        let next = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let used = u16::from_le_bytes(buf[12..14].try_into().unwrap()) as usize;
        if used > cap {
            out.torn_tail = true;
            break;
        }
        stream.extend_from_slice(&buf[HDR..HDR + used]);
        if next == INVALID_PAGE {
            break;
        }
        if next >= disk.num_pages() || out.pages.contains(&next) {
            // The pointer outruns the disk (allocation lost to the crash)
            // or loops (stale garbage): stop at what we have.
            out.torn_tail = true;
            break;
        }
        if disk.read(next, &mut buf).is_err() {
            out.torn_tail = true;
            break;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let gen = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if magic != WAL_PAGE_MAGIC || gen != out.generation {
            // The next page was never (re)written under this generation:
            // the chain ends here.
            out.torn_tail = true;
            break;
        }
        pid = next;
    }
    out.stream_bytes = stream.len();

    // Parse records until the stream ends or breaks.
    let mut off = 0;
    let mut prev_lsn = 0;
    loop {
        match parse_frame(&stream, off, prev_lsn) {
            FrameStep::Parsed { lsn, rec, next_off } => {
                out.records.push((lsn, rec));
                prev_lsn = lsn;
                off = next_off;
            }
            FrameStep::End => break,
            FrameStep::Torn => {
                out.torn_tail = true;
                break;
            }
        }
    }
    if off < stream.len() && !out.torn_tail {
        out.torn_tail = true;
    }
    Ok(out)
}

/// Outcome of parsing one record frame from a stream position.
pub(crate) enum FrameStep {
    /// A complete, CRC-clean record; `next_off` is where the next frame
    /// starts.
    Parsed {
        /// The record's LSN.
        lsn: Lsn,
        /// The decoded record.
        rec: WalRecord,
        /// Stream offset of the following frame.
        next_off: usize,
    },
    /// The stream ends exactly at `off`: a clean boundary.
    End,
    /// The bytes at `off` are an incomplete, corrupt, or stale record —
    /// a torn tail (or, on a live log, a record still being appended).
    Torn,
}

/// Parse the record frame at `stream[off..]`. `prev_lsn` is the LSN of
/// the preceding record; anything at or below it is stale bytes from an
/// earlier pass over a recycled page and parses as [`FrameStep::Torn`].
pub(crate) fn parse_frame(stream: &[u8], off: usize, prev_lsn: Lsn) -> FrameStep {
    if off == stream.len() {
        return FrameStep::End;
    }
    if off + FRAME > stream.len() {
        return FrameStep::Torn;
    }
    let len = u32::from_le_bytes(stream[off..off + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(stream[off + 4..off + 8].try_into().unwrap());
    if len < BODY_PREFIX || off + FRAME + len > stream.len() {
        return FrameStep::Torn;
    }
    let body = &stream[off + FRAME..off + FRAME + len];
    if crc32(body) != crc {
        return FrameStep::Torn;
    }
    let kind = body[0];
    let lsn = u64::from_le_bytes(body[1..9].try_into().unwrap());
    if lsn <= prev_lsn {
        return FrameStep::Torn;
    }
    let payload = &body[BODY_PREFIX..];
    let rec = match kind {
        1 => {
            if payload.len() < 4 {
                return FrameStep::Torn;
            }
            WalRecord::PageImage {
                pid: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
                data: payload[4..].to_vec(),
            }
        }
        2 => WalRecord::Commit {
            meta: payload.to_vec(),
        },
        3 => WalRecord::Checkpoint {
            meta: payload.to_vec(),
        },
        4 => match parse_delta(payload) {
            Some(rec) => rec,
            None => return FrameStep::Torn,
        },
        _ => return FrameStep::Torn,
    };
    FrameStep::Parsed {
        lsn,
        rec,
        next_off: off + FRAME + len,
    }
}

/// Parse a [`WalRecord::PageDelta`] payload; `None` on any bound
/// violation (treated as a torn record by the caller).
fn parse_delta(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() < 14 {
        return None;
    }
    let pid = u32::from_le_bytes(payload[0..4].try_into().unwrap());
    let base_lsn = u64::from_le_bytes(payload[4..12].try_into().unwrap());
    let count = u16::from_le_bytes(payload[12..14].try_into().unwrap()) as usize;
    let mut ranges = Vec::with_capacity(count.min(1 << 12));
    let mut off = 14;
    for _ in 0..count {
        if off + 4 > payload.len() {
            return None;
        }
        let offset = u16::from_le_bytes(payload[off..off + 2].try_into().unwrap());
        let len = u16::from_le_bytes(payload[off + 2..off + 4].try_into().unwrap()) as usize;
        off += 4;
        if off + len > payload.len() {
            return None;
        }
        ranges.push(DeltaRange {
            offset,
            bytes: payload[off..off + len].to_vec(),
        });
        off += len;
    }
    if off != payload.len() {
        return None;
    }
    Some(WalRecord::PageDelta {
        pid,
        base_lsn,
        ranges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_delta;
    use bur_storage::MemDisk;

    fn disk(ps: usize) -> Arc<MemDisk> {
        Arc::new(MemDisk::new(ps))
    }

    fn image(pid: PageId, fill: u8, ps: usize) -> WalRecord {
        WalRecord::PageImage {
            pid,
            data: vec![fill; ps],
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        let l1 = wal.append(&image(9, 0xAA, 256)).unwrap();
        let l2 = wal.append(&image(10, 0xBB, 256)).unwrap();
        let (l3, durable) = wal.commit(b"meta-1".to_vec()).unwrap();
        assert!(durable);
        assert!(l1 < l2 && l2 < l3);
        assert_eq!(wal.durable_lsn(), l3);

        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert!(s.valid);
        assert!(!s.torn_tail);
        assert_eq!(s.generation, 1);
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[0], (l1, image(9, 0xAA, 256)));
        assert_eq!(
            s.records[2],
            (
                l3,
                WalRecord::Commit {
                    meta: b"meta-1".to_vec()
                }
            )
        );
        // Two images of a 256-byte page cannot fit in one 256-byte log
        // page: the chain must have grown.
        assert!(s.pages.len() >= 2, "chain: {:?}", s.pages);
    }

    #[test]
    fn records_span_pages() {
        let d = disk(128);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        // One image is larger than a whole log page.
        let rec = WalRecord::PageImage {
            pid: 3,
            data: (0..128).map(|i| i as u8).collect(),
        };
        wal.append(&rec).unwrap();
        wal.sync().unwrap();
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].1, rec);
        assert!(!s.torn_tail);
    }

    #[test]
    fn unsynced_tail_is_invisible_after_crash() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        wal.append(&image(1, 1, 64)).unwrap();
        wal.sync().unwrap();
        // Appended but never synced: lives only in the tail buffer.
        wal.append(&image(2, 2, 64)).unwrap();
        drop(wal); // crash
        let s = scan(d.as_ref(), 0).unwrap();
        assert_eq!(s.records.len(), 1, "only the synced record survives");
        assert!(!s.torn_tail, "a clean prefix is not a torn tail");
    }

    #[test]
    fn torn_tail_is_detected_and_clipped() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        wal.append(&image(1, 1, 64)).unwrap();
        wal.append(&image(2, 2, 64)).unwrap();
        wal.sync().unwrap();
        let anchor = wal.anchor();
        let pages = scan(d.as_ref(), anchor).unwrap().pages;
        // Corrupt the last bytes of the stream on the tail page.
        let tail = *pages.last().unwrap();
        let mut buf = vec![0u8; 256];
        d.read(tail, &mut buf).unwrap();
        let used = u16::from_le_bytes(buf[12..14].try_into().unwrap()) as usize;
        for b in &mut buf[HDR + used - 8..HDR + used] {
            *b ^= 0xFF;
        }
        d.write(tail, &buf).unwrap();

        let s = scan(d.as_ref(), anchor).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records.len(), 1, "the intact prefix survives");
        assert_eq!(s.records[0].1, image(1, 1, 64));
    }

    #[test]
    fn rewind_recycles_pages_and_bumps_generation() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        for round in 0..5u8 {
            for p in 0..4 {
                wal.append(&image(p, round, 200)).unwrap();
            }
            wal.commit(vec![round]).unwrap();
            wal.checkpoint_rewind(vec![round, round]).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.checkpoints, 5);
        // The chain is recycled: the disk must not have grown by five
        // rounds' worth of log pages.
        let after_one_round = stats.log_pages;
        assert!(
            d.num_pages() as usize <= after_one_round + 1,
            "log leaked pages: {} on disk, {} owned",
            d.num_pages(),
            after_one_round
        );
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert_eq!(s.generation, 6);
        assert_eq!(s.records.len(), 1, "rewind discards earlier generations");
        assert_eq!(s.records[0].1, WalRecord::Checkpoint { meta: vec![4, 4] });
        assert!(!s.torn_tail);
    }

    #[test]
    fn group_commit_policy_batches_syncs() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::GroupCommit(3)).unwrap();
        let mut durables = Vec::new();
        for i in 0..7u8 {
            let (_, durable) = wal.commit(vec![i]).unwrap();
            durables.push(durable);
        }
        assert_eq!(
            durables,
            vec![false, false, true, false, false, true, false]
        );
        assert!(wal.durable_lsn() < wal.last_lsn());
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), wal.last_lsn());
        assert_eq!(wal.stats().commits, 7);
        assert_eq!(wal.stats().records, 7);
    }

    #[test]
    fn manual_policy_never_syncs_on_commit() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::Manual).unwrap();
        let before = wal.stats().syncs;
        for i in 0..4u8 {
            let (_, durable) = wal.commit(vec![i]).unwrap();
            assert!(!durable);
        }
        assert_eq!(wal.stats().syncs, before);
    }

    #[test]
    fn reopen_requires_rewind_before_append() {
        let d = disk(256);
        let anchor;
        {
            let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
            anchor = wal.anchor();
            wal.append(&image(5, 5, 100)).unwrap();
            wal.commit(b"m".to_vec()).unwrap();
        }
        let (wal, s) = Wal::reopen(d.clone(), anchor, SyncPolicy::EveryCommit).unwrap();
        assert!(s.valid);
        assert_eq!(s.records.len(), 2);
        assert!(wal.append(&image(1, 1, 8)).is_err(), "append before rewind");
        wal.checkpoint_rewind(b"base".to_vec()).unwrap();
        wal.append(&image(1, 1, 8)).unwrap();
        wal.commit(b"m2".to_vec()).unwrap();
        let s = scan(d.as_ref(), anchor).unwrap();
        assert_eq!(s.records.len(), 3, "checkpoint + image + commit");
        assert!(matches!(s.records[0].1, WalRecord::Checkpoint { .. }));
        // LSNs continued past the pre-crash log.
        assert!(s.records[0].0 > 2);
    }

    #[test]
    fn reopen_of_garbage_is_invalid_not_fatal() {
        let d = disk(256);
        d.allocate().unwrap(); // a zeroed page is not a log
        let s = scan(d.as_ref(), 0).unwrap();
        assert!(!s.valid);
        assert!(s.records.is_empty());
        let s = scan(d.as_ref(), 7).unwrap(); // out of bounds
        assert!(!s.valid);
    }

    #[test]
    fn stats_display_is_readable() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::EveryCommit).unwrap();
        wal.append(&image(1, 1, 32)).unwrap();
        wal.commit(vec![]).unwrap();
        let text = wal.stats().to_string();
        assert!(text.contains("records"), "{text}");
        assert!(text.contains("gen 1"), "{text}");
        assert!(text.contains("deltas"), "{text}");
        assert_eq!(wal.policy(), SyncPolicy::EveryCommit);
    }

    // ---- delta records ---------------------------------------------------

    #[test]
    fn append_page_logs_full_then_delta() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        let mut page = vec![0u8; 256];
        page[10] = 1;
        let l1 = wal.append_page(7, &page).unwrap();
        page[10] = 2;
        page[200] = 9;
        let l2 = wal.append_page(7, &page).unwrap();
        wal.sync().unwrap();

        let stats = wal.stats();
        assert_eq!(stats.images, 1, "first touch is a full image");
        assert_eq!(stats.deltas, 1);
        assert!(
            stats.delta_saved_bytes > 150,
            "saved: {}",
            stats.delta_saved_bytes
        );

        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert_eq!(s.records.len(), 2);
        let (lsn1, WalRecord::PageImage { pid: 7, data }) = &s.records[0] else {
            panic!("first record must be a full image: {:?}", s.records[0]);
        };
        assert_eq!(*lsn1, l1);
        let (
            lsn2,
            WalRecord::PageDelta {
                pid: 7,
                base_lsn,
                ranges,
            },
        ) = &s.records[1]
        else {
            panic!("second record must be a delta: {:?}", s.records[1]);
        };
        assert_eq!(*lsn2, l2);
        assert_eq!(*base_lsn, l1, "delta chains to the previous image");
        // Replaying the chain reproduces the final page.
        let mut replayed = data.clone();
        assert!(apply_delta(&mut replayed, ranges));
        assert_eq!(replayed, page);
    }

    #[test]
    fn anchor_cadence_forces_full_images() {
        let d = disk(512);
        let wal = Wal::create_with(
            d.clone(),
            SyncPolicy::Manual,
            DeltaPolicy {
                enabled: true,
                anchor_every: 4,
            },
        )
        .unwrap();
        let mut page = vec![0u8; 512];
        for i in 0..12u8 {
            page[i as usize] = i + 1;
            wal.append_page(3, &page).unwrap();
        }
        wal.sync().unwrap();
        let stats = wal.stats();
        // Records 1, 5, 9 are anchors (every 4th), the rest deltas.
        assert_eq!(stats.images, 3, "{stats}");
        assert_eq!(stats.deltas, 9, "{stats}");
        // Replay the mixed chain and compare against the final state.
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        let mut replayed = vec![0u8; 512];
        for (_, rec) in &s.records {
            match rec {
                WalRecord::PageImage { data, .. } => replayed.copy_from_slice(data),
                WalRecord::PageDelta { ranges, .. } => {
                    assert!(apply_delta(&mut replayed, ranges));
                }
                _ => {}
            }
        }
        assert_eq!(replayed, page);
    }

    #[test]
    fn full_rewrite_falls_back_to_full_image() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Manual).unwrap();
        wal.append_page(1, &[0xAA; 256]).unwrap();
        // Every byte changed: a delta would be bigger than the image.
        wal.append_page(1, &[0x55; 256]).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.images, 2);
        assert_eq!(stats.deltas, 0);
    }

    #[test]
    fn disabled_delta_policy_always_logs_full_images() {
        let d = disk(256);
        let wal =
            Wal::create_with(d.clone(), SyncPolicy::Manual, DeltaPolicy::full_images()).unwrap();
        let mut page = vec![0u8; 256];
        for i in 0..5u8 {
            page[0] = i;
            wal.append_page(2, &page).unwrap();
        }
        assert_eq!(wal.stats().images, 5);
        assert_eq!(wal.stats().deltas, 0);
        assert_eq!(wal.delta_policy(), DeltaPolicy::full_images());
    }

    #[test]
    fn rewind_resets_delta_chains() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::EveryCommit).unwrap();
        let mut page = vec![0u8; 256];
        wal.append_page(4, &page).unwrap();
        page[3] = 1;
        wal.append_page(4, &page).unwrap();
        wal.commit(vec![1]).unwrap();
        wal.checkpoint_rewind(vec![2]).unwrap();
        // First touch after the rewind must be a full image again.
        page[3] = 2;
        wal.append_page(4, &page).unwrap();
        wal.commit(vec![3]).unwrap();
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert!(
            matches!(s.records[1].1, WalRecord::PageImage { .. }),
            "post-rewind image must be full: {:?}",
            s.records[1].1
        );
    }

    #[test]
    fn diff_ranges_merges_small_gaps() {
        let old = vec![0u8; 64];
        let mut new = old.clone();
        new[10] = 1;
        new[12] = 1; // 1-byte gap: merged
        new[40] = 1; // far away: separate range
        let ranges = diff_ranges(&old, &new);
        assert_eq!(ranges.len(), 2, "{ranges:?}");
        assert_eq!(ranges[0].offset, 10);
        assert_eq!(ranges[0].bytes, vec![1, 0, 1]);
        assert_eq!(ranges[1].offset, 40);
        assert_eq!(ranges[1].bytes, vec![1]);
        // Round-trip.
        let mut replayed = old.clone();
        assert!(apply_delta(&mut replayed, &ranges));
        assert_eq!(replayed, new);
    }

    #[test]
    fn diff_ranges_empty_for_identical_pages() {
        let page = vec![7u8; 128];
        assert!(diff_ranges(&page, &page).is_empty());
    }

    // ---- async group commit ---------------------------------------------

    #[test]
    fn async_commit_returns_immediately_and_becomes_durable() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Async).unwrap();
        let mut last = 0;
        for i in 0..10u8 {
            wal.append_page(1, &vec![i; 256]).unwrap();
            let (lsn, durable) = wal.commit(vec![i]).unwrap();
            assert!(!durable, "async commits never sync inline");
            last = lsn;
        }
        let watermark = wal.wait_durable(last).unwrap();
        assert!(watermark >= last);
        assert_eq!(wal.durable_lsn(), watermark);
        let stats = wal.stats();
        assert!(
            stats.syncs <= stats.commits,
            "background thread batches syncs: {stats}"
        );
        // Everything survives a scan.
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert_eq!(
            s.records
                .iter()
                .filter(|(_, r)| r.name() == "commit")
                .count(),
            10
        );
    }

    #[test]
    fn async_watcher_publishes_watermarks() {
        use std::sync::atomic::AtomicU64;
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::Async).unwrap();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        wal.set_durable_watcher(Box::new(move |lsn| {
            seen2.fetch_max(lsn, Ordering::Relaxed);
        }));
        let (lsn, _) = wal.commit(b"x".to_vec()).unwrap();
        wal.wait_durable(lsn).unwrap();
        assert!(seen.load(Ordering::Relaxed) >= lsn);
    }

    #[test]
    fn async_checkpoint_rewind_is_synchronous() {
        let d = disk(256);
        let wal = Wal::create(d.clone(), SyncPolicy::Async).unwrap();
        wal.append_page(2, &[9; 256]).unwrap();
        wal.commit(vec![1]).unwrap();
        wal.checkpoint_rewind(vec![2]).unwrap();
        assert_eq!(wal.durable_lsn(), wal.last_lsn());
        let s = scan(d.as_ref(), wal.anchor()).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(matches!(s.records[0].1, WalRecord::Checkpoint { .. }));
        drop(wal); // must join the syncer without hanging
    }

    #[test]
    fn wait_durable_inline_without_background_thread() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::Manual).unwrap();
        let (lsn, durable) = wal.commit(vec![1]).unwrap();
        assert!(!durable);
        assert_eq!(wal.wait_durable(lsn).unwrap(), lsn);
    }

    #[test]
    fn async_coalescing_window_syncs_debounced_commits() {
        // With a huge debounce threshold no commit ever *requests* a
        // sync; the coalescing window must still make the tail durable
        // shortly after the stream stalls.
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::Async).unwrap();
        wal.set_async_coalesce(1_000_000);
        assert_eq!(wal.async_coalesce(), 1_000_000);
        let mut last = 0;
        for i in 0..5u8 {
            let (lsn, durable) = wal.commit(vec![i]).unwrap();
            assert!(!durable);
            last = lsn;
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while wal.durable_lsn() < last {
            assert!(
                Instant::now() < deadline,
                "coalescing window never synced the tail"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(wal.stats().syncs >= 1);
    }

    #[test]
    fn waiter_acks_like_wait_durable_and_survives_wal_drop() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::Async).unwrap();
        let waiter = wal.waiter();
        let (lsn, _) = wal.commit(b"x".to_vec()).unwrap();
        assert_eq!(waiter.wait(lsn).unwrap(), wal.durable_lsn());
        assert!(waiter.durable_lsn() >= lsn);
        assert_eq!(waiter.last_lsn(), wal.last_lsn());
        // An already-durable target stays satisfiable after the log (and
        // its background syncer) is gone ...
        drop(wal);
        assert_eq!(waiter.wait(lsn).unwrap(), waiter.durable_lsn());
        // ... while a target the syncer never covered errors instead of
        // hanging forever.
        assert!(waiter.wait(u64::MAX).is_err());
    }

    #[test]
    fn waiter_syncs_inline_under_synchronous_policies() {
        let d = disk(256);
        let wal = Wal::create(d, SyncPolicy::Manual).unwrap();
        let waiter = wal.waiter();
        let (lsn, durable) = wal.commit(vec![7]).unwrap();
        assert!(!durable);
        assert_eq!(waiter.wait(lsn).unwrap(), lsn);
        assert_eq!(wal.durable_lsn(), lsn);
    }
}
