//! Initial data distributions (Table 1: Uniform, Gaussian, Skewed).

use bur_geom::Point;
use rand::rngs::StdRng;
use rand::RngExt;

/// Initial placement of the objects over the unit square.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataDistribution {
    /// Independently uniform per axis (the paper's default).
    #[default]
    Uniform,
    /// Clustered around the center of the space: per-axis normal with
    /// mean 0.5 and σ = 0.15, clamped to the unit square. Sampled with
    /// Box–Muller (no extra dependency).
    Gaussian,
    /// Mass concentrated near the origin corner: per-axis `u³` for
    /// uniform `u`, leaving most of the space empty — which is what makes
    /// the paper's skewed queries cheap (Figure 6(d)).
    Skewed,
}

impl DataDistribution {
    /// Parse the names used by the experiment harness CLI.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Some(Self::Uniform),
            "gaussian" | "normal" => Some(Self::Gaussian),
            "skew" | "skewed" => Some(Self::Skewed),
            _ => None,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Uniform => "Uniform",
            Self::Gaussian => "Gaussian",
            Self::Skewed => "Skew",
        }
    }

    /// Draw one initial position.
    pub fn sample(&self, rng: &mut StdRng) -> Point {
        match self {
            Self::Uniform => Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
            Self::Gaussian => {
                let (a, b) = box_muller(rng);
                Point::new(
                    (0.5 + 0.15 * a).clamp(0.0, 1.0),
                    (0.5 + 0.15 * b).clamp(0.0, 1.0),
                )
            }
            Self::Skewed => {
                let u: f32 = rng.random_range(0.0..1.0);
                let v: f32 = rng.random_range(0.0..1.0);
                Point::new(u * u * u, v * v * v)
            }
        }
    }
}

/// One Box–Muller draw: two independent standard normals.
fn box_muller(rng: &mut StdRng) -> (f32, f32) {
    // Avoid ln(0).
    let u1: f32 = rng.random_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn samples(d: DataDistribution, n: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn all_samples_in_unit_square() {
        for d in [
            DataDistribution::Uniform,
            DataDistribution::Gaussian,
            DataDistribution::Skewed,
        ] {
            for p in samples(d, 5_000) {
                assert!((0.0..=1.0).contains(&p.x), "{d:?}: {p}");
                assert!((0.0..=1.0).contains(&p.y), "{d:?}: {p}");
            }
        }
    }

    #[test]
    fn uniform_covers_quadrants_evenly() {
        let pts = samples(DataDistribution::Uniform, 10_000);
        let q1 = pts.iter().filter(|p| p.x < 0.5 && p.y < 0.5).count();
        assert!((2_000..3_000).contains(&q1), "quadrant count {q1}");
    }

    #[test]
    fn gaussian_concentrates_center() {
        let pts = samples(DataDistribution::Gaussian, 10_000);
        let near = pts
            .iter()
            .filter(|p| (p.x - 0.5).abs() < 0.3 && (p.y - 0.5).abs() < 0.3)
            .count();
        // 2σ box captures ~91 % of mass per axis.
        assert!(near > 8_500, "only {near} near center");
    }

    #[test]
    fn skewed_concentrates_origin() {
        let pts = samples(DataDistribution::Skewed, 10_000);
        let near = pts.iter().filter(|p| p.x < 0.25 && p.y < 0.25).count();
        // u³ < 0.25 for u < 0.63 per axis → ~39 % jointly.
        assert!(near > 3_000, "only {near} near origin");
        let far = pts.iter().filter(|p| p.x > 0.75 && p.y > 0.75).count();
        assert!(far < 500, "{far} in the far corner");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = samples(DataDistribution::Gaussian, 100);
        let b = samples(DataDistribution::Gaussian, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn parse_names() {
        assert_eq!(
            DataDistribution::parse("uniform"),
            Some(DataDistribution::Uniform)
        );
        assert_eq!(
            DataDistribution::parse("Gaussian"),
            Some(DataDistribution::Gaussian)
        );
        assert_eq!(
            DataDistribution::parse("skew"),
            Some(DataDistribution::Skewed)
        );
        assert_eq!(DataDistribution::parse("zipf"), None);
        assert_eq!(DataDistribution::Skewed.name(), "Skew");
    }
}
