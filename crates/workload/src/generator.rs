//! The workload generator: evolving object positions, update steps and
//! query windows.

use crate::DataDistribution;
use bur_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How objects move between consecutive updates.
///
/// The paper's experiments use random-direction movement; Section 5.1.4
/// additionally discusses "larger movement or persistent movement
/// according to a trend" as the case GBU's ascent handles. GSTD (the
/// generator the paper emulates) supports both modes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MovementModel {
    /// Direction uniform per step — diffusive motion (paper default).
    #[default]
    RandomWalk,
    /// Each object keeps a persistent heading assigned at generation
    /// time; every step deviates from it by at most `jitter` radians —
    /// ballistic motion that drifts across leaf boundaries in a stable
    /// direction ("persistent movement according to a trend").
    Trend {
        /// Maximum per-step angular deviation from the heading (radians).
        jitter: f32,
    },
}

/// Generator configuration (one row of the paper's Table 1 sweep space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of moving objects ("Database size").
    pub num_objects: usize,
    /// Initial placement.
    pub distribution: DataDistribution,
    /// Maximum distance an object travels between consecutive updates;
    /// the travelled distance is uniform in `[0, max_distance]` with a
    /// uniformly random direction. Paper default: 0.06.
    pub max_distance: f32,
    /// Direction model for the movement (random walk or trend).
    pub movement: MovementModel,
    /// Query rectangles are uniform with both dimensions in
    /// `[0, query_max_side]`. Paper default: 0.1 (0.01 for the
    /// throughput study).
    pub query_max_side: f32,
    /// RNG seed — every stream derived from this config is deterministic.
    pub seed: u64,
    /// Clamp positions to the unit square. The paper does *not* clamp:
    /// Section 5.1.3 attributes TD's degradation partly to "objects
    /// beyond the root MBR", i.e. the population diffuses outward and
    /// the index must expand with it. Clamping is available for tests
    /// that need bounded coordinates.
    pub clamp: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_objects: 100_000,
            distribution: DataDistribution::Uniform,
            max_distance: 0.06,
            movement: MovementModel::RandomWalk,
            query_max_side: 0.1,
            seed: 0x6057_D003,
            clamp: false,
        }
    }
}

/// One update step: object `oid` moves from `old` to `new`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOp {
    /// Object identifier (dense, `0..num_objects`).
    pub oid: u64,
    /// Position before the move.
    pub old: Point,
    /// Position after the move.
    pub new: Point,
}

/// One query step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOp {
    /// The query window.
    pub window: Rect,
}

/// An evolving moving-object workload.
///
/// The generator owns the current position of every object so that
/// update streams are *consistent*: each step reports the true previous
/// position, which the index's `update(oid, old, new)` API requires —
/// exactly like a real monitoring application that knows the last
/// reported state of each object.
///
/// ```
/// use bur_workload::{Workload, WorkloadConfig};
///
/// let mut wl = Workload::generate(WorkloadConfig {
///     num_objects: 100,
///     seed: 7,
///     ..WorkloadConfig::default()
/// });
/// let op = wl.next_update();
/// assert_eq!(wl.positions()[op.oid as usize], op.new);
/// let q = wl.next_query();
/// assert!(q.window.is_valid());
/// ```
#[derive(Debug)]
pub struct Workload {
    config: WorkloadConfig,
    positions: Vec<Point>,
    /// Per-object heading, populated only for [`MovementModel::Trend`].
    headings: Vec<f32>,
    rng: StdRng,
}

/// Sample the movement direction for one step.
fn step_direction(rng: &mut StdRng, movement: MovementModel, heading: f32) -> f32 {
    match movement {
        MovementModel::RandomWalk => rng.random_range(0.0..std::f32::consts::TAU),
        MovementModel::Trend { jitter } => {
            if jitter > 0.0 {
                heading + rng.random_range(-jitter..=jitter)
            } else {
                heading
            }
        }
    }
}

impl Workload {
    /// Generate the initial object placement.
    #[must_use]
    pub fn generate(config: WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let positions: Vec<Point> = (0..config.num_objects)
            .map(|_| config.distribution.sample(&mut rng))
            .collect();
        let headings = match config.movement {
            MovementModel::RandomWalk => Vec::new(),
            MovementModel::Trend { .. } => (0..config.num_objects)
                .map(|_| rng.random_range(0.0..std::f32::consts::TAU))
                .collect(),
        };
        Self {
            config,
            positions,
            headings,
            rng,
        }
    }

    /// The configuration this workload was generated from.
    #[must_use]
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Current position of every object (index = oid).
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// `(oid, position)` pairs for bulk loading.
    #[must_use]
    pub fn items(&self) -> Vec<(u64, Point)> {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u64, p))
            .collect()
    }

    /// Produce the next update step: a uniformly chosen object travels a
    /// uniform distance in `[0, max_distance]` in a direction given by
    /// the movement model (uniform for the random walk, near its
    /// persistent heading for trend movement).
    pub fn next_update(&mut self) -> UpdateOp {
        let oid = self.rng.random_range(0..self.positions.len() as u64);
        let old = self.positions[oid as usize];
        let dist = self.rng.random_range(0.0..=self.config.max_distance);
        let heading = self.headings.get(oid as usize).copied().unwrap_or(0.0);
        let theta = step_direction(&mut self.rng, self.config.movement, heading);
        let mut new = old.translated(dist * theta.cos(), dist * theta.sin());
        if self.config.clamp {
            new = new.clamped(0.0, 1.0);
        }
        self.positions[oid as usize] = new;
        UpdateOp { oid, old, new }
    }

    /// Produce the next query window: uniform position, dimensions
    /// uniform in `[0, query_max_side]`, clipped to the unit square.
    pub fn next_query(&mut self) -> QueryOp {
        let w = self.rng.random_range(0.0..=self.config.query_max_side);
        let h = self.rng.random_range(0.0..=self.config.query_max_side);
        let x = self.rng.random_range(0.0..(1.0 - w).max(f32::MIN_POSITIVE));
        let y = self.rng.random_range(0.0..(1.0 - h).max(f32::MIN_POSITIVE));
        QueryOp {
            window: Rect::new(x, y, x + w, y + h),
        }
    }

    /// Split the workload into `parts` disjoint sub-workloads (by object
    /// id range) for multi-threaded drivers: each part owns its objects'
    /// positions, so concurrent updates never disagree about an object's
    /// previous position. Part `i` receives a distinct derived seed.
    #[must_use]
    pub fn split(self, parts: usize) -> Vec<PartWorkload> {
        assert!(parts >= 1);
        let chunk = self.positions.len().div_ceil(parts);
        let mut out = Vec::with_capacity(parts);
        for (i, slice) in self.positions.chunks(chunk).enumerate() {
            let lo = i * chunk;
            let headings = if self.headings.is_empty() {
                Vec::new()
            } else {
                self.headings[lo..(lo + slice.len()).min(self.headings.len())].to_vec()
            };
            out.push(PartWorkload {
                base_oid: lo as u64,
                positions: slice.to_vec(),
                headings,
                max_distance: self.config.max_distance,
                movement: self.config.movement,
                query_max_side: self.config.query_max_side,
                clamp: self.config.clamp,
                rng: StdRng::seed_from_u64(self.config.seed ^ (0x9E37 + i as u64 * 0x51_7CC1)),
            });
        }
        out
    }
}

/// A thread-private slice of a [`Workload`] (see [`Workload::split`]).
#[derive(Debug)]
pub struct PartWorkload {
    base_oid: u64,
    positions: Vec<Point>,
    headings: Vec<f32>,
    max_distance: f32,
    movement: MovementModel,
    query_max_side: f32,
    clamp: bool,
    rng: StdRng,
}

impl PartWorkload {
    /// Next update within this part's object range.
    pub fn next_update(&mut self) -> UpdateOp {
        let local = self.rng.random_range(0..self.positions.len() as u64);
        let old = self.positions[local as usize];
        let dist = self.rng.random_range(0.0..=self.max_distance);
        let heading = self.headings.get(local as usize).copied().unwrap_or(0.0);
        let theta = step_direction(&mut self.rng, self.movement, heading);
        let mut new = old.translated(dist * theta.cos(), dist * theta.sin());
        if self.clamp {
            new = new.clamped(0.0, 1.0);
        }
        self.positions[local as usize] = new;
        UpdateOp {
            oid: self.base_oid + local,
            old,
            new,
        }
    }

    /// Next query window.
    pub fn next_query(&mut self) -> QueryOp {
        let w = self.rng.random_range(0.0..=self.query_max_side);
        let h = self.rng.random_range(0.0..=self.query_max_side);
        let x = self.rng.random_range(0.0..(1.0 - w).max(f32::MIN_POSITIVE));
        let y = self.rng.random_range(0.0..(1.0 - h).max(f32::MIN_POSITIVE));
        QueryOp {
            window: Rect::new(x, y, x + w, y + h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize) -> WorkloadConfig {
        WorkloadConfig {
            num_objects: n,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn initial_positions_deterministic() {
        let a = Workload::generate(config(500));
        let b = Workload::generate(config(500));
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.items().len(), 500);
        assert_eq!(a.items()[7].0, 7);
    }

    #[test]
    fn updates_respect_max_distance_and_bounds() {
        let mut w = Workload::generate(WorkloadConfig {
            num_objects: 200,
            max_distance: 0.03,
            clamp: true,
            ..WorkloadConfig::default()
        });
        for _ in 0..5_000 {
            let op = w.next_update();
            // Movement before clamping is bounded by max_distance; the
            // clamp can only shorten it.
            assert!(
                op.old.distance(&op.new) <= 0.03 + 1e-6,
                "moved too far: {} -> {}",
                op.old,
                op.new
            );
            assert!((0.0..=1.0).contains(&op.new.x));
            assert!((0.0..=1.0).contains(&op.new.y));
            // Generator state is consistent.
            assert_eq!(w.positions()[op.oid as usize], op.new);
        }
    }

    #[test]
    fn update_old_positions_track_reality() {
        let mut w = Workload::generate(config(50));
        let mut shadow: Vec<Point> = w.positions().to_vec();
        for _ in 0..2_000 {
            let op = w.next_update();
            assert_eq!(shadow[op.oid as usize], op.old, "stale old position");
            shadow[op.oid as usize] = op.new;
        }
    }

    #[test]
    fn queries_within_unit_square_and_size() {
        let mut w = Workload::generate(WorkloadConfig {
            num_objects: 10,
            query_max_side: 0.1,
            ..WorkloadConfig::default()
        });
        for _ in 0..2_000 {
            let q = w.next_query().window;
            assert!(q.is_valid());
            assert!(q.width() <= 0.1 + 1e-6);
            assert!(q.height() <= 0.1 + 1e-6);
            assert!(Rect::UNIT.contains_rect(&q), "query {q} escapes");
        }
    }

    #[test]
    fn split_partitions_objects() {
        let w = Workload::generate(config(1_000));
        let before = w.positions().to_vec();
        let mut parts = w.split(4);
        assert_eq!(parts.len(), 4);
        // Each part updates only its own range.
        let mut seen = std::collections::HashSet::new();
        for (i, part) in parts.iter_mut().enumerate() {
            for _ in 0..200 {
                let op = part.next_update();
                let lo = i as u64 * 250;
                assert!(
                    (lo..lo + 250).contains(&op.oid),
                    "oid {} in part {i}",
                    op.oid
                );
                seen.insert(op.oid);
            }
        }
        assert!(seen.len() > 300, "parts should cover many objects");
        // Initial positions agreed with the unsplit workload.
        let w2 = Workload::generate(config(1_000));
        assert_eq!(w2.positions(), &before[..]);
    }

    #[test]
    fn trend_movement_is_ballistic() {
        // Over many steps, trend movement covers distance linearly while
        // a random walk diffuses (~√steps): net displacement of trending
        // objects must dwarf the random walk's.
        let steps = 200 * 64;
        let displacement = |movement: MovementModel| {
            let mut w = Workload::generate(WorkloadConfig {
                num_objects: 64,
                max_distance: 0.01,
                movement,
                ..WorkloadConfig::default()
            });
            let start = w.positions().to_vec();
            for _ in 0..steps {
                w.next_update();
            }
            let total: f32 = w
                .positions()
                .iter()
                .zip(&start)
                .map(|(a, b)| a.distance(b))
                .sum();
            total / 64.0
        };
        let walk = displacement(MovementModel::RandomWalk);
        let trend = displacement(MovementModel::Trend { jitter: 0.1 });
        assert!(
            trend > 3.0 * walk,
            "trend displacement {trend} not ballistic vs walk {walk}"
        );
    }

    #[test]
    fn zero_jitter_trend_moves_in_a_straight_line() {
        let mut w = Workload::generate(WorkloadConfig {
            num_objects: 4,
            max_distance: 0.01,
            movement: MovementModel::Trend { jitter: 0.0 },
            ..WorkloadConfig::default()
        });
        // Record each object's per-step unit direction; all steps of one
        // object must agree.
        let mut dirs: Vec<Option<(f32, f32)>> = vec![None; 4];
        for _ in 0..400 {
            let op = w.next_update();
            let (dx, dy) = (op.new.x - op.old.x, op.new.y - op.old.y);
            let len = (dx * dx + dy * dy).sqrt();
            if len < 1e-4 {
                continue; // too short: f32 cancellation destroys the direction
            }
            let d = (dx / len, dy / len);
            match dirs[op.oid as usize] {
                None => dirs[op.oid as usize] = Some(d),
                Some((ux, uy)) => {
                    assert!(
                        (ux - d.0).abs() < 1e-2 && (uy - d.1).abs() < 1e-2,
                        "object {} changed direction: {:?} vs {:?}",
                        op.oid,
                        (ux, uy),
                        d
                    );
                }
            }
        }
    }

    #[test]
    fn split_preserves_trend_headings() {
        let w = Workload::generate(WorkloadConfig {
            num_objects: 100,
            max_distance: 0.01,
            movement: MovementModel::Trend { jitter: 0.0 },
            ..WorkloadConfig::default()
        });
        let mut parts = w.split(4);
        // Straight-line movement must hold within each part as well.
        for part in &mut parts {
            let mut dirs: std::collections::HashMap<u64, (f32, f32)> = Default::default();
            for _ in 0..200 {
                let op = part.next_update();
                let (dx, dy) = (op.new.x - op.old.x, op.new.y - op.old.y);
                let len = (dx * dx + dy * dy).sqrt();
                if len < 1e-4 {
                    continue;
                }
                let d = (dx / len, dy / len);
                if let Some((ux, uy)) = dirs.insert(op.oid, d) {
                    assert!(
                        (ux - d.0).abs() < 1e-2 && (uy - d.1).abs() < 1e-2,
                        "object {} changed direction inside a part",
                        op.oid
                    );
                }
            }
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Workload::generate(WorkloadConfig {
            seed: 1,
            ..config(100)
        });
        let mut b = Workload::generate(WorkloadConfig {
            seed: 2,
            ..config(100)
        });
        let ops_a: Vec<UpdateOp> = (0..10).map(|_| a.next_update()).collect();
        let ops_b: Vec<UpdateOp> = (0..10).map(|_| b.next_update()).collect();
        assert_ne!(ops_a, ops_b);
    }
}
