//! GSTD-like workload generation for the bottom-up R-tree experiments.
//!
//! The paper's Section 5: "A data generator similar to GSTD
//! \[Theodoridis, Silva, Nascimento\] is used to generate the initial
//! distribution of the objects, followed by the movement and queries.
//! Each object is a 2D point in a unit square that can move some
//! distance ... Query rectangles are uniformly distributed with
//! dimensions in the range of \[0, 0.1\]."
//!
//! This crate reproduces that generator:
//!
//! * [`DataDistribution`] — Uniform, Gaussian or Skewed initial
//!   placement (Table 1's "Data distribution" row);
//! * [`Workload`] — owns the evolving object positions and produces
//!   update steps (random direction, travel distance uniform in
//!   `[0, max_distance]`, clamped to the unit square) and query windows;
//! * everything is seeded and deterministic, so experiments and tests
//!   are reproducible bit-for-bit.

#![warn(missing_docs)]

mod distribution;
mod generator;

pub use distribution::DataDistribution;
pub use generator::{MovementModel, QueryOp, UpdateOp, Workload, WorkloadConfig};

/// The paper's Table 1, echoed by `repro params` so the experiment
/// harness documents the sweep space it implements.
#[must_use]
pub fn paper_parameter_table() -> Vec<(&'static str, &'static str)> {
    vec![
        ("epsilon", "0, 0.003*, 0.007, 0.015, 0.03"),
        ("distance threshold (tau)", "0, 0.03*, 0.3, 3"),
        ("level threshold (L)", "0, 1, 2, 3*"),
        ("data distribution", "Gaussian, Skewed, Uniform*"),
        ("buffers (% of database size)", "0%, 1%*, 3%, 5%, 10%"),
        (
            "maximum distance moved",
            "0.003, 0.015, 0.03, 0.06*, 0.1, 0.15",
        ),
        ("number of updates", "1M*, 2M, 3M, 5M, 7M, 10M"),
        ("database size", "1M*, 2M, 5M, 10M"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_table_shape() {
        let t = paper_parameter_table();
        assert_eq!(t.len(), 8);
        assert!(t.iter().any(|(k, _)| k.contains("epsilon")));
        // Exactly one default (starred) per row.
        for (k, v) in t {
            assert_eq!(v.matches('*').count(), 1, "row {k} must mark one default");
        }
    }
}
