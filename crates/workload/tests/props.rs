//! Property-based tests for the workload generator.

use bur_workload::{DataDistribution, MovementModel, Workload, WorkloadConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..500,
        0u8..3,
        0.001f32..0.2,
        prop_oneof![
            Just(MovementModel::RandomWalk),
            (0.0f32..1.5).prop_map(|jitter| MovementModel::Trend { jitter }),
        ],
        0.01f32..0.3,
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(n, d, max_dist, movement, q, seed, clamp)| WorkloadConfig {
                num_objects: n,
                distribution: match d {
                    0 => DataDistribution::Uniform,
                    1 => DataDistribution::Gaussian,
                    _ => DataDistribution::Skewed,
                },
                max_distance: max_dist,
                movement,
                query_max_side: q,
                seed,
                clamp,
            },
        )
}

proptest! {
    #[test]
    fn generation_is_deterministic(cfg in arb_config()) {
        let mut a = Workload::generate(cfg);
        let mut b = Workload::generate(cfg);
        prop_assert_eq!(a.positions(), b.positions());
        for _ in 0..20 {
            prop_assert_eq!(a.next_update(), b.next_update());
            prop_assert_eq!(a.next_query(), b.next_query());
        }
    }

    #[test]
    fn initial_positions_inside_unit_square(cfg in arb_config()) {
        let w = Workload::generate(cfg);
        for p in w.positions() {
            prop_assert!((0.0..=1.0).contains(&p.x));
            prop_assert!((0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn moves_bounded_and_tracked(cfg in arb_config()) {
        let mut w = Workload::generate(cfg);
        let mut shadow = w.positions().to_vec();
        for _ in 0..100 {
            let op = w.next_update();
            prop_assert_eq!(shadow[op.oid as usize], op.old, "stale old position");
            // The step (before any clamping) is bounded by max_distance;
            // clamping can only shorten it.
            prop_assert!(
                op.old.distance(&op.new) <= cfg.max_distance + 1e-5,
                "move too long: {} -> {}", op.old, op.new
            );
            if cfg.clamp {
                prop_assert!((0.0..=1.0).contains(&op.new.x));
                prop_assert!((0.0..=1.0).contains(&op.new.y));
            }
            shadow[op.oid as usize] = op.new;
        }
        prop_assert_eq!(&shadow[..], w.positions());
    }

    #[test]
    fn queries_valid_and_bounded(cfg in arb_config()) {
        let mut w = Workload::generate(cfg);
        for _ in 0..100 {
            let q = w.next_query().window;
            prop_assert!(q.is_valid());
            prop_assert!(q.width() <= cfg.query_max_side + 1e-5);
            prop_assert!(q.height() <= cfg.query_max_side + 1e-5);
        }
    }

    #[test]
    fn split_partitions_ids_exactly(cfg in arb_config(), parts in 1usize..8) {
        let w = Workload::generate(cfg);
        let n = w.positions().len();
        let mut split = w.split(parts);
        // Drive every part; every produced oid must fall in the part's
        // disjoint range and collectively stay within 0..n.
        let chunk = n.div_ceil(parts);
        for (i, part) in split.iter_mut().enumerate() {
            for _ in 0..20 {
                let op = part.next_update();
                let lo = (i * chunk) as u64;
                let hi = (((i + 1) * chunk).min(n)) as u64;
                prop_assert!((lo..hi).contains(&op.oid), "oid {} outside part {i}", op.oid);
            }
        }
    }
}
