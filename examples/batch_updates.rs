//! Batch-first durable updates: mixed-op `Batch`es, one WAL group
//! commit record per batch, and `CommitTicket` hard acks under the
//! asynchronous sync policy.
//!
//! The paper's whole point is that updates are the hot path. This
//! example drives the same update stream twice against a durable
//! index — one commit per operation versus one `Batch` per 64
//! operations — and prints what batching does to the log: commit
//! records, syncs, and wall time per update, with identical query
//! results either way.
//!
//! ```sh
//! cargo run --release --example batch_updates
//! ```

use bur::prelude::*;
use std::time::Instant;

const OBJECTS: usize = 10_000;
const UPDATES: usize = 20_000;
const BATCH: usize = 64;

fn durable_handle(sync: SyncPolicy) -> CoreResult<Bur> {
    IndexBuilder::generalized()
        .durability(Durability::Wal(WalOptions {
            sync,
            checkpoint_every: 1 << 20, // keep the log visible: no mid-run rewind
            ..WalOptions::default()
        }))
        .build()
}

fn load(bur: &Bur, workload: &Workload) -> CoreResult<()> {
    let mut batch = Batch::with_capacity(OBJECTS);
    for (oid, pos) in workload.items() {
        batch.insert(oid, pos);
    }
    bur.apply(&batch)?.wait()?;
    Ok(())
}

fn main() -> CoreResult<()> {
    let workload = Workload::generate(WorkloadConfig {
        num_objects: OBJECTS,
        max_distance: 0.004, // short moves: the bottom-up sweet spot
        seed: 42,
        ..WorkloadConfig::default()
    });

    // ---- per-operation commits -----------------------------------------
    let one_by_one = durable_handle(SyncPolicy::EveryCommit)?;
    load(&one_by_one, &workload)?;
    let mut wl = Workload::generate(WorkloadConfig {
        num_objects: OBJECTS,
        max_distance: 0.004,
        seed: 42,
        ..WorkloadConfig::default()
    });
    let before = one_by_one.wal_stats().expect("durable");
    let started = Instant::now();
    for _ in 0..UPDATES {
        let op = wl.next_update();
        one_by_one.update(op.oid, op.old, op.new)?;
    }
    one_by_one.wait_durable()?;
    let single_elapsed = started.elapsed();
    let after = one_by_one.wal_stats().expect("durable");
    println!(
        "one commit per op : {:>6.1} ns/update, {} commit records, {} syncs",
        single_elapsed.as_nanos() as f64 / UPDATES as f64,
        after.commits - before.commits,
        after.syncs - before.syncs,
    );

    // ---- batch-first, async group commit -------------------------------
    let batched = durable_handle(SyncPolicy::Async)?;
    load(&batched, &workload)?;
    let mut wl = Workload::generate(WorkloadConfig {
        num_objects: OBJECTS,
        max_distance: 0.004,
        seed: 42,
        ..WorkloadConfig::default()
    });
    let before = batched.wal_stats().expect("durable");
    let started = Instant::now();
    let mut batch = Batch::with_capacity(BATCH);
    let mut last_ticket = None;
    for i in 0..UPDATES {
        let op = wl.next_update();
        batch.update(op.oid, op.old, op.new);
        if batch.len() == BATCH || i + 1 == UPDATES {
            // One lock acquisition and ONE group commit record for the
            // whole batch; the ticket is the durability ack.
            last_ticket = Some(batched.apply(&batch)?);
            batch.clear();
        }
    }
    let ticket = last_ticket.expect("at least one batch");
    let watermark = ticket.wait()?; // hard ack: durable LSN covers the tail batch
    let batch_elapsed = started.elapsed();
    let after = batched.wal_stats().expect("durable");
    println!(
        "one commit per {BATCH} : {:>6.1} ns/update, {} commit records, {} syncs \
         (durable lsn {watermark})",
        batch_elapsed.as_nanos() as f64 / UPDATES as f64,
        after.commits - before.commits,
        after.syncs - before.syncs,
    );
    println!(
        "batching cut commit records {}x and wall time {:.2}x",
        UPDATES as u64 / (after.commits - before.commits).max(1),
        single_elapsed.as_secs_f64() / batch_elapsed.as_secs_f64(),
    );

    // Both streams end at the same answers.
    let window = Rect::new(0.4, 0.4, 0.6, 0.6);
    let mut a: Vec<u64> = one_by_one.query(&window)?.collect();
    let mut b: Vec<u64> = batched.query(&window)?.collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "batched and per-op streams must agree");
    println!(
        "query agreement in {window}: {} objects either way",
        a.len()
    );

    one_by_one.validate()?;
    batched.validate()?;
    println!("validate(): ok for both handles");
    Ok(())
}
