//! Fleet tracking: the moving-object scenario that motivates the paper.
//!
//! A fleet of vehicles reports positions continuously; dispatch runs
//! window queries concurrently. This example compares the classic
//! top-down update strategy with the paper's generalized bottom-up
//! strategy on the *same* stream, reporting average physical I/O per
//! operation and the distribution of bottom-up outcomes.
//!
//! ```sh
//! cargo run --release --example fleet_tracking
//! ```

use bur::prelude::*;

const VEHICLES: usize = 20_000;
const REPORTS: usize = 60_000;
const QUERIES: usize = 200;

fn drive(opts: IndexOptions, label: &str) -> CoreResult<()> {
    // City fleet: positions clustered around a few depots (Gaussian),
    // short hops between reports (locality-preserving updates), each
    // vehicle drifting along its route (trend movement).
    let mut workload = Workload::generate(WorkloadConfig {
        num_objects: VEHICLES,
        distribution: DataDistribution::Gaussian,
        max_distance: 0.008, // short hops relative to the city
        movement: MovementModel::Trend { jitter: 0.4 },
        query_max_side: 0.05,
        seed: 0xF1EE7,
        clamp: false,
    });

    let mut index = IndexBuilder::with_options(opts).build_index()?;
    for (oid, pos) in workload.items() {
        index.insert(oid, pos)?;
    }

    // Size the buffer like the paper: 1 % of the database pages.
    let pages = index.data_pages()?;
    index.set_buffer_capacity((pages as f64 * 0.01).round() as usize)?;
    index.pool().evict_all()?;
    index.io_stats().reset();
    index.op_stats().reset();

    // Position reports stream in.
    let before = index.io_stats().snapshot();
    for _ in 0..REPORTS {
        let op = workload.next_update();
        index.update(op.oid, op.old, op.new)?;
    }
    let upd_io = index.io_stats().snapshot().since(&before);

    // Dispatch queries: "which vehicles are near this incident?"
    let before = index.io_stats().snapshot();
    let mut found = 0usize;
    for _ in 0..QUERIES {
        let q = workload.next_query();
        found += index.query(&q.window)?.len();
    }
    let qry_io = index.io_stats().snapshot().since(&before);

    println!("--- {label} ---");
    println!(
        "  updates: {:.2} I/O per position report",
        upd_io.physical() as f64 / REPORTS as f64
    );
    println!(
        "  queries: {:.1} I/O per dispatch query ({} vehicles found)",
        qry_io.physical() as f64 / QUERIES as f64,
        found
    );
    println!("  {}", index.op_stats().snapshot());
    index.validate()?;
    Ok(())
}

fn main() -> CoreResult<()> {
    println!(
        "fleet of {VEHICLES} vehicles, {REPORTS} position reports, {QUERIES} dispatch queries\n"
    );
    drive(
        IndexOptions::top_down(),
        "top-down updates (classic R-tree)",
    )?;
    drive(
        IndexOptions::generalized(),
        "generalized bottom-up updates (the paper)",
    )?;
    Ok(())
}
