//! Network clients: a `burd` server and several `bur-client`
//! connections whose writes coalesce into shared WAL group commits.
//!
//! ```sh
//! cargo run --release --example network_clients
//! ```
//!
//! Starts an in-process `burd` on a loopback port (exactly what the
//! standalone `burd` binary or `burctl serve` runs), creates a durable
//! GBU index over the wire, then lets N client threads push insert
//! batches concurrently. Each `apply` blocks until the server's
//! durable-LSN watermark covers it — a hard durability ack, same
//! contract as an in-process `CommitTicket::wait` — yet the server cuts
//! far fewer WAL group-commit records than the clients sent batches,
//! because the write coalescer merges whatever queued while the
//! previous round was fsyncing. The example prints that ratio, then
//! demonstrates the streamed read path (window query + kNN) and a
//! graceful shutdown.

use bur::client::BurClient;
use bur::core::Batch;
use bur::geom::{Point, Rect};
use bur::serve::{start, ServerConfig};

const CLIENTS: u64 = 4;
const BATCHES: u64 = 40;
const PER_BATCH: u64 = 25;

fn pos(oid: u64) -> Point {
    let h = oid.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    Point::new(
        (h % 1000) as f32 / 1000.0,
        ((h >> 32) % 1000) as f32 / 1000.0,
    )
}

fn main() {
    let dir = std::env::temp_dir().join(format!("bur-network-clients-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One `burd`, port picked by the OS.
    let handle = start(ServerConfig::new(&dir)).expect("server starts");
    println!("burd listening on {}", handle.addr());

    BurClient::connect(handle.addr())
        .expect("connect")
        .create_index("fleet", "gbu", true)
        .expect("create index");

    // N clients, each its own TCP connection and oid range.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client = BurClient::connect(addr).expect("connect");
                let mut max_merged = 0;
                for b in 0..BATCHES {
                    let base = t * 1_000_000 + b * PER_BATCH;
                    let mut batch = Batch::new();
                    for oid in base..base + PER_BATCH {
                        batch.insert(oid, pos(oid));
                    }
                    let ack = client.apply("fleet", &batch).expect("apply");
                    assert!(ack.lsn > 0, "durable ack carries the covering LSN");
                    max_merged = max_merged.max(ack.merged);
                }
                max_merged
            })
        })
        .collect();
    let max_merged = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .max()
        .unwrap_or(0);

    let stats = handle
        .registry()
        .get("fleet")
        .expect("entry")
        .as_plain()
        .expect("plain index")
        .coalescer
        .stats();
    println!(
        "{} client batches committed in {} WAL group-commit rounds \
         ({:.1} batches/round; busiest round merged {max_merged})",
        stats.submissions,
        stats.rounds,
        stats.ratio()
    );
    assert!(
        stats.rounds < stats.submissions,
        "concurrent clients should coalesce"
    );

    // The read path streams: window query and kNN over the wire.
    let mut client = BurClient::connect(handle.addr()).expect("connect");
    let hits: Vec<u64> = client
        .query("fleet", &Rect::new(0.25, 0.25, 0.75, 0.75))
        .expect("query")
        .collect::<Result<_, _>>()
        .expect("stream");
    println!(
        "window query: {} of {} objects in the center quarter",
        hits.len(),
        client.len("fleet").expect("len")
    );
    let nearest = client
        .nearest("fleet", Point::new(0.5, 0.5), 3)
        .expect("knn")
        .collect::<Result<Vec<_>, _>>()
        .expect("stream");
    for n in &nearest {
        println!("  neighbor oid {:>8} at distance {:.4}", n.oid, n.distance);
    }

    // Graceful stop: drain writes, flush the log, checkpoint.
    client.shutdown_server().expect("shutdown");
    handle.wait();
    println!("server drained and stopped");
    let _ = std::fs::remove_dir_all(&dir);
}
