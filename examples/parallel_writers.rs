//! Parallel writers: N cloned `Bur` handles pushing update batches on
//! disjoint spatial regions at the same time.
//!
//! ```sh
//! cargo run --release --example parallel_writers
//! ```
//!
//! Since the latch-per-page rework, a batch of pure bottom-up updates
//! runs under the *shared* side of the handle's reader-writer lock: the
//! DGL granules (an X lock per touched leaf under a shared tree lock)
//! carve up what each batch may write, and per-page latches serialize
//! the physical page accesses. Batches on disjoint leaves therefore
//! overlap physically — this example proves it with the handle's
//! in-flight high watermark, then shows the aggregate throughput.
//! The full protocol is documented in `docs/ARCHITECTURE.md`
//! ("Latching protocol").

use bur::prelude::*;
use std::time::Instant;

const WRITERS: usize = 4;
const PER_WRITER: u64 = 1_000;
const ROUNDS: usize = 50;

/// Home position of an object: writer `t` owns a vertical strip of the
/// unit square, so each writer's objects live on their own leaves.
fn home(oid: u64) -> Point {
    let t = oid / PER_WRITER;
    let i = oid % PER_WRITER;
    let width = 1.0 / WRITERS as f32;
    Point::new(
        t as f32 * width + width * (0.05 + 0.9 * (i % 50) as f32 / 50.0),
        0.02 + 0.96 * (i / 50) as f32 / (PER_WRITER / 50) as f32,
    )
}

fn main() -> CoreResult<()> {
    let bur = IndexBuilder::generalized().build()?;

    let mut load = Batch::with_capacity((WRITERS as u64 * PER_WRITER) as usize);
    for oid in 0..WRITERS as u64 * PER_WRITER {
        load.insert(oid, home(oid));
    }
    bur.apply(&load)?;
    println!(
        "indexed {} objects in {} disjoint strips (tree height {})",
        bur.len(),
        WRITERS,
        bur.height()
    );

    // Each writer thread gets its own clone of the handle and zigzags
    // its strip's objects with whole-strip batches. The moves are tiny,
    // so every op is leaf-local and the batches ride the concurrent
    // write path side by side.
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..WRITERS as u64 {
            let bur = bur.clone();
            s.spawn(move || {
                let oids: Vec<u64> = (t * PER_WRITER..(t + 1) * PER_WRITER).collect();
                for round in 0..ROUNDS {
                    let dx = 0.0004;
                    let (from, to) = if round % 2 == 0 { (0.0, dx) } else { (dx, 0.0) };
                    let mut batch = Batch::with_capacity(oids.len());
                    for &oid in &oids {
                        let p = home(oid);
                        batch.update(oid, Point::new(p.x + from, p.y), Point::new(p.x + to, p.y));
                    }
                    bur.apply(&batch).expect("apply");
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();

    let total = WRITERS as u64 * PER_WRITER * ROUNDS as u64;
    println!(
        "{WRITERS} writers applied {total} updates in {:.3} s ({:.0} updates/s aggregate)",
        secs,
        total as f64 / secs
    );
    println!(
        "peak batches in flight at once: {} {}",
        bur.peak_concurrent_batches(),
        if bur.peak_concurrent_batches() >= 2 {
            "(writes physically overlapped)"
        } else {
            "(no overlap observed on this machine)"
        }
    );

    bur.validate()?;
    println!("deep validate: ok ({} objects intact)", bur.len());
    Ok(())
}
