//! Quickstart: create an index, insert objects, move them, query them —
//! and watch which bottom-up path each update takes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bur::prelude::*;

fn main() -> CoreResult<()> {
    // A generalized-bottom-up (GBU) index with the paper's default
    // tuning: ε = 0.003, τ = 0.03, unrestricted ascent, piggybacking and
    // summary-assisted queries on. Pages are 1 KiB, as in the paper.
    let mut index = RTreeIndex::create_in_memory(IndexOptions::generalized())?;

    // Index a small fleet of point objects (seeded, reproducible).
    println!("indexing 1000 objects ...");
    let workload = Workload::generate(WorkloadConfig {
        num_objects: 1000,
        seed: 7,
        ..WorkloadConfig::default()
    });
    for (oid, pos) in workload.items() {
        index.insert(oid, pos)?;
    }
    let p5 = workload.positions()[5];
    let p6 = workload.positions()[6];
    println!(
        "tree height {}, {} objects, {} tree pages + {} hash pages",
        index.height(),
        index.len(),
        index.tree_pages()?,
        index.hash_pages()
    );

    // Move an object a little: resolved entirely inside its leaf.
    let outcome = index.update(5, p5, p5.translated(0.005, 0.003))?;
    println!("small move   -> {:?}", outcome);

    // Move an object further: the index extends, shifts to a sibling, or
    // ascends — whatever is cheapest — without a top-down delete+insert.
    let outcome = index.update(6, p6, Point::new(0.5, 0.5))?;
    println!("large move   -> {:?}", outcome);

    // Window query (answered through the main-memory summary structure).
    let window = Rect::new(0.45, 0.45, 0.55, 0.55);
    let mut hits = index.query(&window)?;
    hits.sort_unstable();
    println!("objects in {window}: {hits:?}");

    // Physical I/O so far, from the buffer-pool counters the experiments
    // are built on.
    let io = index.io_stats().snapshot();
    println!(
        "physical I/O: {} reads, {} writes ({} logical fetches, hit ratio {:.0}%)",
        io.reads,
        io.writes,
        io.fetches,
        io.hit_ratio().unwrap_or(0.0) * 100.0
    );

    // Outcome distribution across all updates.
    println!("op stats: {}", index.op_stats().snapshot());

    // The index checks its own invariants (used heavily in the tests).
    index.validate()?;
    println!("validate(): ok");
    Ok(())
}
