//! Quickstart: build a shared handle, load it with one batch, move
//! objects, query through streaming cursors — and watch which bottom-up
//! path each update takes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bur::prelude::*;

fn main() -> CoreResult<()> {
    // A generalized-bottom-up (GBU) index with the paper's default
    // tuning: ε = 0.003, τ = 0.03, unrestricted ascent, piggybacking and
    // summary-assisted queries on. Pages are 1 KiB, as in the paper.
    // `build()` returns the clonable `Bur` handle — the one entry point
    // for single- and multi-threaded use alike.
    let bur = IndexBuilder::generalized().build()?;

    // Index a small fleet of point objects (seeded, reproducible) as one
    // batch: one lock acquisition — and, on a durable index, one WAL
    // group commit record — instead of a thousand.
    println!("indexing 1000 objects in one batch ...");
    let workload = Workload::generate(WorkloadConfig {
        num_objects: 1000,
        seed: 7,
        ..WorkloadConfig::default()
    });
    let mut load = Batch::with_capacity(1000);
    for (oid, pos) in workload.items() {
        load.insert(oid, pos);
    }
    let ticket = bur.apply(&load)?;
    println!(
        "loaded {} objects (tree height {})",
        ticket.report().inserted,
        bur.height(),
    );

    // Move an object a little: resolved entirely inside its leaf.
    let p5 = workload.positions()[5];
    let p6 = workload.positions()[6];
    let outcome = bur.update(5, p5, p5.translated(0.005, 0.003))?;
    println!("small move   -> {outcome:?}");

    // Move an object further: the index extends, shifts to a sibling, or
    // ascends — whatever is cheapest — without a top-down delete+insert.
    let outcome = bur.update(6, p6, Point::new(0.5, 0.5))?;
    println!("large move   -> {outcome:?}");

    // Window query (answered through the main-memory summary structure),
    // streamed through a cursor backed by a recycled buffer.
    let window = Rect::new(0.45, 0.45, 0.55, 0.55);
    let mut hits: Vec<u64> = bur.query(&window)?.collect();
    hits.sort_unstable();
    println!("objects in {window}: {hits:?}");

    // The k nearest neighbors stream the same way, closest first.
    let nearest: Vec<u64> = bur
        .nearest(Point::new(0.5, 0.5), 3)?
        .map(|n| n.oid)
        .collect();
    println!("3 nearest to the center: {nearest:?}");

    // Physical I/O so far, from the buffer-pool counters the experiments
    // are built on.
    let io = bur.io_snapshot();
    println!(
        "physical I/O: {} reads, {} writes ({} logical fetches, hit ratio {:.0}%)",
        io.reads,
        io.writes,
        io.fetches,
        io.hit_ratio().unwrap_or(0.0) * 100.0
    );

    // Outcome distribution across all updates.
    bur.with_op_stats(|s| println!("op stats: {}", s.snapshot()));

    // The index checks its own invariants (used heavily in the tests).
    bur.validate()?;
    println!("validate(): ok");
    Ok(())
}
