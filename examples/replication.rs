//! Warm-standby replication: ship the write-ahead log to a follower,
//! serve reads from the replica, then fail over.
//!
//! A durable primary absorbs update batches while a follower tails its
//! log from another thread, redoing each shipped batch onto its own
//! disk. Read traffic (window + kNN) runs against the replica's
//! read-only handle at the apply watermark — the HTAP offload pattern —
//! and when the primary "dies", the follower promotes in place and
//! keeps taking writes.
//!
//! ```text
//! cargo run --release --example replication
//! ```

use bur::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    const OBJECTS: u64 = 5_000;
    const ROUNDS: usize = 40;

    // A durable GBU primary on a shared in-memory disk.
    let disk = Arc::new(MemDisk::new(1024));
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(WalOptions {
        checkpoint_every: 5_000,
        ..WalOptions::default()
    }));
    let primary = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build()
        .expect("build primary");

    let mut seed = Batch::new();
    for oid in 0..OBJECTS {
        seed.insert(
            oid,
            Point::new((oid % 100) as f32 / 100.0, ((oid / 100) % 50) as f32 / 50.0),
        );
    }
    primary
        .apply(&seed)
        .expect("seed")
        .wait()
        .expect("seed ack");
    println!("primary: {} objects, durable log attached", primary.len());

    // Attach a warm standby and pump it from a background thread.
    let mut shipper = LogShipper::new(disk);
    let mut follower = Follower::attach_in_memory(&mut shipper, opts).expect("attach follower");
    let replica = follower.handle();
    println!(
        "follower attached: {} pages copied, watermark lsn {}",
        follower.stats().pages_copied,
        follower.applied_lsn()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let pump_stop = stop.clone();
    let pump = std::thread::spawn(move || {
        let mut max_lag = 0u64;
        while !pump_stop.load(Ordering::Relaxed) {
            let report = follower.sync_once(&mut shipper).expect("pump");
            max_lag = max_lag.max(report.pending);
            std::thread::yield_now();
        }
        follower.catch_up(&mut shipper).expect("final catch-up");
        (follower, shipper, max_lag)
    });

    // Update traffic on the primary; analytical reads on the replica.
    let mut moved = 0u64;
    for round in 0..ROUNDS {
        let mut batch = Batch::new();
        for k in 0..64u64 {
            let oid = (round as u64 * 64 + k) % OBJECTS;
            let old = Point::new((oid % 100) as f32 / 100.0, ((oid / 100) % 50) as f32 / 50.0);
            let dx = 0.002 * ((round % 5) as f32 - 2.0);
            batch.update(oid, old, Point::new((old.x + dx).clamp(0.0, 1.0), old.y));
            // Move it back so every round starts from the same layout.
            batch.update(oid, Point::new((old.x + dx).clamp(0.0, 1.0), old.y), old);
            moved += 1;
        }
        primary
            .apply(&batch)
            .expect("update batch")
            .wait()
            .expect("ack");
        // Replica reads run concurrently with shipping.
        let hot = replica
            .count_in(&Rect::new(0.2, 0.2, 0.8, 0.8))
            .expect("replica window");
        if round % 10 == 0 {
            println!(
                "round {round:>2}: replica sees {} objects, {hot} in the hot window",
                replica.len()
            );
        }
    }
    println!("primary applied {moved} updates across {ROUNDS} batches");

    // "Kill" the primary and fail over.
    let primary_stats = primary.wal_stats().expect("primary is durable");
    drop(primary);
    stop.store(true, Ordering::Relaxed);
    let (follower, _shipper, max_lag) = pump.join().expect("pump thread");
    let stats = follower.stats();
    println!(
        "shipped {} records ({} commits, {} images, {} deltas, {} resyncs); \
         max in-flight lag {} records",
        stats.records_shipped,
        stats.commits_applied,
        stats.images_applied,
        stats.deltas_applied,
        stats.resyncs,
        max_lag
    );
    assert!(replica.is_read_only());

    let new_primary = follower.promote().expect("promote");
    assert!(!new_primary.is_read_only());
    new_primary.validate().expect("promoted index valid");
    assert_eq!(new_primary.len(), OBJECTS);
    println!(
        "promoted: follower is now the primary at lsn watermark ≥ {} (old primary logged {} records)",
        new_primary.wal_stats().map_or(0, |s| s.last_lsn),
        primary_stats.records
    );

    // The new primary serves writes durably.
    let mut post = Batch::new();
    post.insert(OBJECTS + 1, Point::new(0.5, 0.5));
    new_primary
        .apply(&post)
        .expect("write after failover")
        .wait()
        .expect("failover write ack");
    println!(
        "new primary took a durable write: {} objects — failover complete",
        new_primary.len()
    );
}
