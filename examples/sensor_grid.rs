//! Sensor grid monitoring: frequent in-place-ish updates, concurrent
//! readers, durable storage.
//!
//! A grid of environmental sensors streams state samples whose 2-D
//! "position" is a pair of measured variables (say temperature ×
//! humidity, normalized). Values drift slowly — the locality-preserving
//! update pattern the paper targets. The index lives on a *file-backed*
//! disk, is shared by writer and reader threads through the DGL-locked
//! wrapper, and is persisted and reopened at the end.
//!
//! ```sh
//! cargo run --release --example sensor_grid
//! ```

use bur::prelude::*;
use std::sync::Arc;

const SENSORS: u64 = 5_000;
const ROUNDS: usize = 10;

fn main() -> CoreResult<()> {
    let dir = std::env::temp_dir().join(format!("bur-sensor-grid-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(bur::storage::StorageError::Io)?;
    let path = dir.join("sensors.bur");

    let opts = IndexOptions::generalized();

    // ---- create a durable index ----
    let disk = Arc::new(FileDisk::create(&path, opts.page_size)?);
    let mut index = IndexBuilder::with_options(opts).disk(disk).build_index()?;
    for oid in 0..SENSORS {
        // Initial readings spread over the state space.
        let x = ((oid * 7919) % 1000) as f32 / 1000.0;
        let y = ((oid * 104729) % 1000) as f32 / 1000.0;
        index.insert(oid, Point::new(x, y))?;
    }
    println!(
        "created {} sensors on {} (height {})",
        index.len(),
        path.display(),
        index.height()
    );

    // ---- concurrent monitoring: writers stream samples, readers scan ----
    let shared = Bur::from_index(index);
    let mut positions: Vec<Point> = (0..SENSORS)
        .map(|oid| {
            let x = ((oid * 7919) % 1000) as f32 / 1000.0;
            let y = ((oid * 104729) % 1000) as f32 / 1000.0;
            Point::new(x, y)
        })
        .collect();

    for round in 0..ROUNDS {
        std::thread::scope(|s| {
            // A reader thread scans "alert regions" while updates stream.
            let shared_ref = &shared;
            s.spawn(move || {
                let mut alerts = 0usize;
                for i in 0..20 {
                    let lo = (i as f32) / 20.0;
                    let window = Rect::new(lo, 0.9, lo + 0.05, 1.0);
                    alerts += shared_ref.query(&window).unwrap().count();
                }
                alerts
            });
            // The writer applies one drift step per sensor.
            let positions = &mut positions;
            s.spawn(move || {
                for oid in 0..SENSORS {
                    let old = positions[oid as usize];
                    let drift = ((oid + round as u64) % 17) as f32 / 17.0 - 0.5;
                    let new = Point::new(
                        (old.x + drift * 0.004).clamp(0.0, 1.0),
                        (old.y + 0.002).clamp(0.0, 1.0),
                    );
                    shared_ref.update(oid, old, new).unwrap();
                    positions[oid as usize] = new;
                }
            });
        });
    }
    let outcome_summary = shared.with_op_stats(|s| s.snapshot());
    println!("after {ROUNDS} rounds: {outcome_summary}");
    shared.validate()?;

    // ---- persist and reopen ----
    let mut index = shared
        .try_into_index()
        .expect("all clones are gone after the rounds");
    index.persist()?;
    let io = index.io_stats().snapshot();
    println!(
        "persisted ({} physical reads, {} writes so far)",
        io.reads, io.writes
    );
    drop(index);

    let disk = Arc::new(FileDisk::open(&path, opts.page_size)?);
    let reopened = IndexBuilder::with_options(opts)
        .disk(disk)
        .open()
        .build_index()?;
    println!(
        "reopened: {} sensors, height {} — summary rebuilt with {} internal entries",
        reopened.len(),
        reopened.height(),
        reopened.summary().map_or(0, |s| s.internal_count())
    );
    reopened.validate()?;
    println!("validate(): ok");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
