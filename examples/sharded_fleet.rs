//! Hilbert-range sharding: one logical index over N shards.
//!
//! A city fleet reports positions into a `ShardedBur` — four GBU
//! indexes behind one batch-first facade. Writes route by Hilbert key,
//! window queries scatter only to the shards whose key range the
//! window's curve decomposition touches, kNN merges per-shard cursors
//! into one globally ordered stream. When a depot hotspot skews the
//! load, `rebalance_step` carves key ranges off the hot shard until
//! the fleet spreads evenly again.
//!
//! ```sh
//! cargo run --release --example sharded_fleet
//! ```

use bur::core::{Batch, IndexBuilder};
use bur::geom::{Point, Rect};
use bur::shard::{key_space_for, ShardOptions, ShardedBur};

const SHARDS: usize = 4;
const FLEET: u64 = 30_000;
const HOTSPOT: u64 = 15_000;

/// Deterministic pseudo-random position in the unit square.
fn pos(seed: u64) -> Point {
    let h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
    let x = ((h >> 16) & 0xffff) as f32 / 65536.0;
    let y = ((h >> 40) & 0xffff) as f32 / 65536.0;
    Point::new(x, y)
}

fn print_loads(s: &ShardedBur, label: &str) {
    let stats = s.stats();
    let loads: Vec<String> = stats
        .shards
        .iter()
        .enumerate()
        .map(|(k, l)| format!("s{k}={}", l.len))
        .collect();
    println!(
        "{label:<18} {} | imbalance {:.2} | {} segments, epoch {}",
        loads.join(" "),
        stats.imbalance,
        stats.segments,
        stats.epoch
    );
}

fn main() {
    // One logical index, four shards. `from_shards` splits the Hilbert
    // key space evenly; a manifest path would make the map durable.
    let shards = (0..SHARDS)
        .map(|_| IndexBuilder::generalized().build().unwrap())
        .collect();
    let fleet = ShardedBur::from_shards(shards, ShardOptions::default()).unwrap();

    // The city fleet spreads evenly over town...
    let mut batch = Batch::with_capacity(FLEET as usize);
    for oid in 0..FLEET {
        batch.insert(oid, pos(oid));
    }
    let ticket = fleet.apply(&batch).unwrap();
    println!(
        "inserted {} vehicles in one batch across {} shards ({} group commits)",
        ticket.report().inserted,
        SHARDS,
        ticket.shards_touched()
    );
    print_loads(&fleet, "uniform fleet");

    // ...until the morning rush crowds one depot corner.
    let mut rush = Batch::with_capacity(HOTSPOT as usize);
    for i in 0..HOTSPOT {
        let p = pos(FLEET + i);
        rush.insert(FLEET + i, Point::new(p.x * 0.12, p.y * 0.12));
    }
    fleet.apply(&rush).unwrap();
    print_loads(&fleet, "depot hotspot");

    // Rebalance: carve contiguous key ranges off the hottest shard to
    // the coolest until the load evens out. Each step is one online
    // range migration (readers stay live, writes into the moving range
    // briefly freeze, the routing epoch ticks).
    let mut steps = 0;
    while let Some(report) = fleet.rebalance_step().unwrap() {
        steps += 1;
        println!(
            "  rebalance step {steps}: moved {} vehicles shard {} -> {}",
            report.moved, report.from, report.to
        );
        if steps >= 16 {
            break;
        }
    }
    print_loads(&fleet, "after rebalance");

    // Scatter-gather reads. A dispatch window in the depot corner only
    // visits the shards owning that part of the curve.
    let window = Rect::new(0.0, 0.0, 0.1, 0.1);
    let q = fleet.query(&window).unwrap();
    let touched = q.shards_touched();
    let nearby = q.count();
    println!("dispatch window {window}: {nearby} vehicles from {touched}/{SHARDS} shards");

    // kNN merges per-shard cursors into one globally ordered stream
    // with distance-pruned shard admission.
    let incident = Point::new(0.06, 0.06);
    let responders: Vec<_> = fleet.nearest(incident, 5).unwrap().try_collect().unwrap();
    println!("5 nearest responders to {incident}:");
    for n in &responders {
        println!("  vehicle {:>6} at distance {:.4}", n.oid, n.distance);
    }

    // Targeted migration: operations can also move an explicit key
    // range to a named shard. A migration must name a range owned by a
    // single shard, so split the map's first segment in half.
    let segments = fleet.segments();
    let first = segments[0];
    let end = segments
        .get(1)
        .map_or_else(|| key_space_for(fleet.order()), |next| next.start);
    let mid = first.start + (end - first.start) / 2;
    let to = (first.shard + 1) % SHARDS as u32;
    let r = fleet.migrate_range(first.start, mid, to).unwrap();
    println!(
        "manual migration: moved {} vehicles shard {} -> {} (epoch {})",
        r.moved, r.from, r.to, r.epoch
    );
    print_loads(&fleet, "final");
    assert_eq!(fleet.len(), FLEET + HOTSPOT);
}
