//! Taxi dispatch: nearest-neighbor matching over a moving fleet.
//!
//! Taxis stream position updates (bottom-up, GBU); riders request rides
//! and the dispatcher answers with the k closest available taxis (the
//! library's best-first kNN extension) plus a surge check counting taxis
//! inside the pickup zone (`within_distance`).
//!
//! ```sh
//! cargo run --release --example taxi_dispatch
//! ```

use bur::prelude::*;

const TAXIS: usize = 10_000;
const TICKS: usize = 40_000;
const REQUESTS: usize = 500;

fn main() -> CoreResult<()> {
    // Taxis cruise along persistent headings (trend movement) through a
    // city whose demand is densest downtown (Gaussian placement).
    let mut city = Workload::generate(WorkloadConfig {
        num_objects: TAXIS,
        distribution: DataDistribution::Gaussian,
        max_distance: 0.003,
        movement: MovementModel::Trend { jitter: 0.5 },
        query_max_side: 0.04,
        seed: 0x7A_C515,
        clamp: true, // taxis stay inside the city limits
    });

    let mut index = IndexBuilder::with_options(IndexOptions::generalized()).build_index()?;
    for (oid, pos) in city.items() {
        index.insert(oid, pos)?;
    }
    println!("fleet of {TAXIS} taxis indexed (height {})", index.height());

    index.io_stats().reset();
    index.op_stats().reset();

    // Interleave position updates with dispatch requests.
    let mut matched = 0usize;
    let mut surge_zones = 0usize;
    let requests_every = TICKS / REQUESTS;
    for tick in 0..TICKS {
        let op = city.next_update();
        index.update(op.oid, op.old, op.new)?;

        if tick % requests_every == 0 {
            // A rider appears where a taxi just was (demand follows the
            // fleet density).
            let rider = Point::new(op.new.x, op.new.y);

            // Dispatch: the three closest taxis.
            let candidates = index.nearest_neighbors(rider, 3)?;
            matched += usize::from(!candidates.is_empty());

            // Surge pricing: fewer than 5 taxis within 0.02 of the rider.
            let nearby = index.within_distance(rider, 0.02)?;
            surge_zones += usize::from(nearby.len() < 5);
        }
    }

    let io = index.io_stats().snapshot();
    let ops = index.op_stats().snapshot();
    println!("{TICKS} position updates, {REQUESTS} dispatch requests");
    println!(
        "  update paths: {} in place, {} extended, {} shifted, {} ascended, {} top-down",
        ops.upd_in_place, ops.upd_extended, ops.upd_shifted, ops.upd_ascended, ops.upd_top_down
    );
    println!("  {matched}/{REQUESTS} requests matched; {surge_zones} returned a surge zone");
    println!(
        "  physical I/O: {} reads, {} writes ({:.2} per operation)",
        io.reads,
        io.writes,
        io.physical() as f64 / (TICKS + 2 * REQUESTS) as f64
    );

    index.validate()?;
    println!("index invariants verified");
    Ok(())
}
