//! Multi-client throughput: the paper's Figure 8 scenario in miniature.
//!
//! A pool of client threads drives a mixed stream of position updates and
//! window queries against one shared `Bur` handle protected by DGL
//! granule locks. Run for both the top-down baseline and the generalized
//! bottom-up strategy to see the throughput crossover the paper reports:
//! TD wins at 100 % queries, GBU wins as the update share grows.
//!
//! ```sh
//! cargo run --release --example throughput_demo
//! ```

use bur::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const OBJECTS: usize = 20_000;
const THREADS: usize = 8;
const RUN_FOR: Duration = Duration::from_millis(1500);

fn run_mix(opts: IndexOptions, update_pct: u32) -> CoreResult<f64> {
    let workload = Workload::generate(WorkloadConfig {
        num_objects: OBJECTS,
        max_distance: 0.01,
        query_max_side: 0.01, // the paper's throughput study uses small windows
        seed: 0xF168,
        ..WorkloadConfig::default()
    });

    let mut index = IndexBuilder::with_options(opts).build_index()?;
    for (oid, pos) in workload.items() {
        index.insert(oid, pos)?;
    }
    let index = Bur::from_index(index);
    let completed = AtomicU64::new(0);

    // Each thread owns a disjoint slice of the fleet, so no two threads
    // ever disagree about an object's previous position.
    let parts = workload.split(THREADS);
    std::thread::scope(|s| {
        for mut part in parts {
            let index = &index;
            let completed = &completed;
            s.spawn(move || {
                let deadline = Instant::now() + RUN_FOR;
                let mut coin = 0u32;
                while Instant::now() < deadline {
                    coin = coin.wrapping_add(37) % 100;
                    if coin < update_pct {
                        let op = part.next_update();
                        index.update(op.oid, op.old, op.new).unwrap();
                    } else {
                        let q = part.next_query();
                        index.query(&q.window).unwrap().count();
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    index.validate()?;
    Ok(completed.load(Ordering::Relaxed) as f64 / RUN_FOR.as_secs_f64())
}

fn main() -> CoreResult<()> {
    println!(
        "{OBJECTS} objects, {THREADS} client threads, {}s per cell\n",
        RUN_FOR.as_secs_f64()
    );
    println!(
        "{:>10} {:>14} {:>14}",
        "% updates", "TD (ops/s)", "GBU (ops/s)"
    );
    for update_pct in [0, 25, 50, 75, 100] {
        let td = run_mix(IndexOptions::top_down(), update_pct)?;
        let gbu = run_mix(IndexOptions::generalized(), update_pct)?;
        println!("{update_pct:>10} {td:>14.0} {gbu:>14.0}");
    }
    println!(
        "\nExpected shape (paper Fig. 8): TD falls as updates dominate;\n\
         GBU rises — its optimizations make updates cheaper than queries."
    );
    Ok(())
}
