//! Tuning ε, τ and L: a miniature version of the paper's sensitivity
//! study (Section 5.1), runnable in seconds.
//!
//! Shows how the three GBU knobs trade update cost against query cost on
//! one fixed workload, using the physical-I/O counters of the buffer
//! pool. See `cargo run --release -p bur-bench --bin repro` for the full
//! figure reproduction.
//!
//! ```sh
//! cargo run --release --example tuning
//! ```

use bur::prelude::*;

const OBJECTS: usize = 20_000;
const UPDATES: usize = 40_000;
const QUERIES: usize = 100;

fn measure(opts: IndexOptions) -> CoreResult<(f64, f64)> {
    let mut workload = Workload::generate(WorkloadConfig {
        num_objects: OBJECTS,
        max_distance: 0.02,
        query_max_side: 0.1,
        seed: 42,
        ..WorkloadConfig::default()
    });
    let mut index = IndexBuilder::with_options(opts).build_index()?;
    for (oid, pos) in workload.items() {
        index.insert(oid, pos)?;
    }
    let pages = index.data_pages()?;
    index.set_buffer_capacity((pages as f64 * 0.01).round() as usize)?;
    index.pool().evict_all()?;
    index.io_stats().reset();

    let before = index.io_stats().snapshot();
    for _ in 0..UPDATES {
        let op = workload.next_update();
        index.update(op.oid, op.old, op.new)?;
    }
    let upd = index.io_stats().snapshot().since(&before).physical() as f64 / UPDATES as f64;

    let before = index.io_stats().snapshot();
    for _ in 0..QUERIES {
        let q = workload.next_query();
        index.query(&q.window)?;
    }
    let qry = index.io_stats().snapshot().since(&before).physical() as f64 / QUERIES as f64;
    Ok((upd, qry))
}

fn gbu(epsilon: f32, tau: f32, level: Option<u16>) -> IndexOptions {
    IndexOptions {
        strategy: UpdateStrategy::Generalized(GbuParams {
            epsilon,
            distance_threshold: tau,
            level_threshold: level,
            ..GbuParams::default()
        }),
        ..IndexOptions::default()
    }
}

fn main() -> CoreResult<()> {
    println!("{OBJECTS} objects, {UPDATES} updates, {QUERIES} queries; I/O per op\n");

    println!("epsilon sweep (tau = 0.03, L = max):");
    for eps in [0.0f32, 0.003, 0.01, 0.03] {
        let (u, q) = measure(gbu(eps, 0.03, None))?;
        println!("  eps={eps:<6}  update {u:5.2}   query {q:6.1}");
    }

    println!("\ntau sweep (eps = 0.003, L = max):");
    for tau in [0.0f32, 0.03, 1.0] {
        let (u, q) = measure(gbu(0.003, tau, None))?;
        println!("  tau={tau:<6}  update {u:5.2}   query {q:6.1}");
    }

    println!("\nlevel-threshold sweep (eps = 0.003, tau = 0.03):");
    for level in [0u16, 1, 2, 3] {
        let (u, q) = measure(gbu(0.003, 0.03, Some(level)))?;
        println!("  L={level:<8}  update {u:5.2}   query {q:6.1}");
    }

    println!("\nbaselines:");
    let (u, q) = measure(IndexOptions::top_down())?;
    println!("  TD        update {u:5.2}   query {q:6.1}");
    let (u, q) = measure(IndexOptions::localized())?;
    println!("  LBU       update {u:5.2}   query {q:6.1}");
    Ok(())
}
