//! Offline shim for [criterion](https://docs.rs/criterion) 0.5.
//!
//! Implements exactly the API surface this workspace uses:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `group.sample_size(..)` / `group.measurement_time(..)` /
//! `group.bench_function(..)` / `group.finish()`, and the `Bencher::iter`
//! measurement loop.
//!
//! Behavioural differences vs the real crate (accepted for CI purposes):
//!
//! * No warm-up phase, outlier analysis, or `target/criterion` reports —
//!   each benchmark prints a single plain-text mean wall-clock line.
//! * `--test` runs every benchmark body exactly once (smoke mode), matching
//!   the flag `cargo bench -- --test` CI relies on.
//! * A positional CLI argument filters benchmarks by substring match on the
//!   `group/name` id, like the real crate's filter.

use std::time::{Duration, Instant};

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    /// `true` when running under `--test`: execute once, skip timing.
    smoke: bool,
    /// Mean wall-clock per iteration from the last `iter` call.
    mean: Option<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock per call.
    ///
    /// In smoke mode (`--test`) the routine runs exactly once, so side
    /// effects (allocations, I/O) are exercised without the timing loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            std::hint::black_box(f());
            self.mean = None;
            return;
        }
        // Warm-up: a few untimed calls so lazy initialisation and cache
        // effects do not dominate the first sample.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let mut iters: u64 = 0;
        let budget = self.measurement_time;
        let min_iters = self.sample_size as u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            if iters >= min_iters && start.elapsed() >= budget {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        let total = start.elapsed();
        self.mean = Some(total / iters.max(1) as u32);
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on timed iterations per benchmark (shim: also the
    /// minimum iteration count before the time budget is checked).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the measurement loop of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Register and (unless filtered out) immediately run one benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into());
        if !self.criterion.matches(&id) {
            return self;
        }
        let mut b = Bencher {
            smoke: self.criterion.smoke,
            mean: None,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        match b.mean {
            Some(mean) => println!("{id:<40} mean {mean:>12.2?}"),
            None => println!("{id:<40} ok (smoke)"),
        }
        self
    }

    /// No-op in the shim (the real crate finalises reports here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark harness state (CLI flags + defaults).
pub struct Criterion {
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                // Flags cargo-bench forwards that the shim can ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { smoke, filter }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Start a named benchmark group with default configuration.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }

    /// Single-function form used by simple benches.
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Re-export so `criterion::black_box` keeps working like upstream.
pub use std::hint::black_box;

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point generated by `criterion_group!`.
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
