//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface used by
//! this workspace: non-poisoning [`Mutex`] / [`RwLock`] whose guards come
//! back without a `Result`, and a [`Condvar`] whose waits take the guard by
//! `&mut` (instead of by value like `std`).
//!
//! Poisoning is deliberately ignored (`parking_lot` has no poisoning): if a
//! thread panicked while holding a lock, the next locker simply proceeds
//! with the data as it was left.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock. [`Mutex::lock`] never fails and never poisons.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard of a [`Mutex`].
///
/// Holds the inner `std` guard in an `Option` so [`Condvar`] waits can take
/// it out by value and put the reacquired guard back — that is what lets
/// `wait` borrow the guard mutably like `parking_lot` does.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock. Guards come back without a `Result` and the lock
/// never poisons.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Shared-read RAII guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the deadline passed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose waits reacquire the [`Mutex`] through the same
/// guard, `parking_lot`-style.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Block until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard is usable (and the mutex still held) after the wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
