//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests are written against the real `proptest`
//! API, but the build must work with no network access, so this shim
//! implements the subset those tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::boxed`], implemented for numeric ranges, tuples, and
//!   [`Just`];
//! * [`any`] for primitives, [`collection::vec`], and the
//!   [`prop_oneof!`] weighted-union macro;
//! * the [`proptest!`] test-runner macro with `#![proptest_config(..)]`
//!   support, plus [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failure reports the generated input as-is;
//! * the run is **deterministic**: the seed is derived from the test name
//!   (override with the `PROPTEST_SEED` environment variable to explore
//!   other inputs).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Discard generated values for which `f` is false (the test case is
    /// rejected and regenerated).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

// Strategies are usable through references (the runner macro keeps the
// strategy tuple by value, but helpers may pass references around).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Map combinator returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.new_value(rng))
    }
}

/// Filter combinator returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.base.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 values in a row: {}", self.whence);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}

arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (for primitives: uniform).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

strategy_for_tuple!(A: 0);
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate a `Vec` of values of `element`, with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// A weighted union of strategies, built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build a union; weights must not all be zero.
    #[must_use]
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        Self { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (weight, strat) in &self.options {
            if pick < *weight {
                return strat.new_value(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed; the runner panics with this message.
    Fail(String),
    /// The inputs were unsuitable (`prop_assume!`); the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failed property.
    pub fn fail(reason: impl fmt::Display) -> Self {
        Self::Fail(reason.to_string())
    }

    /// A rejected (skipped) test case.
    pub fn reject(reason: impl fmt::Display) -> Self {
        Self::Reject(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(r) => write!(f, "test case failed: {r}"),
            Self::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The outcome a property body produces.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of test cases to run per property.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Drives one property: generates inputs and evaluates the body.
///
/// Used by the [`proptest!`] macro; rarely constructed by hand.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner for `test_name`, seeded deterministically from the name (or
    /// from `PROPTEST_SEED` if set).
    #[must_use]
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0xb0b5u64)
            ^ fnv1a(test_name.as_bytes());
        Self {
            config,
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// Run `body` against `config.cases` generated inputs; panics on the
    /// first failure, printing the offending input.
    pub fn run<S, F>(&mut self, strategy: &S, body: F)
    where
        S: Strategy,
        S::Value: fmt::Debug + Clone,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < self.config.cases {
            let input = strategy.new_value(&mut self.rng);
            match body(input.clone()) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "too many rejected test cases ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest case {case} failed: {reason}\n  input: {input:?}\n  \
                         (no shrinking in the offline proptest shim; \
                         set PROPTEST_SEED to vary inputs)"
                    );
                }
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

// `num` module kept API-compatible for code that names `proptest::num::...`.
/// Numeric strategies (ranges implement [`Strategy`] directly).
pub mod num {}

/// Fail the property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Weighted choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of real-proptest syntax used in this workspace:
/// an optional leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let mut runner = $crate::TestRunner::new($config, stringify!($name));
                runner.run(&strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::cell::Cell;

    #[test]
    fn union_respects_weights_roughly() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1_000), "weights");
        let trues = Cell::new(0u32);
        runner.run(&(&strat,), |(v,)| {
            if v {
                trues.set(trues.get() + 1);
            }
            Ok(())
        });
        assert!(
            (800..1000).contains(&trues.get()),
            "got {} trues",
            trues.get()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0.0f32..1.0, n in 3usize..10, b in any::<bool>()) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..10).contains(&n));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        #[should_panic(expected = "proptest case")]
        fn failure_panics_with_input(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
