//! Offline stand-in for the `rand` crate.
//!
//! The `bur` workspace must build with **no network access**, so instead of
//! the crates.io `rand` it uses this dependency-free shim exposing the small
//! slice of the rand 0.9 API the workspace needs:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator, seedable via
//!   [`SeedableRng::seed_from_u64`] (splitmix64 seed expansion, like the real
//!   `rand` does for small seeds);
//! * [`RngExt::random`] / [`RngExt::random_range`] — uniform sampling of
//!   primitives and of `Range` / `RangeInclusive` bounds.
//!
//! Determinism is part of the contract: the workload generator and the
//! experiment harness seed every RNG explicitly so runs are reproducible
//! bit-for-bit, and tests rely on that.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value range
/// (`f32`/`f64` are sampled uniformly from `[0, 1)`).
pub trait Uniform: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Range-like arguments accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Sample a value of a [`Uniform`] type (`bool`, integers, unit-interval
    /// floats).
    fn random<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, matching `rand`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Sample a boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 mantissa precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Uniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let v = rng.next_u64() as $wide % span;
                self.start.wrapping_add(v as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                // span == 0 means the whole domain: any word is in range.
                let v = if span == 0 { rng.next_u64() as $wide } else { rng.next_u64() as $wide % span };
                start.wrapping_add(v as $t)
            }
        }
    )*};
}

sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Uniform>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Floating rounding can land exactly on `end`; stay half-open.
                if v >= self.end { self.start } else { v }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Uniform>::sample(rng);
                (start + unit * (end - start)).clamp(start, end)
            }
        }
    )*};
}

sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.random::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.random::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-0.25f32..0.75);
            assert!((-0.25..0.75).contains(&v));
            let n = rng.random_range(3usize..9);
            assert!((3..9).contains(&n));
            let m = rng.random_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&m));
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v: f32 = rng.random();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi, "samples should span the unit interval");
    }
}
