//! The default generator: xoshiro256++ with splitmix64 seed expansion.

use crate::{RngCore, SeedableRng};

/// A deterministic, seedable pseudo-random generator (xoshiro256++).
///
/// Not cryptographically secure — it exists to make experiments and tests
/// reproducible, exactly like `rand::rngs::StdRng` is used in this
/// workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
