//! `burctl` — inspect and exercise persisted `bur` index files.
//!
//! ```text
//! burctl build <file> [--objects N] [--strategy td|lbu|gbu] [--seed S] [--durable]
//! burctl info <file>
//! burctl validate <file>
//! burctl query <file> <min_x> <min_y> <max_x> <max_y>
//! burctl knn <file> <x> <y> <k>
//! burctl batch <file> <ops-file|->
//! burctl stats <file> [--updates N]
//! burctl recover <file> [--strategy td|lbu|gbu]
//! burctl replicate <primary-file> <replica-file>
//! burctl promote <file> [--strategy td|lbu|gbu]
//! burctl wal-stats <file>
//! burctl serve <data-dir> [--addr HOST:PORT] [--max-conns N]
//! burctl ping --addr HOST:PORT
//! burctl remote-query --addr HOST:PORT <index> <min_x> <min_y> <max_x> <max_y>
//! burctl chaos <listen> <upstream> [--plan <spec>]
//! burctl shard create --addr HOST:PORT <name> --shards N [--strategy td|lbu|gbu] [--durable]
//! burctl shard map <data-dir> <name>
//! burctl shard move <data-dir> <name> <lo> <hi> <to-shard>
//! burctl shard rebalance <data-dir> <name>
//! ```
//!
//! `build` creates a demonstration index from a seeded uniform workload;
//! the other commands open an existing file read-only (except `batch`,
//! which applies a mixed-operation `Batch` from a text stream; `stats`,
//! which drives updates and reports I/O and outcome counters; `recover`,
//! which replays the write-ahead log of a `--durable` index after a
//! crash and checkpoints the result; and the replication pair —
//! `replicate` ships a durable primary's log into a warm-standby clone
//! file, `promote` blesses a standby (or crashed primary) file as the
//! new verified primary).
//!
//! The serving trio talks the `burd` wire protocol: `serve` runs the
//! server in the foreground over a data directory of named indexes
//! (equivalent to the standalone `burd` binary), `ping` checks a
//! running server's liveness, and `remote-query` runs a window query
//! against a named index over the network through `bur-client`.
//!
//! `chaos` runs a standalone frame-aware fault-injecting TCP proxy in
//! front of a running server — point clients at `<listen>` and it
//! forwards to `<upstream>`, dropping, truncating, delaying or
//! black-holing frames per the seeded `--plan` spec. Used to rehearse
//! client retry/timeout behavior against a real server.
//!
//! The `shard` family manages Hilbert-range sharded indexes. `shard
//! create` asks a running server to build an index as N range shards
//! behind one logical name; `shard map` prints a sharded index's
//! routing manifest (key-range segments, epoch, slack, any in-flight
//! migration); `shard move` and `shard rebalance` open the shard files
//! directly to migrate a key range or run the imbalance heuristic —
//! run those two only against a **stopped** server.

use bur::core::{Batch, IndexBuilder, IndexOptions, RTreeIndex};
use bur::geom::{Point, Rect};
use bur::repl::{Follower, LogShipper};
use bur::storage::FileDisk;
use bur::wal::WalRecord;
use bur::workload::{Workload, WorkloadConfig};
use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n\
         \x20 burctl build <file> [--objects N] [--strategy td|lbu|gbu] [--seed S] [--durable]\n\
         \x20 burctl info <file>\n\
         \x20 burctl validate <file>\n\
         \x20 burctl query <file> <min_x> <min_y> <max_x> <max_y>\n\
         \x20 burctl knn <file> <x> <y> <k>\n\
         \x20 burctl batch <file> <ops-file|->\n\
         \x20 burctl stats <file> [--updates N]\n\
         \x20 burctl recover <file> [--strategy td|lbu|gbu]\n\
         \x20 burctl replicate <primary-file> <replica-file>\n\
         \x20 burctl promote <file> [--strategy td|lbu|gbu]\n\
         \x20 burctl wal-stats <file>\n\
         \x20 burctl serve <data-dir> [--addr HOST:PORT] [--max-conns N]\n\
         \x20 burctl ping --addr HOST:PORT\n\
         \x20 burctl remote-query --addr HOST:PORT <index> <min_x> <min_y> <max_x> <max_y>\n\
         \x20 burctl chaos <listen> <upstream> [--plan <spec>]\n\
         \x20 burctl shard create --addr HOST:PORT <name> --shards N [--strategy td|lbu|gbu] [--durable]\n\
         \x20 burctl shard map <data-dir> <name>\n\
         \x20 burctl shard move <data-dir> <name> <lo> <hi> <to-shard>\n\
         \x20 burctl shard rebalance <data-dir> <name>\n\
         \n\
         the shard family manages Hilbert-range sharded indexes: create\n\
         asks a running server to build <name> as N key-range shards\n\
         behind one logical name (writes route by key, queries scatter-\n\
         gather); map prints the routing manifest (<name>.shardmap) —\n\
         key-range segments, epoch, extent slack, in-flight migration;\n\
         move migrates the Hilbert keys [lo, hi) to <to-shard> and\n\
         rebalance runs imbalance-driven migration steps until even.\n\
         map/move/rebalance open the files directly: run them only\n\
         against a STOPPED server.\n\
         \n\
         chaos runs a fault-injecting TCP proxy in the foreground:\n\
         clients connect to <listen> (port 0 lets the OS pick; the bound\n\
         address is printed as `chaos proxy listening on <addr> -> <upstream>`)\n\
         and frames are forwarded to the burd server at <upstream> with\n\
         faults injected per --plan, a comma-separated spec:\n\
         `seed=42,drop=0.05,truncate=0.02,delay=0.1:5,blackhole=0.01,cut-after=4096`\n\
         (rates are per-frame probabilities; delay=RATE:MILLIS; cut-after\n\
         cuts the connection after N forwarded bytes per direction;\n\
         script=CONN/c2s|s2c/FRAME/drop|truncate|blackhole|delay pins a\n\
         fault to an exact frame, `+`-separated to stack). The same seed\n\
         replays the same fault schedule. Runs until killed.\n\
         \n\
         serve runs the burd server in the foreground over <data-dir>\n\
         (named indexes, one `<name>.bur` file each; create them over the\n\
         wire with bur-client). It prints `burd listening on <addr>` once\n\
         bound — pass port 0 to let the OS pick — and exits after a client\n\
         sends the shutdown opcode (writes drain, logs flush, indexes\n\
         checkpoint). ping round-trips a liveness probe; remote-query runs\n\
         a window query against a named index on a running server.\n\
         \n\
         replicate attaches a warm-standby follower to a --durable primary\n\
         file: it copies the base image, tails the write-ahead log with an\n\
         incremental cursor (surviving checkpoint rewinds via generation\n\
         tags), redoes every shipped record commit-by-commit onto\n\
         <replica-file>, and finally promotes the clone so it stands alone\n\
         as a valid durable index. promote turns any durable standby (or\n\
         crashed primary) file into a verified primary: it replays the\n\
         file's own log to the last durable commit, rebuilds the memory\n\
         state the strategy needs, validates every invariant, and\n\
         checkpoints a fresh log generation.\n\
         \n\
         batch applies one atomic mixed-operation Batch read from <ops-file>\n\
         (or stdin with `-`): one `op,oid,x,y[,x2,y2]` line per operation,\n\
         where op is insert|update|delete (or i|u|d). insert and delete take\n\
         the object's position as x,y; update moves the object from x,y to\n\
         x2,y2. Blank lines and lines starting with `#` are skipped. On a\n\
         --durable file the whole batch lands under ONE write-ahead-log\n\
         group commit record — after a crash it recovers entirely or not at\n\
         all — and the commit ticket is awaited (hard durability ack).\n\
         \n\
         wal-stats reads the write-ahead log of a --durable file and reports,\n\
         besides the generation / page / LSN figures: full-image vs delta\n\
         record counts (`N full images, M deltas`), the wire bytes the delta\n\
         encoder spent and saved versus full-image logging (`delta bytes`),\n\
         and the observed anchor cadence (page records per full-image anchor\n\
         — the configured ceiling is WalOptions::delta.anchor_every)."
    );
    ExitCode::FAILURE
}

fn parse_strategy(s: &str) -> Option<IndexOptions> {
    match s {
        "td" => Some(IndexOptions::top_down()),
        "lbu" => Some(IndexOptions::localized()),
        "gbu" => Some(IndexOptions::generalized()),
        _ => None,
    }
}

fn open(path: &str, opts: IndexOptions) -> Result<RTreeIndex, String> {
    IndexBuilder::with_options(opts)
        .file(path)
        .open()
        .build_index()
        .map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_build(path: &str, rest: &[String]) -> Result<(), String> {
    let mut objects = 50_000usize;
    let mut opts = IndexOptions::generalized();
    let mut seed = 42u64;
    let mut durable = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--objects" => {
                objects = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--objects needs a number")?;
            }
            "--strategy" => {
                opts = it
                    .next()
                    .and_then(|v| parse_strategy(v))
                    .ok_or("--strategy needs td|lbu|gbu")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--durable" => durable = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if durable {
        opts = opts.with_durability(bur::core::Durability::Wal(bur::core::WalOptions::default()));
    }
    let mut index = IndexBuilder::with_options(opts)
        .file(path)
        .build_index()
        .map_err(|e| format!("cannot init index: {e}"))?;
    let workload = Workload::generate(WorkloadConfig {
        num_objects: objects,
        seed,
        ..WorkloadConfig::default()
    });
    for (oid, p) in workload.items() {
        index
            .insert(oid, p)
            .map_err(|e| format!("insert {oid}: {e}"))?;
    }
    index.persist().map_err(|e| format!("persist: {e}"))?;
    println!(
        "built {path}: {} objects, strategy {}, height {}, {} tree pages",
        index.len(),
        index.options().strategy.name(),
        index.height(),
        index.tree_pages().map_err(|e| e.to_string())?,
    );
    Ok(())
}

fn cmd_info(path: &str) -> Result<(), String> {
    let index = open(path, IndexOptions::generalized())?;
    println!("file          : {path}");
    println!("objects       : {}", index.len());
    println!("height        : {}", index.height());
    println!("page size     : {} B", index.options().page_size);
    println!(
        "tree pages    : {}",
        index.tree_pages().map_err(|e| e.to_string())?
    );
    println!("hash pages    : {}", index.hash_pages());
    if let Some(s) = index.summary() {
        println!(
            "summary       : {} internal entries, {} B table + {} B bit vectors",
            s.internal_count(),
            s.table_size_bytes(),
            s.bitvec_size_bytes()
        );
        let mbr = s.root_mbr();
        println!("root MBR      : {mbr}");
    }
    Ok(())
}

fn cmd_validate(path: &str) -> Result<(), String> {
    let index = open(path, IndexOptions::generalized())?;
    index
        .validate()
        .map_err(|e| format!("INVALID index: {e}"))?;
    println!("ok: {} objects, all invariants hold", index.len());
    Ok(())
}

fn cmd_query(path: &str, rest: &[String]) -> Result<(), String> {
    let nums: Vec<f32> = rest
        .iter()
        .map(|s| s.parse().map_err(|_| format!("bad coordinate {s}")))
        .collect::<Result<_, _>>()?;
    let [min_x, min_y, max_x, max_y] = nums[..] else {
        return Err("query needs 4 coordinates".into());
    };
    let index = open(path, IndexOptions::generalized())?;
    let window = Rect::new(min_x, min_y, max_x, max_y);
    if !window.is_valid() {
        return Err(format!("invalid window {window}"));
    }
    let mut hits = index.query(&window).map_err(|e| e.to_string())?;
    hits.sort_unstable();
    println!("{} objects in {window}:", hits.len());
    for chunk in hits.chunks(10) {
        println!(
            "  {}",
            chunk
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    Ok(())
}

fn cmd_knn(path: &str, rest: &[String]) -> Result<(), String> {
    let [x, y, k] = rest else {
        return Err("knn needs x y k".into());
    };
    let x: f32 = x.parse().map_err(|_| "bad x")?;
    let y: f32 = y.parse().map_err(|_| "bad y")?;
    let k: usize = k.parse().map_err(|_| "bad k")?;
    let index = open(path, IndexOptions::generalized())?;
    let neighbors = index
        .nearest_neighbors(Point::new(x, y), k)
        .map_err(|e| e.to_string())?;
    println!("{} nearest neighbors of ({x}, {y}):", neighbors.len());
    for n in neighbors {
        println!("  oid {:>8}  distance {:.6}", n.oid, n.distance);
    }
    Ok(())
}

/// Parse one `op,oid,x,y[,x2,y2]` line into the batch.
fn parse_batch_line(line: &str, lineno: usize, batch: &mut Batch) -> Result<(), String> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    let bad = |what: &str| format!("line {lineno}: {what} in {line:?}");
    let coord = |s: &str, what: &str| -> Result<f32, String> {
        s.parse().map_err(|_| bad(&format!("bad {what} {s:?}")))
    };
    let oid: u64 = fields
        .get(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("missing or bad oid"))?;
    match (fields[0], fields.len()) {
        ("insert" | "i", 4) => {
            batch.insert(
                oid,
                Point::new(coord(fields[2], "x")?, coord(fields[3], "y")?),
            );
        }
        ("delete" | "d", 4) => {
            batch.delete(
                oid,
                Point::new(coord(fields[2], "x")?, coord(fields[3], "y")?),
            );
        }
        ("update" | "u", 6) => {
            batch.update(
                oid,
                Point::new(coord(fields[2], "x")?, coord(fields[3], "y")?),
                Point::new(coord(fields[4], "x2")?, coord(fields[5], "y2")?),
            );
        }
        ("insert" | "i" | "delete" | "d", n) => {
            return Err(bad(&format!("expected 4 fields, got {n}")))
        }
        ("update" | "u", n) => return Err(bad(&format!("expected 6 fields, got {n}"))),
        (op, _) => return Err(bad(&format!("unknown op {op:?}"))),
    }
    Ok(())
}

fn cmd_batch(path: &str, rest: &[String]) -> Result<(), String> {
    let [source] = rest else {
        return Err("batch needs an ops file (or `-` for stdin)".into());
    };
    let mut batch = Batch::new();
    let reader: Box<dyn BufRead> = if source == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        let f = std::fs::File::open(source).map_err(|e| format!("cannot open {source}: {e}"))?;
        Box::new(std::io::BufReader::new(f))
    };
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read {source}: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        parse_batch_line(line, i + 1, &mut batch)?;
    }
    if batch.is_empty() {
        return Err(format!("no operations in {source}"));
    }

    let bur = IndexBuilder::generalized()
        .file(path)
        .open()
        .build()
        .map_err(|e| format!("cannot load {path}: {e}"))?;
    let commits_before = bur.wal_stats().map_or(0, |s| s.commits);
    let ticket = bur.apply(&batch).map_err(|e| format!("apply: {e}"))?;
    let report = *ticket.report();
    let watermark = ticket.wait().map_err(|e| format!("durability ack: {e}"))?;
    println!(
        "applied {} operations atomically: {} inserted, {} updated, {} deleted \
         ({} deletes missed)",
        report.applied, report.inserted, report.updated, report.deleted, report.missing_deletes
    );
    if let Some(stats) = bur.wal_stats() {
        println!(
            "durable: {} group commit record(s) cover the batch, \
             durable watermark lsn {watermark}",
            stats.commits - commits_before
        );
    }
    bur.persist().map_err(|e| format!("persist: {e}"))?;
    bur.validate().map_err(|e| format!("INVALID index: {e}"))?;
    println!("persisted; all invariants hold ({} objects)", bur.len());
    Ok(())
}

fn cmd_stats(path: &str, rest: &[String]) -> Result<(), String> {
    let mut updates = 10_000usize;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--updates" => {
                updates = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--updates needs a number")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let mut index = open(path, IndexOptions::generalized())?;
    // Rebuild the same workload state the file was built from is not
    // possible in general; instead move objects found by sampling leaves.
    let all = index
        .query_entries(&Rect::new(
            f32::MIN / 4.0,
            f32::MIN / 4.0,
            f32::MAX / 4.0,
            f32::MAX / 4.0,
        ))
        .map_err(|e| e.to_string())?;
    if all.is_empty() {
        return Err("index is empty".into());
    }
    index.io_stats().reset();
    index.op_stats().reset();
    let before = index.io_stats().snapshot();
    for i in 0..updates {
        let e = &all[i % all.len()];
        let old = e.rect.center();
        let step = 0.002 * ((i % 7) as f32 - 3.0);
        let new = Point::new(old.x + step, old.y + step * 0.5);
        index
            .update(e.oid, old, new)
            .map_err(|err| format!("update {}: {err}", e.oid))?;
        // Move it back so repeated runs see a stable file.
        index
            .update(e.oid, new, old)
            .map_err(|err| format!("restore {}: {err}", e.oid))?;
    }
    let io = index.io_stats().snapshot().since(&before);
    println!(
        "{} updates: {:.3} physical I/O per update ({})",
        updates * 2,
        io.physical() as f64 / (updates * 2) as f64,
        index.op_stats().snapshot()
    );
    Ok(())
}

fn cmd_recover(path: &str, rest: &[String]) -> Result<(), String> {
    let mut opts = IndexOptions::generalized();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strategy" => {
                opts = it
                    .next()
                    .and_then(|v| parse_strategy(v))
                    .ok_or("--strategy needs td|lbu|gbu")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let opts = opts.with_durability(bur::core::Durability::Wal(bur::core::WalOptions::default()));
    let (index, report) = IndexBuilder::with_options(opts)
        .file(path)
        .recover()
        .build_index_with_report()
        .map_err(|e| format!("recover: {e}"))?;
    let report = report.expect("recover mode always produces a report");
    index
        .validate()
        .map_err(|e| format!("recovered index is INVALID: {e}"))?;
    println!(
        "recovered {path}: {} objects at lsn {} (log gen {})",
        report.recovered_len, report.recovered_lsn, report.log_generation
    );
    println!(
        "replayed {} full page images + {} deltas across {} committed ops \
         ({} log records scanned{})",
        report.replayed_images,
        report.replayed_deltas,
        report.committed_ops,
        report.scanned_records,
        if report.torn_tail {
            ", torn tail discarded"
        } else {
            ""
        }
    );
    println!("checkpointed; all invariants hold");
    Ok(())
}

fn cmd_replicate(primary_path: &str, rest: &[String]) -> Result<(), String> {
    let [replica_path] = rest else {
        return Err("replicate needs <primary-file> <replica-file>".into());
    };
    let opts = IndexOptions::generalized()
        .with_durability(bur::core::Durability::Wal(bur::core::WalOptions::default()));
    let primary: Arc<dyn bur::storage::DiskBackend> = Arc::new(
        FileDisk::open(primary_path, opts.page_size)
            .map_err(|e| format!("cannot open {primary_path}: {e}"))?,
    );
    let replica: Arc<dyn bur::storage::DiskBackend> = Arc::new(
        FileDisk::create(replica_path, opts.page_size)
            .map_err(|e| format!("cannot create {replica_path}: {e}"))?,
    );
    let mut shipper = LogShipper::new(primary);
    let mut follower =
        Follower::attach(&mut shipper, replica, opts).map_err(|e| format!("attach: {e}"))?;
    follower
        .catch_up(&mut shipper)
        .map_err(|e| format!("ship: {e}"))?;
    let stats = follower.stats();
    let watermark = follower.applied_lsn();
    println!(
        "shipped {} records ({} commits, {} full images, {} deltas) across {} base copy(ies) \
         of {} pages",
        stats.records_shipped,
        stats.commits_applied,
        stats.images_applied,
        stats.deltas_applied,
        stats.resyncs,
        stats.pages_copied
    );
    // Promote the clone so the replica file is a self-describing durable
    // index (its own fresh log generation over the adopted state).
    let standby = follower.promote().map_err(|e| format!("finalize: {e}"))?;
    standby
        .validate()
        .map_err(|e| format!("INVALID replica: {e}"))?;
    println!(
        "{replica_path}: warm-standby clone of {primary_path} at watermark lsn {watermark} \
         ({} objects); re-run replicate to refresh, or `burctl promote` it to serve writes",
        standby.len()
    );
    Ok(())
}

fn cmd_promote(path: &str, rest: &[String]) -> Result<(), String> {
    let mut opts = IndexOptions::generalized();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strategy" => {
                opts = it
                    .next()
                    .and_then(|v| parse_strategy(v))
                    .ok_or("--strategy needs td|lbu|gbu")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let opts = opts.with_durability(bur::core::Durability::Wal(bur::core::WalOptions::default()));
    let (index, report) = IndexBuilder::with_options(opts)
        .file(path)
        .recover()
        .build_index_with_report()
        .map_err(|e| format!("promote: {e}"))?;
    let report = report.expect("recover mode always produces a report");
    index
        .validate()
        .map_err(|e| format!("promoted index is INVALID: {e}"))?;
    println!(
        "promoted {path}: {} objects at lsn {} (log gen {}), {} committed ops replayed{}",
        report.recovered_len,
        report.recovered_lsn,
        report.log_generation,
        report.committed_ops,
        if report.torn_tail {
            "; torn tail discarded"
        } else {
            ""
        }
    );
    println!("all invariants hold — ready to serve writes as the new primary");
    Ok(())
}

fn cmd_wal_stats(path: &str) -> Result<(), String> {
    let opts = IndexOptions::generalized();
    let disk =
        FileDisk::open(path, opts.page_size).map_err(|e| format!("cannot open {path}: {e}"))?;
    let page_size = opts.page_size as u64;
    let scan = bur::wal::scan(&disk, 1).map_err(|e| format!("scan: {e}"))?;
    if !scan.valid {
        return Err("no write-ahead log in this file (built without --durable?)".into());
    }
    let (mut images, mut deltas, mut commits, mut checkpoints) = (0u64, 0u64, 0u64, 0u64);
    let (mut delta_bytes, mut delta_saved) = (0u64, 0u64);
    for (_, rec) in &scan.records {
        match rec {
            WalRecord::PageImage { .. } => images += 1,
            WalRecord::PageDelta { ranges, .. } => {
                deltas += 1;
                // Wire size of the delta payload (pid + base_lsn + count
                // + ranges) versus the full image it replaced (pid + page
                // bytes) — the same accounting as `Wal`'s
                // `delta_saved_bytes` counter, so the two tools agree.
                let payload: u64 =
                    14 + ranges.iter().map(|r| 4 + r.bytes.len() as u64).sum::<u64>();
                delta_bytes += payload;
                delta_saved += (4 + page_size).saturating_sub(payload);
            }
            WalRecord::Commit { .. } => commits += 1,
            WalRecord::Checkpoint { .. } => checkpoints += 1,
        }
    }
    println!("file          : {path}");
    println!("generation    : {}", scan.generation);
    println!("log pages     : {}", scan.pages.len());
    println!("stream bytes  : {}", scan.stream_bytes);
    println!(
        "records       : {} ({images} full images, {deltas} deltas, {commits} commits, \
         {checkpoints} checkpoints)",
        scan.records.len()
    );
    println!("delta bytes   : {delta_bytes} on the wire, {delta_saved} saved vs full images");
    if images + deltas > 0 {
        // Observed anchor cadence: page records per full-image anchor.
        // (The configured ceiling is WalOptions::delta.anchor_every.)
        println!(
            "anchor cadence: {:.1} page records per full image ({:.0}% deltas)",
            (images + deltas) as f64 / images.max(1) as f64,
            100.0 * deltas as f64 / (images + deltas) as f64
        );
    }
    if let Some(&(first, _)) = scan.records.first() {
        let last = scan.records.last().map(|&(l, _)| l).unwrap_or(first);
        println!("lsn range     : {first}..={last}");
    }
    println!(
        "tail          : {}",
        if scan.torn_tail {
            "TORN (crash artifact; discarded on recovery)"
        } else {
            "clean"
        }
    );
    Ok(())
}

fn cmd_serve(path: &str, rest: &[String]) -> Result<(), String> {
    let mut config = bur::serve::ServerConfig::new(path);
    config.addr = "127.0.0.1:4000".to_string();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--max-conns" => {
                config.max_connections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-conns needs a number")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let handle = bur::serve::start(config).map_err(|e| e.to_string())?;
    use std::io::Write as _;
    println!("burd listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.wait();
    // Whoever spawned us may have closed the pipe already.
    let _ = writeln!(std::io::stdout(), "burd stopped");
    Ok(())
}

/// Pull the mandatory `--addr HOST:PORT` out of `rest`, returning the
/// leftover arguments.
fn parse_addr(rest: &[String]) -> Result<(String, Vec<String>), String> {
    let mut addr = None;
    let mut leftover = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--addr" {
            addr = Some(it.next().ok_or("--addr needs HOST:PORT")?.clone());
        } else {
            leftover.push(arg.clone());
        }
    }
    Ok((addr.ok_or("--addr HOST:PORT is required")?, leftover))
}

fn cmd_ping(rest: &[String]) -> Result<(), String> {
    let (addr, leftover) = parse_addr(rest)?;
    if !leftover.is_empty() {
        return Err(format!("unexpected arguments {leftover:?}"));
    }
    let started = std::time::Instant::now();
    let mut client =
        bur::client::BurClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;
    println!("pong from {addr} in {:?}", started.elapsed());
    Ok(())
}

fn cmd_remote_query(rest: &[String]) -> Result<(), String> {
    let (addr, leftover) = parse_addr(rest)?;
    let [index, coords @ ..] = leftover.as_slice() else {
        return Err("remote-query needs <index> <min_x> <min_y> <max_x> <max_y>".into());
    };
    let nums: Vec<f32> = coords
        .iter()
        .map(|s| s.parse().map_err(|_| format!("bad coordinate {s}")))
        .collect::<Result<_, _>>()?;
    let [min_x, min_y, max_x, max_y] = nums[..] else {
        return Err("remote-query needs 4 coordinates".into());
    };
    let window = Rect::new(min_x, min_y, max_x, max_y);
    if !window.is_valid() {
        return Err(format!("invalid window {window}"));
    }
    let mut client =
        bur::client::BurClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut hits: Vec<u64> = client
        .query(index, &window)
        .and_then(|stream| stream.collect_all())
        .map_err(|e| format!("query: {e}"))?;
    hits.sort_unstable();
    println!(
        "{} objects in {window} (index {index:?} at {addr}):",
        hits.len()
    );
    for chunk in hits.chunks(10) {
        println!(
            "  {}",
            chunk
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    Ok(())
}

fn cmd_chaos(rest: &[String]) -> Result<(), String> {
    let mut plan_spec = None;
    let mut positional = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--plan" {
            plan_spec = Some(it.next().ok_or("--plan needs a spec")?.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    let [listen, upstream] = positional.as_slice() else {
        return Err("chaos needs <listen> <upstream> [--plan <spec>]".into());
    };
    let plan = match plan_spec {
        Some(spec) => bur::serve::FaultPlan::parse(&spec).map_err(|e| format!("--plan: {e}"))?,
        None => bur::serve::FaultPlan::default(),
    };
    let proxy = bur::serve::ChaosProxy::start(listen, upstream.as_str(), plan)
        .map_err(|e| format!("start proxy: {e}"))?;
    use std::io::Write as _;
    println!("chaos proxy listening on {} -> {upstream}", proxy.addr());
    let _ = std::io::stdout().flush();
    // Foreground tool: runs until killed (the proxy threads do the work).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Open an existing sharded index from its manifest and shard files —
/// the offline mirror of the server registry's auto-detecting open.
/// Must not race a running server over the same files.
fn open_sharded(dir: &str, name: &str) -> Result<bur::shard::ShardedBur, String> {
    let manifest = std::path::Path::new(dir).join(format!("{name}.shardmap"));
    let m = bur::shard::load_manifest(&manifest)
        .map_err(|e| format!("cannot load {}: {e}", manifest.display()))?;
    let mut burs = Vec::with_capacity(m.shards as usize);
    for k in 0..m.shards {
        let file = std::path::Path::new(dir).join(format!("{name}.s{k}.bur"));
        burs.push(
            IndexBuilder::new()
                .file(&file)
                .open()
                .build()
                .map_err(|e| format!("cannot open {}: {e}", file.display()))?,
        );
    }
    bur::shard::ShardedBur::with_manifest(burs, bur::shard::ShardOptions::default(), manifest)
        .map_err(|e| e.to_string())
}

fn shard_create(rest: &[String]) -> Result<(), String> {
    let (addr, leftover) = parse_addr(rest)?;
    let mut name = None;
    let mut shards = None;
    let mut strategy = "gbu".to_string();
    let mut durable = false;
    let mut it = leftover.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                shards = Some(
                    it.next()
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or("--shards needs a number")?,
                );
            }
            "--strategy" => strategy = it.next().ok_or("--strategy needs td|lbu|gbu")?.clone(),
            "--durable" => durable = true,
            other if name.is_none() && !other.starts_with("--") => name = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    let name = name.ok_or("shard create needs <name>")?;
    let shards = shards.ok_or("--shards N is required")?;
    let mut client =
        bur::client::BurClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .create_sharded_index(&name, &strategy, durable, shards)
        .map_err(|e| format!("create: {e}"))?;
    println!(
        "created sharded index {name:?} at {addr}: {shards} shards, strategy {strategy}{}",
        if durable { ", durable" } else { "" }
    );
    Ok(())
}

fn shard_map(rest: &[String]) -> Result<(), String> {
    let [dir, name] = rest else {
        return Err("shard map needs <data-dir> <name>".into());
    };
    let path = std::path::Path::new(dir).join(format!("{name}.shardmap"));
    let m = bur::shard::load_manifest(&path)
        .map_err(|e| format!("cannot load {}: {e}", path.display()))?;
    let space = bur::shard::key_space_for(m.order);
    println!("manifest : {}", path.display());
    println!("order    : {} ({space} Hilbert keys)", m.order);
    println!("budget   : {} ranges per window decomposition", m.budget);
    println!("shards   : {}", m.shards);
    println!("epoch    : {}", m.epoch);
    println!("slack    : half-extent w {} h {}", m.slack.0, m.slack.1);
    println!("segments : {}", m.segments.len());
    for (i, seg) in m.segments.iter().enumerate() {
        let end = m.segments.get(i + 1).map_or(space, |next| next.start);
        println!("  [{}..{}) -> shard {}", seg.start, end, seg.shard);
    }
    match &m.migration {
        Some(mg) => println!(
            "migration: [{}..{}) shard {} -> {} ({})",
            mg.lo,
            mg.hi,
            mg.from,
            mg.to,
            if mg.flipped {
                "committed; rolls forward on open"
            } else {
                "intent; rolls back on open"
            }
        ),
        None => println!("migration: none"),
    }
    Ok(())
}

fn shard_move(rest: &[String]) -> Result<(), String> {
    let [dir, name, lo, hi, to] = rest else {
        return Err("shard move needs <data-dir> <name> <lo> <hi> <to-shard>".into());
    };
    let lo: u64 = lo.parse().map_err(|_| format!("bad lo {lo}"))?;
    let hi: u64 = hi.parse().map_err(|_| format!("bad hi {hi}"))?;
    let to: u32 = to.parse().map_err(|_| format!("bad to-shard {to}"))?;
    let sharded = open_sharded(dir, name)?;
    let report = sharded
        .migrate_range(lo, hi, to)
        .map_err(|e| format!("migrate: {e}"))?;
    sharded.persist().map_err(|e| format!("persist: {e}"))?;
    println!(
        "moved {} objects [{lo}..{hi}) shard {} -> {} (epoch {})",
        report.moved, report.from, report.to, report.epoch
    );
    Ok(())
}

fn shard_rebalance(rest: &[String]) -> Result<(), String> {
    let [dir, name] = rest else {
        return Err("shard rebalance needs <data-dir> <name>".into());
    };
    let sharded = open_sharded(dir, name)?;
    let mut steps = 0u32;
    while let Some(report) = sharded
        .rebalance_step()
        .map_err(|e| format!("rebalance: {e}"))?
    {
        steps += 1;
        println!(
            "step {steps}: moved {} objects shard {} -> {} (epoch {})",
            report.moved, report.from, report.to, report.epoch
        );
        // The heuristic converges, but cap the walk so a pathological
        // distribution cannot spin this tool forever.
        if steps >= 64 {
            break;
        }
    }
    sharded.persist().map_err(|e| format!("persist: {e}"))?;
    let stats = sharded.stats();
    println!(
        "{steps} step(s); imbalance {:.3} over {} shards ({} segments, epoch {})",
        stats.imbalance,
        stats.shards.len(),
        stats.segments,
        stats.epoch
    );
    for (k, s) in stats.shards.iter().enumerate() {
        println!("  shard {k}: {} objects, height {}", s.len, s.height);
    }
    Ok(())
}

fn cmd_shard(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("shard needs a subcommand: create | map | move | rebalance".into());
    };
    match sub.as_str() {
        "create" => shard_create(rest),
        "map" => shard_map(rest),
        "move" => shard_move(rest),
        "rebalance" => shard_rebalance(rest),
        other => Err(format!("unknown shard subcommand {other}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    if matches!(cmd, "--help" | "-h" | "help") {
        usage();
        return ExitCode::SUCCESS;
    }
    // The networked commands and the shard family don't follow the
    // `<cmd> <path>` shape — handle them before the split.
    if matches!(cmd, "ping" | "remote-query" | "chaos" | "shard") {
        let result = match cmd {
            "ping" => cmd_ping(rest),
            "chaos" => cmd_chaos(rest),
            "shard" => cmd_shard(rest),
            _ => cmd_remote_query(rest),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("burctl {cmd}: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let Some((path, rest)) = rest.split_first() else {
        return usage();
    };
    let result = match cmd {
        "build" => cmd_build(path, rest),
        "info" => cmd_info(path),
        "validate" => cmd_validate(path),
        "query" => cmd_query(path, rest),
        "knn" => cmd_knn(path, rest),
        "batch" => cmd_batch(path, rest),
        "stats" => cmd_stats(path, rest),
        "recover" => cmd_recover(path, rest),
        "replicate" => cmd_replicate(path, rest),
        "promote" => cmd_promote(path, rest),
        "wal-stats" => cmd_wal_stats(path),
        "serve" => cmd_serve(path, rest),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("burctl {cmd}: {msg}");
            ExitCode::FAILURE
        }
    }
}
