//! `burd` — the bur network server daemon.
//!
//! ```text
//! burd <data-dir> [--addr HOST:PORT] [--max-conns N] [--queue-limit N] [--shards N]
//! ```
//!
//! Binds, prints `burd listening on <addr>` (machine-parseable — with
//! `--addr 127.0.0.1:0` the OS picks the port and this line is the only
//! way to learn it), then serves until a client sends the `shutdown`
//! opcode. Shutdown is graceful: pending writes drain through the
//! coalescers, every index flushes its log and checkpoints.

use bur::serve::{start, ServerConfig};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: burd <data-dir> [--addr HOST:PORT] [--max-conns N] [--queue-limit N] [--shards N]\n\
         \n\
         Serve the named indexes under <data-dir> over the bur wire\n\
         protocol. Defaults: --addr 127.0.0.1:4000, --max-conns 64,\n\
         --queue-limit 16384 (write ops queued per index before new\n\
         batches are shed with `overloaded`; at half the limit the\n\
         server degrades and sheds queries first).\n\
         With --shards N > 1 every `create` request builds the index\n\
         as N Hilbert-range shards behind its one logical name: writes\n\
         route by key, queries scatter-gather across the shards.\n\
         Use --addr with port 0 to let the OS pick; the bound address\n\
         is printed as `burd listening on <addr>`."
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let data_dir = match args.next() {
        Some(dir) if dir != "--help" && dir != "-h" => dir,
        _ => usage(),
    };
    let mut config = ServerConfig::new(data_dir);
    config.addr = "127.0.0.1:4000".to_string();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => usage(),
            },
            "--max-conns" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.max_connections = n,
                None => usage(),
            },
            "--queue-limit" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => config.max_queued_ops = n,
                None => usage(),
            },
            "--shards" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => config.default_shards = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("burd: {e}");
            std::process::exit(1);
        }
    };
    println!("burd listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.wait();
    // Whoever spawned us may have closed the pipe already.
    let _ = writeln!(std::io::stdout(), "burd stopped");
}
