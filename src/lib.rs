//! # bur — Bottom-Up update R-trees
//!
//! A production-quality Rust reproduction of *"Supporting Frequent
//! Updates in R-Trees: A Bottom-Up Approach"* (Lee, Hsu, Jensen, Cui,
//! Teo — VLDB 2003): a disk-resident R-tree whose updates can be served
//! *bottom-up* — in place, by bounded MBR extension, by shifting to a
//! sibling leaf, or by re-inserting from the lowest bounding ancestor —
//! instead of the classic top-down delete + insert.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`bur-core`) — the index: [`core::IndexBuilder`], the
//!   clonable [`core::Bur`] handle, mixed-op [`core::Batch`] writes,
//!   streaming [`core::QueryCursor`] results, update strategies
//!   (TD / LBU / GBU), the main-memory summary structure, the cost
//!   model, and the single-threaded [`core::RTreeIndex`] engine;
//! * [`geom`] (`bur-geom`) — points and rectangles;
//! * [`storage`] (`bur-storage`) — page store, disks, LRU buffer pool,
//!   I/O accounting;
//! * [`hashindex`] (`bur-hashindex`) — the paged linear-hash secondary
//!   index (object id → leaf page);
//! * [`wal`] (`bur-wal`) — write-ahead logging, fuzzy checkpoints and
//!   crash recovery for durable indexes;
//! * [`dgl`] (`bur-dgl`) — Dynamic Granular Locking;
//! * [`repl`] (`bur-repl`) — warm-standby replication: WAL shipping
//!   ([`repl::LogShipper`]), follower replay ([`repl::Follower`]) and
//!   failover promotion;
//! * [`shard`] (`bur-shard`) — Hilbert-range sharding: the
//!   [`shard::ShardedBur`] facade routes writes by Hilbert key across N
//!   shard indexes, scatter-gathers window and kNN queries, and
//!   migrates key ranges between shards under an epoch protocol;
//! * [`workload`] (`bur-workload`) — the GSTD-like moving-object
//!   workload generator;
//! * [`serve`] (`bur-serve`) — the `burd` network server: the wire
//!   protocol, the multi-tenant [`serve::IndexRegistry`], and the
//!   write [`serve::Coalescer`] that merges concurrent client batches
//!   into shared WAL group commits;
//! * [`client`] (`bur-client`) — the blocking [`client::BurClient`]
//!   with batch-first writes, durable [`client::RemoteAck`]s and
//!   streaming query iterators.
//!
//! ## Quickstart
//!
//! One handle, batch-first: [`core::IndexBuilder`] builds a clonable
//! [`core::Bur`] handle (share it across threads by cloning); writes go
//! through mixed-op [`core::Batch`]es and queries stream through
//! cursors. Update batches on disjoint leaves execute in parallel —
//! per-leaf DGL granules plus per-page buffer-pool latches; the
//! normative protocol (latch order, pin-vs-latch rules, deadlock
//! avoidance) is `docs/ARCHITECTURE.md` in the repository, and
//! `examples/parallel_writers.rs` demonstrates the clone-per-writer
//! pattern.
//!
//! ```
//! use bur::prelude::*;
//!
//! // A GBU (generalized bottom-up) index on an in-memory disk.
//! let bur = IndexBuilder::generalized().build().unwrap();
//!
//! // Batch-first writes: one lock acquisition, and on a durable index
//! // one WAL group commit record, for the whole batch.
//! let mut batch = Batch::new();
//! batch
//!     .insert(1, Point::new(0.2, 0.2))
//!     .insert(2, Point::new(0.8, 0.8))
//!     // Objects move; updates are served bottom-up whenever possible.
//!     .update(1, Point::new(0.2, 0.2), Point::new(0.21, 0.2));
//! let ticket = bur.apply(&batch).unwrap();
//! assert_eq!(ticket.report().applied, 3);
//!
//! // Window queries stream through a cursor whose buffer is recycled
//! // across calls (no per-query Vec allocation in steady state).
//! let hits: Vec<u64> = bur.query(&Rect::new(0.0, 0.0, 0.5, 0.5)).unwrap().collect();
//! assert_eq!(hits, vec![1]);
//!
//! // Single-op writes work too, and the handle clones freely.
//! let writer = bur.clone();
//! writer.insert(3, Point::new(0.5, 0.5)).unwrap();
//! assert_eq!(bur.len(), 3);
//! ```
//!
//! ## Durability
//!
//! By default an index is durable only after an explicit
//! [`core::Bur::persist`] (the paper's experimental setup). With
//! [`core::IndexBuilder::durable`] every acknowledged update is
//! write-ahead logged, the pool checkpoints on a cadence, and a crash —
//! even one that tears a page write in half — recovers through the
//! builder's [`core::IndexBuilder::recover`] mode. A [`core::Batch`] is
//! atomic with respect to the log: one group commit record covers the
//! whole batch, and the returned [`core::CommitTicket`] is the hard
//! durability ack (it matters under [`storage::SyncPolicy::Async`],
//! where commits return before the background sync).
//!
//! ```
//! use bur::prelude::*;
//! use std::sync::Arc;
//!
//! let disk = Arc::new(MemDisk::new(1024));
//! let bur = IndexBuilder::generalized()
//!     .durable()
//!     .disk(disk.clone())
//!     .build()
//!     .unwrap();
//! let mut batch = Batch::new();
//! batch.insert(1, Point::new(0.4, 0.4)).insert(2, Point::new(0.6, 0.6));
//! bur.apply(&batch).unwrap().wait().unwrap(); // logged + synced
//! drop(bur); // crash: no persist(), no clean shutdown
//!
//! let (recovered, report) = IndexBuilder::generalized()
//!     .disk(disk)
//!     .recover()
//!     .build_with_report()
//!     .unwrap();
//! assert_eq!(recovered.len(), 2);
//! assert!(report.unwrap().committed_ops >= 1);
//! ```

#![warn(missing_docs)]

pub use bur_client as client;
pub use bur_core as core;
pub use bur_dgl as dgl;
pub use bur_geom as geom;
pub use bur_hashindex as hashindex;
pub use bur_repl as repl;
pub use bur_serve as serve;
pub use bur_shard as shard;
pub use bur_storage as storage;
pub use bur_wal as wal;
pub use bur_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use bur_core::{
        Batch, BatchReport, Bur, CommitTicket, CoreError, CoreResult, DeltaPolicy, Durability,
        GbuParams, IndexBuilder, IndexOptions, InsertPolicy, LbuParams, Neighbor, NeighborCursor,
        ObjectId, Op, OpenMode, QueryCursor, RTreeIndex, RecoveryReport, SplitPolicy,
        UpdateOutcome, UpdateStrategy, WalOptions,
    };
    pub use bur_geom::{Point, Rect};
    pub use bur_repl::{Follower, LogShipper, ReplError, ReplResult};
    pub use bur_storage::{FileDisk, IoSnapshot, MemDisk, SyncPolicy};
    pub use bur_workload::{DataDistribution, MovementModel, Workload, WorkloadConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let bur = IndexBuilder::top_down().build().unwrap();
        bur.insert(1, Point::new(0.5, 0.5)).unwrap();
        assert_eq!(bur.len(), 1);
        let mut index = IndexBuilder::top_down().build_index().unwrap();
        index.insert(1, Point::new(0.5, 0.5)).unwrap();
        assert_eq!(index.len(), 1);
    }
}
