//! # bur — Bottom-Up update R-trees
//!
//! A production-quality Rust reproduction of *"Supporting Frequent
//! Updates in R-Trees: A Bottom-Up Approach"* (Lee, Hsu, Jensen, Cui,
//! Teo — VLDB 2003): a disk-resident R-tree whose updates can be served
//! *bottom-up* — in place, by bounded MBR extension, by shifting to a
//! sibling leaf, or by re-inserting from the lowest bounding ancestor —
//! instead of the classic top-down delete + insert.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`bur-core`) — the index: [`core::RTreeIndex`],
//!   update strategies (TD / LBU / GBU), the main-memory summary
//!   structure, cost model and the DGL-locked [`core::ConcurrentIndex`];
//! * [`geom`] (`bur-geom`) — points and rectangles;
//! * [`storage`] (`bur-storage`) — page store, disks, LRU buffer pool,
//!   I/O accounting;
//! * [`hashindex`] (`bur-hashindex`) — the paged linear-hash secondary
//!   index (object id → leaf page);
//! * [`wal`] (`bur-wal`) — write-ahead logging, fuzzy checkpoints and
//!   crash recovery for durable indexes;
//! * [`dgl`] (`bur-dgl`) — Dynamic Granular Locking;
//! * [`workload`] (`bur-workload`) — the GSTD-like moving-object
//!   workload generator.
//!
//! ## Quickstart
//!
//! ```
//! use bur::prelude::*;
//!
//! // A GBU (generalized bottom-up) index on an in-memory disk.
//! let mut index = RTreeIndex::create_in_memory(IndexOptions::generalized()).unwrap();
//! index.insert(1, Point::new(0.2, 0.2)).unwrap();
//! index.insert(2, Point::new(0.8, 0.8)).unwrap();
//!
//! // Objects move; updates are served bottom-up whenever possible.
//! let outcome = index.update(1, Point::new(0.2, 0.2), Point::new(0.21, 0.2)).unwrap();
//! assert_eq!(outcome, UpdateOutcome::InPlace);
//!
//! // Window queries.
//! let hits = index.query(&Rect::new(0.0, 0.0, 0.5, 0.5)).unwrap();
//! assert_eq!(hits, vec![1]);
//! ```
//!
//! ## Durability
//!
//! By default an index is durable only after an explicit
//! [`core::RTreeIndex::persist`] (the paper's experimental setup). With
//! [`core::IndexOptions::durable`] every acknowledged update is
//! write-ahead logged before it is acknowledged, the pool checkpoints on
//! a cadence, and a crash — even one that tears a page write in half —
//! recovers with [`core::RTreeIndex::recover`]:
//!
//! ```
//! use bur::prelude::*;
//! use bur::storage::MemDisk;
//! use std::sync::Arc;
//!
//! let disk = Arc::new(MemDisk::new(1024));
//! let mut index = RTreeIndex::create_on(disk.clone(), IndexOptions::durable()).unwrap();
//! index.insert(1, Point::new(0.4, 0.4)).unwrap(); // logged + synced
//! drop(index); // crash: no persist(), no clean shutdown
//!
//! let (recovered, report) = RTreeIndex::recover_on(disk, IndexOptions::durable()).unwrap();
//! assert_eq!(recovered.len(), 1);
//! assert_eq!(report.committed_ops, 1);
//! ```

#![warn(missing_docs)]

pub use bur_core as core;
pub use bur_dgl as dgl;
pub use bur_geom as geom;
pub use bur_hashindex as hashindex;
pub use bur_storage as storage;
pub use bur_wal as wal;
pub use bur_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use bur_core::{
        ConcurrentIndex, CoreError, CoreResult, DeltaPolicy, Durability, GbuParams, IndexOptions,
        InsertPolicy, LbuParams, Neighbor, ObjectId, RTreeIndex, RecoveryReport, SplitPolicy,
        UpdateOutcome, UpdateStrategy, WalOptions,
    };
    pub use bur_geom::{Point, Rect};
    pub use bur_storage::{FileDisk, IoSnapshot, MemDisk, SyncPolicy};
    pub use bur_workload::{DataDistribution, MovementModel, Workload, WorkloadConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let mut index = RTreeIndex::create_in_memory(IndexOptions::top_down()).unwrap();
        index.insert(1, Point::new(0.5, 0.5)).unwrap();
        assert_eq!(index.len(), 1);
    }
}
