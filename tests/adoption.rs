//! The "downstream user" walk: every public API a typical adopter of the
//! library touches, exercised the way the README and examples present it.
//! These are breadth tests — each one covers a workflow, not a corner.

mod common;

use bur::prelude::*;
use common::TempDir;
use std::sync::Arc;

#[test]
fn readme_quickstart_workflow() {
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    index.insert(1, Point::new(0.2, 0.2)).unwrap();
    index.insert(2, Point::new(0.8, 0.8)).unwrap();
    let outcome = index
        .update(1, Point::new(0.2, 0.2), Point::new(0.21, 0.2))
        .unwrap();
    assert_eq!(outcome, UpdateOutcome::InPlace);
    let hits = index.query(&Rect::new(0.0, 0.0, 0.5, 0.5)).unwrap();
    assert_eq!(hits, vec![1]);
    assert_eq!(index.len(), 2);
    assert!(!index.is_empty());
    assert_eq!(index.height(), 1);
}

#[test]
fn spatial_query_toolkit() {
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    for i in 0..100u64 {
        let x = (i % 10) as f32 / 10.0 + 0.05;
        let y = (i / 10) as f32 / 10.0 + 0.05;
        index.insert(i, Point::new(x, y)).unwrap();
    }

    // Window query and its buffer-reusing variant.
    let w = Rect::new(0.0, 0.0, 0.31, 0.31);
    let mut buf = Vec::new();
    index.query_into(&w, &mut buf).unwrap();
    assert_eq!(buf.len(), index.query(&w).unwrap().len());
    assert_eq!(buf.len(), 9); // 3×3 grid corner

    // Entries carry the stored rects.
    let entries = index.query_entries(&w).unwrap();
    assert_eq!(entries.len(), 9);
    assert!(entries.iter().all(|e| w.intersects(&e.rect)));

    // Point and count queries.
    assert_eq!(index.point_query(Point::new(0.05, 0.05)).unwrap(), vec![0]);
    assert_eq!(index.count_in(&w).unwrap(), 9);

    // Nearest neighbors: the grid point itself, then its 4-neighborhood.
    let nn = index
        .nearest_neighbor(Point::new(0.05, 0.05))
        .unwrap()
        .unwrap();
    assert_eq!(nn.oid, 0);
    assert!(nn.distance < 1e-6);
    let n5 = index.nearest_neighbors(Point::new(0.05, 0.05), 5).unwrap();
    assert_eq!(n5.len(), 5);
    let ids: Vec<u64> = n5.iter().map(|n| n.oid).collect();
    assert!(ids.contains(&1) && ids.contains(&10));

    // Distance range query: center plus the 4-neighborhood at 0.1.
    let near = index.within_distance(Point::new(0.55, 0.55), 0.11).unwrap();
    assert_eq!(near.len(), 5);
    assert_eq!(near[0].distance, 0.0);
}

#[test]
fn durable_index_lifecycle() {
    let dir = TempDir::new("adopt");
    let path = dir.file("lifecycle.bur");
    let opts = IndexOptions::generalized();
    {
        let disk = Arc::new(FileDisk::create(&path, opts.page_size).unwrap());
        let mut index = IndexBuilder::with_options(opts)
            .disk(disk)
            .build_index()
            .unwrap();
        for i in 0..500u64 {
            index
                .insert(
                    i,
                    Point::new((i % 25) as f32 / 25.0, (i / 25) as f32 / 25.0),
                )
                .unwrap();
        }
        index.persist().unwrap();
    }
    {
        let disk = Arc::new(FileDisk::open(&path, opts.page_size).unwrap());
        let index = IndexBuilder::with_options(opts)
            .disk(disk)
            .open()
            .build_index()
            .unwrap();
        assert_eq!(index.len(), 500);
        index.validate().unwrap();
        assert_eq!(
            index.count_in(&Rect::new(-1.0, -1.0, 2.0, 2.0)).unwrap(),
            500
        );
        // The kNN extension works on a reopened index (summary rebuilt).
        let nn = index.nearest_neighbors(Point::new(0.5, 0.5), 3).unwrap();
        assert_eq!(nn.len(), 3);
    }
}

#[test]
fn rstar_variant_is_a_drop_in() {
    // Switching to the R* variant is one builder call; everything else —
    // updates, queries, kNN, validation — is unchanged.
    let mut index = IndexBuilder::with_options(IndexOptions::generalized().rstar())
        .build_index()
        .unwrap();
    assert_eq!(index.options().insert, InsertPolicy::RStar);
    assert_eq!(index.options().split, SplitPolicy::RStar);
    let mut workload = Workload::generate(WorkloadConfig {
        num_objects: 3000,
        seed: 99,
        max_distance: 0.02,
        ..WorkloadConfig::default()
    });
    for (oid, p) in workload.items() {
        index.insert(oid, p).unwrap();
    }
    for _ in 0..3000 {
        let op = workload.next_update();
        index.update(op.oid, op.old, op.new).unwrap();
    }
    index.validate().unwrap();
    let q = workload.next_query();
    let hits = index.query(&q.window).unwrap();
    let expect = workload
        .positions()
        .iter()
        .filter(|p| q.window.contains_point(p))
        .count();
    assert_eq!(hits.len(), expect);
}

#[test]
fn trending_fleet_prefers_bottom_up_paths() {
    // Vehicles drifting along persistent headings: GBU keeps absorbing
    // the updates bottom-up (extension / shift / ascent) instead of
    // falling back to top-down, as long as they stay in the root MBR.
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    let mut workload = Workload::generate(WorkloadConfig {
        num_objects: 5000,
        max_distance: 0.004,
        movement: MovementModel::Trend { jitter: 0.3 },
        seed: 1234,
        ..WorkloadConfig::default()
    });
    for (oid, p) in workload.items() {
        index.insert(oid, p).unwrap();
    }
    index.op_stats().reset();
    for _ in 0..20_000 {
        let op = workload.next_update();
        index.update(op.oid, op.old, op.new).unwrap();
    }
    index.validate().unwrap();
    let snap = index.op_stats().snapshot();
    let bottom_up = snap.upd_in_place + snap.upd_extended + snap.upd_shifted + snap.upd_ascended;
    assert!(
        bottom_up as f64 / snap.updates as f64 > 0.9,
        "trend workload should stay >90% bottom-up: {snap}"
    );
    // Trend movement keeps crossing leaf boundaries, so some updates must
    // have used the non-trivial repairs (not everything in place).
    assert!(
        snap.upd_extended + snap.upd_shifted + snap.upd_ascended > 0,
        "drift must trigger structural repairs: {snap}"
    );
}

#[test]
fn shared_handle_round_trip() {
    let index = IndexBuilder::generalized().build().unwrap();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            // Clones share the same index.
            let index = index.clone();
            s.spawn(move || {
                for i in 0..500u64 {
                    let oid = t * 500 + i;
                    let p = Point::new((oid % 50) as f32 / 50.0, (oid / 50 % 50) as f32 / 50.0);
                    index.insert(oid, p).unwrap();
                }
            });
        }
    });
    assert_eq!(index.len(), 2000);
    let hits = index.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap();
    assert_eq!(hits.len(), 2000);
}

#[test]
fn error_paths_are_informative() {
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    index.insert(7, Point::new(0.5, 0.5)).unwrap();

    // Duplicate insert (detectable through the hash index).
    let err = index.insert(7, Point::new(0.1, 0.1)).unwrap_err();
    assert!(err.to_string().contains('7'), "got: {err}");

    // Updating an unknown object.
    let err = index
        .update(99, Point::new(0.5, 0.5), Point::new(0.6, 0.6))
        .unwrap_err();
    assert!(err.to_string().contains("99"), "got: {err}");

    // Deleting a missing object reports false, not an error.
    assert!(!index.delete(42, Point::new(0.5, 0.5)).unwrap());

    // Invalid geometry is rejected up front.
    assert!(index.insert_rect(8, Rect::new(0.5, 0.5, 0.4, 0.6)).is_err());
    assert!(index
        .nearest_neighbors(Point::new(f32::NAN, 0.0), 1)
        .is_err());
    assert!(index.within_distance(Point::new(0.5, 0.5), -1.0).is_err());

    // Bad configuration fails at construction.
    let bad = IndexOptions {
        min_fill: 0.9,
        ..IndexOptions::default()
    };
    assert!(IndexBuilder::with_options(bad).build_index().is_err());
}
