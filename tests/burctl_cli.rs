//! End-to-end tests of the `burctl` binary: build a real index file,
//! then drive every subcommand through the CLI surface exactly as a user
//! would.

mod common;

use common::TempDir;
use std::process::{Command, Output};

fn burctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_burctl"))
        .args(args)
        .output()
        .expect("burctl spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_cli_workflow() {
    let dir = TempDir::new("ctl");
    let file = dir.file("workflow.bur");
    let path = file.to_str().unwrap();

    // build
    let out = burctl(&["build", path, "--objects", "2000", "--strategy", "gbu"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("2000 objects"));

    // info
    let out = burctl(&["info", path]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("objects       : 2000"), "{text}");
    assert!(text.contains("summary"), "{text}");

    // validate
    let out = burctl(&["validate", path]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("all invariants hold"));

    // query
    let out = burctl(&["query", path, "0.0", "0.0", "1.0", "1.0"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("2000 objects in"));

    // knn
    let out = burctl(&["knn", path, "0.5", "0.5", "3"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("3 nearest neighbors"), "{text}");
    assert_eq!(text.matches("oid").count(), 3, "{text}");

    // stats (round-trip updates leave the file unchanged)
    let out = burctl(&["stats", path, "--updates", "50"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("I/O per update"));
    let out = burctl(&["validate", path]);
    assert!(out.status.success());
}

#[test]
fn build_with_td_strategy() {
    let dir = TempDir::new("ctl");
    let file = dir.file("td.bur");
    let path = file.to_str().unwrap();
    let out = burctl(&["build", path, "--objects", "500", "--strategy", "td"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("strategy TD"));
    // A TD-built file opens fine under the GBU-opening commands (the
    // summary and hash index are rebuilt on open).
    let out = burctl(&["validate", path]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn durable_build_recover_and_wal_stats() {
    let dir = TempDir::new("ctl");
    let file = dir.file("durable.bur");
    let path = file.to_str().unwrap();

    // build --durable
    let out = burctl(&["build", path, "--objects", "400", "--durable"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("400 objects"));

    // wal-stats: a clean log with exactly the shutdown checkpoint.
    let out = burctl(&["wal-stats", path]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("checkpoints)"), "{text}");
    assert!(text.contains("tail          : clean"), "{text}");

    // recover: a no-op replay that still validates and checkpoints.
    let out = burctl(&["recover", path]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("recovered"), "{text}");
    assert!(text.contains("400 objects"), "{text}");
    assert!(text.contains("all invariants hold"), "{text}");

    // The recovered file still answers queries through the normal path.
    let out = burctl(&["query", path, "0.0", "0.0", "1.0", "1.0"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("400 objects in"));

    // wal-stats on a non-durable file fails with a helpful message.
    let plain = dir.file("plain.bur");
    let plain_path = plain.to_str().unwrap();
    assert!(burctl(&["build", plain_path, "--objects", "100"])
        .status
        .success());
    let out = burctl(&["wal-stats", plain_path]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no write-ahead log"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = burctl(&["recover", plain_path]);
    assert!(!out.status.success());
}

#[test]
fn batch_subcommand_applies_mixed_ops() {
    let dir = TempDir::new("ctl");
    let file = dir.file("batch.bur");
    let path = file.to_str().unwrap();

    // A durable file, so the one-group-commit-record claim is checkable.
    let out = burctl(&["build", path, "--objects", "300", "--durable"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Mixed ops: two inserts (fresh ids), one update between them, one
    // delete of a fresh insert, one miss; comments and blanks skipped.
    let ops = dir.file("ops.csv");
    std::fs::write(
        &ops,
        "# crash-drill batch\n\
         insert,9001,0.15,0.15\n\
         \n\
         i,9002,0.85,0.85\n\
         u,9001,0.15,0.15,0.25,0.25\n\
         delete,9002,0.85,0.85\n\
         d,9003,0.5,0.5\n",
    )
    .unwrap();
    let out = burctl(&["batch", path, ops.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("applied 5 operations atomically"), "{text}");
    assert!(
        text.contains("2 inserted, 1 updated, 1 deleted (1 deletes missed)"),
        "{text}"
    );
    assert!(
        text.contains("1 group commit record(s) cover the batch"),
        "{text}"
    );
    assert!(text.contains("301 objects"), "{text}");

    // The moved object answers at its new position.
    let out = burctl(&["query", path, "0.24", "0.24", "0.26", "0.26"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("9001"), "{}", stdout(&out));

    // Parse errors are positional and fatal.
    let bad = dir.file("bad.csv");
    std::fs::write(&bad, "insert,1,0.5\n").unwrap();
    let out = burctl(&["batch", path, bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 1"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn replicate_and_promote_subcommands() {
    let dir = TempDir::new("ctl");
    let primary = dir.file("primary.bur");
    let replica = dir.file("replica.bur");
    let (ppath, rpath) = (primary.to_str().unwrap(), replica.to_str().unwrap());

    // Replication requires a durable primary.
    let out = burctl(&["build", ppath, "--objects", "500", "--durable"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Ship the log into a warm-standby clone file.
    let out = burctl(&["replicate", ppath, rpath]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("shipped"), "{text}");
    assert!(text.contains("warm-standby clone"), "{text}");
    assert!(text.contains("500 objects"), "{text}");

    // The clone answers queries exactly like the primary.
    let window = ["query", rpath, "0.0", "0.0", "0.5", "0.5"];
    let a = stdout(&burctl(&window));
    let mut pwindow = window;
    pwindow[1] = ppath;
    let b = stdout(&burctl(&pwindow));
    assert_eq!(
        a.lines().skip(1).collect::<Vec<_>>(),
        b.lines().skip(1).collect::<Vec<_>>(),
        "replica answers must equal the primary's"
    );

    // Fail over: promote the standby to a verified primary.
    let out = burctl(&["promote", rpath]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("promoted"), "{text}");
    assert!(text.contains("ready to serve writes"), "{text}");
    assert!(stdout(&burctl(&["validate", rpath])).contains("all invariants hold"));

    // Replicating a non-durable file fails cleanly.
    let cold = dir.file("cold.bur");
    let cpath = cold.to_str().unwrap();
    assert!(burctl(&["build", cpath, "--objects", "50"])
        .status
        .success());
    let out = burctl(&["replicate", cpath, dir.file("x.bur").to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("write-ahead log"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn helpful_errors() {
    // No args → usage on stderr, failure exit.
    let out = burctl(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown subcommand.
    let out = burctl(&["frobnicate", "/tmp/x"]);
    assert!(!out.status.success());

    // Missing file.
    let out = burctl(&["info", "/nonexistent/nope.bur"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));

    // Bad window.
    let dir = TempDir::new("ctl");
    let file = dir.file("err.bur");
    let path = file.to_str().unwrap();
    assert!(burctl(&["build", path, "--objects", "100"])
        .status
        .success());
    let out = burctl(&["query", path, "0.9", "0.0", "0.1", "1.0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid window"));
    // Bad flag value.
    let out = burctl(&["build", path, "--strategy", "quantum"]);
    assert!(!out.status.success());
}

#[test]
fn serve_ping_and_remote_query() {
    use bur::client::BurClient;
    use bur::core::Batch;
    use bur::geom::Point;
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let dir = TempDir::new("ctl-serve");
    let data = dir.file("data");

    // `burctl serve` with port 0: the banner is the only way to learn
    // the bound address.
    let mut server = Command::new(env!("CARGO_BIN_EXE_burctl"))
        .args(["serve", data.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("burctl serve spawns");
    let mut banner = String::new();
    BufReader::new(server.stdout.take().expect("piped stdout"))
        .read_line(&mut banner)
        .expect("banner");
    let addr = banner
        .trim()
        .strip_prefix("burd listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    // ping
    let out = burctl(&["ping", "--addr", &addr]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("pong from"), "{}", stdout(&out));

    // Populate an index over the wire, then remote-query it.
    let mut client = BurClient::connect(&addr).expect("client connects");
    client.create_index("fleet", "gbu", true).expect("create");
    let mut batch = Batch::new();
    for oid in 0..40u64 {
        batch.insert(oid, Point::new(oid as f32 / 40.0, 0.5));
    }
    client.apply("fleet", &batch).expect("apply");

    let out = burctl(&[
        "remote-query",
        "--addr",
        &addr,
        "fleet",
        "0.0",
        "0.0",
        "0.5",
        "1.0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("21 objects in"), "{text}");

    // remote-query against a missing index fails with the server's
    // diagnosis on stderr.
    let out = burctl(&["remote-query", "--addr", &addr, "nope", "0", "0", "1", "1"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not found"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Graceful stop; the serve process exits on its own.
    client.shutdown_server().expect("shutdown");
    let status = server.wait().expect("burctl serve exits");
    assert!(status.success());
}

#[test]
fn networked_commands_report_usage_errors() {
    // --addr is mandatory for the networked commands.
    let out = burctl(&["ping"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--addr"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // A dead address fails after retries, not with a hang or a panic.
    let out = burctl(&[
        "remote-query",
        "--addr",
        "127.0.0.1:1",
        "x",
        "0",
        "0",
        "1",
        "1",
    ]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("connect"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The help text documents the serving trio and the chaos proxy.
    let out = burctl(&["--help"]);
    let help = String::from_utf8_lossy(&out.stderr).into_owned();
    for needle in [
        "serve <data-dir>",
        "ping --addr",
        "remote-query --addr",
        "chaos <listen> <upstream>",
        "--plan",
        "seed=42",
    ] {
        assert!(help.contains(needle), "help is missing {needle:?}");
    }

    // chaos argument errors: missing operands and a bad plan spec.
    let out = burctl(&["chaos", "127.0.0.1:0"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("<listen> <upstream>"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = burctl(&["chaos", "127.0.0.1:0", "127.0.0.1:1", "--plan", "drop=2.0"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--plan"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Spawn `burctl chaos` in front of a real in-process server and drive
/// traffic through it: a pass-through plan forwards pings verbatim, a
/// drop-everything plan kills every attempt.
#[test]
fn chaos_subcommand_proxies_and_injects() {
    use bur::client::{BurClient, ClientConfig, RetryPolicy};
    use bur::serve::{start, ServerConfig};
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;
    use std::time::Duration;

    let dir = TempDir::new("ctl-chaos");
    let handle = start(ServerConfig::new(dir.file("data"))).expect("server starts");
    let upstream = handle.addr().to_string();

    let spawn_proxy = |plan: &str| {
        let mut proxy = Command::new(env!("CARGO_BIN_EXE_burctl"))
            .args(["chaos", "127.0.0.1:0", &upstream, "--plan", plan])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("burctl chaos spawns");
        let mut banner = String::new();
        BufReader::new(proxy.stdout.take().expect("piped stdout"))
            .read_line(&mut banner)
            .expect("banner");
        let addr = banner
            .trim()
            .strip_prefix("chaos proxy listening on ")
            .and_then(|rest| rest.split(" -> ").next())
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        (proxy, addr)
    };
    let config = ClientConfig {
        connect_attempts: 3,
        max_connect_elapsed: Duration::from_secs(2),
        op_timeout: Some(Duration::from_millis(500)),
        retry: RetryPolicy::none(),
        ..Default::default()
    };

    // Pass-through plan: pings round-trip through the proxy.
    let (mut proxy, addr) = spawn_proxy("seed=1");
    let mut c = BurClient::connect_with(&addr, &config).expect("connect via proxy");
    c.ping().expect("ping through pass-through proxy");
    proxy.kill().expect("kill proxy");
    proxy.wait().expect("reap proxy");

    // Drop-everything plan: the first frame kills the connection.
    let (mut proxy, addr) = spawn_proxy("seed=1,drop=1.0");
    let mut c = BurClient::connect_with(&addr, &config).expect("connect via proxy");
    assert!(c.ping().is_err(), "drop=1.0 must fail every request");
    proxy.kill().expect("kill proxy");
    proxy.wait().expect("reap proxy");

    handle.shutdown();
}
