//! End-to-end tests of the `burctl` binary: build a real index file,
//! then drive every subcommand through the CLI surface exactly as a user
//! would.

use std::path::PathBuf;
use std::process::{Command, Output};

fn burctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_burctl"))
        .args(args)
        .output()
        .expect("burctl spawns")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bur-ctl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_cli_workflow() {
    let file = tmp("workflow.bur");
    let path = file.to_str().unwrap();

    // build
    let out = burctl(&["build", path, "--objects", "2000", "--strategy", "gbu"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("2000 objects"));

    // info
    let out = burctl(&["info", path]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("objects       : 2000"), "{text}");
    assert!(text.contains("summary"), "{text}");

    // validate
    let out = burctl(&["validate", path]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("all invariants hold"));

    // query
    let out = burctl(&["query", path, "0.0", "0.0", "1.0", "1.0"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("2000 objects in"));

    // knn
    let out = burctl(&["knn", path, "0.5", "0.5", "3"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("3 nearest neighbors"), "{text}");
    assert_eq!(text.matches("oid").count(), 3, "{text}");

    // stats (round-trip updates leave the file unchanged)
    let out = burctl(&["stats", path, "--updates", "50"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("I/O per update"));
    let out = burctl(&["validate", path]);
    assert!(out.status.success());

    std::fs::remove_file(&file).ok();
}

#[test]
fn build_with_td_strategy() {
    let file = tmp("td.bur");
    let path = file.to_str().unwrap();
    let out = burctl(&["build", path, "--objects", "500", "--strategy", "td"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("strategy TD"));
    // A TD-built file opens fine under the GBU-opening commands (the
    // summary and hash index are rebuilt on open).
    let out = burctl(&["validate", path]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&file).ok();
}

#[test]
fn helpful_errors() {
    // No args → usage on stderr, failure exit.
    let out = burctl(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown subcommand.
    let out = burctl(&["frobnicate", "/tmp/x"]);
    assert!(!out.status.success());

    // Missing file.
    let out = burctl(&["info", "/nonexistent/nope.bur"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));

    // Bad window.
    let file = tmp("err.bur");
    let path = file.to_str().unwrap();
    assert!(burctl(&["build", path, "--objects", "100"])
        .status
        .success());
    let out = burctl(&["query", path, "0.9", "0.0", "0.1", "1.0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid window"));
    // Bad flag value.
    let out = burctl(&["build", path, "--strategy", "quantum"]);
    assert!(!out.status.success());
    std::fs::remove_file(&file).ok();
}
