//! Fault-tolerant serving drills: real `burd` servers behind the
//! frame-aware [`ChaosProxy`], real `bur-client` connections retrying
//! through injected drops, truncations, delays and black holes.
//!
//! The contracts under test:
//! - **Zero acked-write loss, zero double-applies.** Every apply the
//!   client got an ack for is present exactly once (unique-oid inserts
//!   against a single-handle length oracle), across hundreds of
//!   randomized fault plans.
//! - **Exactly-once retries.** A retried apply whose original ack was
//!   eaten by the network returns the *original* ack from the server's
//!   dedup table — observable as `dedup_hits` in stats — instead of
//!   applying twice.
//! - **Exactly-once across migrations.** A retry that crosses a
//!   completed `migrate_range` re-routes to the recipient shard and
//!   still replays the original ack: the donor's dedup entries move
//!   with the range at the ownership flip.
//! - **Deadlines.** An expired request gets an `expired` error frame
//!   and the connection stays usable; a black-holed server cannot hang
//!   a client thread.
//! - **Shedding.** In degraded mode queries are shed with `overloaded`
//!   while writes still land; a zero queue limit sheds writes too.
//! - **Malformed replies.** Garbage from the server side poisons the
//!   client's connection, never the process.

mod common;

use bur::client::{BurClient, ClientConfig, ClientError, RetryPolicy};
use bur::core::{Batch, Op};
use bur::geom::{Point, Rect};
use bur::serve::wire;
use bur::serve::{
    start, ChaosProxy, Direction, Fault, FaultPlan, IndexRegistry, Response, ScriptedFault,
    ServerConfig, StrategyKind,
};
use common::TempDir;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic pseudo-random position for an object id.
fn pos(oid: u64) -> Point {
    let h = oid.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    Point::new(
        (h % 1000) as f32 / 1000.0,
        ((h >> 32) % 1000) as f32 / 1000.0,
    )
}

fn insert_batch(range: std::ops::Range<u64>) -> Batch {
    let mut batch = Batch::new();
    for oid in range {
        batch.insert(oid, pos(oid));
    }
    batch
}

/// Client knobs tuned for talking through a hostile proxy: short
/// operation deadlines, fast reconnects, generous attempt budget.
fn chaos_client_config() -> ClientConfig {
    ClientConfig {
        connect_attempts: 8,
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        max_connect_elapsed: Duration::from_secs(5),
        op_timeout: Some(Duration::from_millis(300)),
        retry: RetryPolicy {
            max_attempts: 12,
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            max_elapsed: Duration::from_secs(30),
        },
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The headline drill: `CHAOS_PLANS` (default 200) randomized fault
/// plans, each a fresh proxy in front of one shared durable server.
/// Every batch inserts globally unique oids, so the final index length
/// is an exact oracle — a lost acked write shrinks it, a double-applied
/// retry grows it (or fails the retried apply outright). The server
/// must answer a direct, deadline-bounded ping after every plan.
#[test]
fn randomized_fault_plans_lose_nothing_and_apply_once() {
    let plans = env_u64("CHAOS_PLANS", 200);
    let base_seed = env_u64("CHAOS_BASE_SEED", 0x00c0_ffee);
    const BATCHES_PER_PLAN: u64 = 3;
    const OPS_PER_BATCH: u64 = 10;

    let dir = TempDir::new("chaos-drill");
    let handle = start(ServerConfig::new(dir.file("data"))).expect("server starts");
    let direct = handle.addr();
    let mut admin = BurClient::connect(direct).expect("admin connects");
    admin.create_index("drill", "gbu", true).expect("create");
    let mut probe = BurClient::connect_with(
        direct,
        &ClientConfig {
            op_timeout: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    )
    .expect("probe connects");

    let mut next_oid = 0u64;
    let mut acked_ops = 0u64;
    let mut acked_batches = 0u64;
    let mut total_retries = 0u64;
    let mut total_faults = 0u64;

    for plan_idx in 0..plans {
        let seed = base_seed.wrapping_add(plan_idx);
        let plan = FaultPlan {
            seed,
            drop_rate: 0.08,
            truncate_rate: 0.04,
            blackhole_rate: 0.01,
            delay_rate: 0.10,
            delay: Duration::from_millis(1),
            ..FaultPlan::default()
        };
        let proxy = ChaosProxy::start("127.0.0.1:0", direct, plan).expect("proxy starts");
        let mut c = BurClient::connect_with(proxy.addr(), &chaos_client_config())
            .unwrap_or_else(|e| panic!("seed {seed}: connect through proxy: {e}"));
        for _ in 0..BATCHES_PER_PLAN {
            let base = next_oid;
            next_oid += OPS_PER_BATCH;
            let ack = c
                .apply("drill", &insert_batch(base..base + OPS_PER_BATCH))
                .unwrap_or_else(|e| panic!("seed {seed}: apply exhausted its retries: {e}"));
            assert_eq!(ack.applied, OPS_PER_BATCH, "seed {seed}: short ack");
            acked_ops += OPS_PER_BATCH;
            acked_batches += 1;
        }
        total_retries += c.retries();
        drop(c);
        total_faults += proxy.stats().faults();
        proxy.shutdown();
        // Liveness throughout: the server itself (not the proxy) must
        // answer a deadline-bounded ping after every plan.
        probe
            .ping()
            .unwrap_or_else(|e| panic!("seed {seed}: server stopped answering pings: {e}"));
    }

    // The oracle: exactly the acked inserts, each exactly once.
    assert_eq!(
        admin.len("drill").expect("len"),
        acked_ops,
        "acked-write loss or double-apply detected"
    );
    let entry = handle.registry().get("drill").expect("entry");
    let entry = entry.as_plain().expect("plain index");
    let stats = entry.coalescer.stats();
    assert_eq!(
        stats.submissions, acked_batches,
        "every acked batch must have committed exactly once \
         (more means a dedup miss double-submitted a retry)"
    );
    if plans >= 20 {
        // With hundreds of batches at these fault rates the drill must
        // actually have exercised the retry and dedup paths.
        assert!(total_faults > 0, "the proxy never injected a fault");
        assert!(total_retries > 0, "no client ever retried");
        assert!(
            stats.dedup_hits >= 1,
            "no retry was ever answered from the dedup table \
             ({total_retries} retries, {total_faults} faults)"
        );
    }
    handle.shutdown();
}

/// The exactly-once acceptance test, deterministically: a scripted
/// fault eats the very first server-to-client frame — the ack of an
/// apply the server *did* commit. The client's retry reconnects and
/// resends the same `(session, seq)`, and must get the original ack
/// back: one submission, one dedup hit, nothing applied twice.
#[test]
fn retried_apply_over_killed_connection_returns_original_ack() {
    let dir = TempDir::new("chaos-dedup");
    let handle = start(ServerConfig::new(dir.file("data"))).expect("server starts");
    let mut admin = BurClient::connect(handle.addr()).expect("admin connects");
    admin.create_index("idx", "gbu", true).expect("create");

    let plan = FaultPlan {
        script: vec![ScriptedFault {
            conn: 0,
            direction: Direction::ServerToClient,
            frame: 0,
            fault: Fault::Drop,
        }],
        ..FaultPlan::default()
    };
    let proxy = ChaosProxy::start("127.0.0.1:0", handle.addr(), plan).expect("proxy starts");
    let mut c =
        BurClient::connect_with(proxy.addr(), &chaos_client_config()).expect("connect via proxy");

    // First request through the proxy: the apply lands, the ack dies.
    let ack = c.apply("idx", &insert_batch(0..25)).expect("retried apply");
    assert_eq!(ack.applied, 25);
    assert!(ack.lsn > 0, "the replayed ack is the original durable ack");
    assert!(c.retries() >= 1, "the lost ack must have forced a retry");
    assert!(c.reconnects() >= 1, "the drop must have forced a reconnect");

    let entry = handle.registry().get("idx").expect("entry");
    let entry = entry.as_plain().expect("plain index");
    let stats = entry.coalescer.stats();
    assert_eq!(stats.submissions, 1, "the retry must not resubmit");
    assert_eq!(stats.dedup_hits, 1, "the retry must hit the dedup table");
    assert_eq!(admin.len("idx").expect("len"), 25, "applied exactly once");

    // The dedup hit is observable on both stats surfaces.
    let text = admin.stats("idx").expect("stats");
    assert!(
        text.contains("bur_coalescer_dedup_hits{index=\"idx\"} 1"),
        "{text}"
    );
    let metrics = admin.metrics().expect("metrics");
    assert!(metrics.contains("burd_dedup_hits 1"), "{metrics}");
    // The shared write path's contention counters are on both surfaces.
    assert!(text.contains("bur_op_escalations{index=\"idx\"}"), "{text}");
    assert!(metrics.contains("burd_escalations"), "{metrics}");

    proxy.shutdown();
    handle.shutdown();
}

/// The retry-across-migration hole, deterministically: an apply lands
/// on shard 0, its ack is "eaten", and before the retry arrives a
/// range migration re-homes the whole batch onto shard 1. The retry
/// re-routes under the flipped map and reaches a coalescer that never
/// saw the original `(session, seq)` — the migration hook must have
/// handed shard 0's dedup entry over, so the retry replays the
/// original ack instead of re-applying (which would double-insert, or
/// fail an already-acked batch on the duplicate-oid check).
#[test]
fn retry_across_migration_replays_original_ack_without_reapplying() {
    let dir = TempDir::new("chaos-migrate-dedup");
    let reg = IndexRegistry::new(dir.path()).expect("registry");
    reg.create_sharded("idx", StrategyKind::Generalized, true, 2)
        .expect("create sharded");
    let entry = reg.get("idx").expect("get");
    let entry = entry.as_sharded().expect("sharded");

    // All ops cluster near the curve origin, so the batch routes whole
    // to the low-key shard.
    let ops: Vec<Op> = (0..25u64)
        .map(|i| Op::Insert {
            oid: 1000 + i,
            rect: Rect::from_point(Point::new(0.001 + i as f32 * 1e-4, 0.002)),
        })
        .collect();

    // The original attempt, exactly as the server applies it: route,
    // then funnel each part through its shard's coalescer under the
    // client's unchanged (session, seq).
    let routed = entry.sharded.route_for_write(&ops).expect("route");
    assert_eq!(routed.parts().len(), 1, "one donor shard");
    let (donor, sub) = &routed.parts()[0];
    let donor = *donor;
    let original = entry.coalescers[donor as usize]
        .apply_session(0xfeed, 9, sub.clone(), None)
        .expect("original apply");
    assert_eq!(original.applied, 25);
    // Release the writer registration so the migration can drain it.
    drop(routed);

    // The ack never reached the client; before the retry shows up, a
    // rebalance moves the low quarter of the key space away.
    let key_space = 1u64 << (2 * entry.sharded.order());
    let report = entry
        .sharded
        .migrate_range(0, key_space / 4, 1 - donor)
        .expect("migrate");
    assert_eq!(report.moved, 25, "the whole batch moved");

    // The retry re-routes under the flipped map: same (session, seq),
    // different shard.
    let routed = entry.sharded.route_for_write(&ops).expect("re-route");
    assert_eq!(routed.parts().len(), 1);
    let (recipient, sub) = &routed.parts()[0];
    assert_ne!(*recipient, donor, "ownership flipped");
    let before = entry.coalescers[*recipient as usize].stats();
    let replay = entry.coalescers[*recipient as usize]
        .apply_session(0xfeed, 9, sub.clone(), None)
        .expect("the retry must replay, not re-apply");
    assert_eq!(replay.lsn, original.lsn, "the original ack came back");
    assert_eq!(replay.applied, original.applied);
    let after = entry.coalescers[*recipient as usize].stats();
    assert_eq!(after.dedup_hits, before.dedup_hits + 1);
    assert_eq!(
        after.submissions, before.submissions,
        "the retry must not resubmit on the recipient"
    );
    assert_eq!(entry.sharded.len(), 25, "applied exactly once");
    reg.shutdown();
}

/// The randomized version: `CHAOS_MIGRATE_PLANS` (default 200) seeded
/// fault plans of unique-oid inserts through an ack-eating proxy while
/// a background rebalancer ping-pongs a slice of the key space between
/// the two shards. Retries land before, during (write-frozen, so they
/// wait) and after migrations; the final length is an exact oracle —
/// a lost acked write shrinks it, a double-applied retry fails the
/// apply outright on the duplicate-oid check.
#[test]
fn migration_crossing_retries_lose_nothing_and_apply_once() {
    let plans = env_u64("CHAOS_MIGRATE_PLANS", 200);
    let base_seed = env_u64("CHAOS_BASE_SEED", 0x5eed_cafe);
    const BATCHES_PER_PLAN: u64 = 2;
    const OPS_PER_BATCH: u64 = 10;

    let dir = TempDir::new("chaos-migrate-drill");
    let handle = start(ServerConfig::new(dir.file("data"))).expect("server starts");
    let direct = handle.addr();
    let mut admin = BurClient::connect(direct).expect("admin connects");
    admin
        .create_sharded_index("drill", "gbu", true, 2)
        .expect("create");

    // Background rebalancer: ping-pong ownership of the low sixteenth
    // of the key space for the whole drill. Writes whose ops touch the
    // moving range freeze until the flip completes, so every migration
    // is a chance for a retry to cross it.
    let entry = handle.registry().get("drill").expect("entry");
    let entry = entry.as_sharded().expect("sharded").clone();
    let sharded = entry.sharded.clone();
    let key_space = 1u64 << (2 * sharded.order());
    let stop = Arc::new(AtomicBool::new(false));
    let migrations = Arc::new(AtomicU64::new(0));
    let migrator = {
        let stop = Arc::clone(&stop);
        let migrations = Arc::clone(&migrations);
        std::thread::spawn(move || {
            let mut owner = 0u32;
            while !stop.load(Ordering::Relaxed) {
                sharded
                    .migrate_range(0, key_space / 16, 1 - owner)
                    .expect("migrate");
                owner = 1 - owner;
                migrations.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };

    let mut next_oid = 0u64;
    let mut acked_ops = 0u64;
    let mut total_retries = 0u64;
    let mut total_faults = 0u64;
    for plan_idx in 0..plans {
        let seed = base_seed.wrapping_add(plan_idx);
        let plan = FaultPlan {
            seed,
            drop_rate: 0.08,
            truncate_rate: 0.04,
            delay_rate: 0.10,
            delay: Duration::from_millis(1),
            ..FaultPlan::default()
        };
        let proxy = ChaosProxy::start("127.0.0.1:0", direct, plan).expect("proxy starts");
        let mut c = BurClient::connect_with(proxy.addr(), &chaos_client_config())
            .unwrap_or_else(|e| panic!("seed {seed}: connect through proxy: {e}"));
        for _ in 0..BATCHES_PER_PLAN {
            let base = next_oid;
            next_oid += OPS_PER_BATCH;
            let ack = c
                .apply("drill", &insert_batch(base..base + OPS_PER_BATCH))
                .unwrap_or_else(|e| panic!("seed {seed}: apply exhausted its retries: {e}"));
            assert_eq!(ack.applied, OPS_PER_BATCH, "seed {seed}: short ack");
            acked_ops += OPS_PER_BATCH;
        }
        total_retries += c.retries();
        drop(c);
        total_faults += proxy.stats().faults();
        proxy.shutdown();
    }
    stop.store(true, Ordering::Relaxed);
    migrator.join().expect("migrator");

    assert!(
        migrations.load(Ordering::Relaxed) > 0,
        "the rebalancer never migrated"
    );
    // The oracle: exactly the acked inserts, each exactly once, spread
    // across whichever shards the rebalancer left them on.
    assert_eq!(
        admin.len("drill").expect("len"),
        acked_ops,
        "acked-write loss or double-apply across a migration"
    );
    if plans >= 20 {
        assert!(total_faults > 0, "the proxy never injected a fault");
        assert!(total_retries > 0, "no client ever retried");
        let dedup_hits: u64 = entry.coalescers.iter().map(|c| c.stats().dedup_hits).sum();
        assert!(
            dedup_hits >= 1,
            "no retry was ever answered from a dedup table \
             ({total_retries} retries, {total_faults} faults)"
        );
    }
    handle.shutdown();
}

/// A frame that arrives already expired gets an `expired` error frame
/// — not silence, not a served request — and the connection stays
/// usable for the next, unexpired request.
#[test]
fn expired_request_gets_error_frame_and_connection_survives() {
    let dir = TempDir::new("chaos-expired");
    let handle = start(ServerConfig::new(dir.file("data"))).expect("server starts");

    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    // Ping with a zero-millisecond budget: expired on arrival by
    // contract.
    let ping = bur::serve::Request::Ping;
    let mut frame = Vec::new();
    wire::write_frame_deadline(
        &mut frame,
        1,
        ping.opcode(),
        Some(0),
        &ping.encode_payload(),
    );
    raw.write_all(&frame).expect("write expired ping");
    let reply = wire::read_frame(&mut raw).expect("read").expect("frame");
    assert_eq!(reply.request_id, 1);
    match Response::decode(reply.opcode, &reply.payload).expect("decode") {
        Response::Expired { message } => {
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected Expired, got {other:?}"),
    }

    // Same connection, sane budget: served normally.
    let mut frame = Vec::new();
    wire::write_frame_deadline(
        &mut frame,
        2,
        ping.opcode(),
        Some(5_000),
        &ping.encode_payload(),
    );
    raw.write_all(&frame).expect("write healthy ping");
    let reply = wire::read_frame(&mut raw).expect("read").expect("frame");
    assert_eq!(reply.request_id, 2);
    assert!(matches!(
        Response::decode(reply.opcode, &reply.payload).expect("decode"),
        Response::Pong
    ));

    assert_eq!(
        handle
            .metrics()
            .requests_expired
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    handle.shutdown();
}

/// Degraded mode sheds queries before writes: flip the manual degrade
/// switch and queries come back `overloaded` while applies still land
/// durably; flip it back and queries serve again.
#[test]
fn degraded_mode_sheds_queries_before_writes() {
    let dir = TempDir::new("chaos-degraded");
    let handle = start(ServerConfig::new(dir.file("data"))).expect("server starts");
    let config = ClientConfig {
        retry: RetryPolicy::none(),
        ..Default::default()
    };
    let mut c = BurClient::connect_with(handle.addr(), &config).expect("connect");
    c.create_index("idx", "gbu", true).expect("create");
    c.apply("idx", &insert_batch(0..10)).expect("apply");

    handle.set_degraded(true);
    assert!(handle.is_degraded());
    let everywhere = Rect::new(0.0, 0.0, 1.0, 1.0);
    match c.query("idx", &everywhere).and_then(|s| s.collect_all()) {
        Err(ClientError::Overloaded(msg)) => assert!(msg.contains("degraded"), "{msg}"),
        other => panic!("degraded query must shed, got {other:?}"),
    }
    match c
        .nearest("idx", Point::new(0.5, 0.5), 3)
        .and_then(|s| s.collect_all())
    {
        Err(ClientError::Overloaded(_)) => {}
        other => panic!("degraded knn must shed, got {other:?}"),
    }
    // Writes are the priority: they still land while degraded.
    let ack = c
        .apply("idx", &insert_batch(10..20))
        .expect("degraded apply");
    assert_eq!(ack.applied, 10);

    handle.set_degraded(false);
    let hits: Vec<u64> = c
        .query("idx", &everywhere)
        .expect("query")
        .collect::<Result<_, _>>()
        .expect("stream");
    assert_eq!(hits.len(), 20, "recovered from degraded mode");

    let shed = handle
        .metrics()
        .queries_shed
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(shed, 2, "both shed queries counted");
    let text = c.stats("idx").expect("stats");
    assert!(text.contains("bur_coalescer_queued_ops"), "{text}");
    handle.shutdown();
}

/// A zero write-queue limit sheds every apply with `overloaded` (and
/// the shed is counted), while reads are also refused — the server
/// stays responsive to pings throughout.
#[test]
fn zero_queue_limit_sheds_writes_with_overloaded() {
    let dir = TempDir::new("chaos-shed");
    let mut server_config = ServerConfig::new(dir.file("data"));
    server_config.max_queued_ops = 0;
    let handle = start(server_config).expect("server starts");
    let config = ClientConfig {
        retry: RetryPolicy::none(),
        ..Default::default()
    };
    let mut c = BurClient::connect_with(handle.addr(), &config).expect("connect");
    c.create_index("idx", "gbu", false).expect("create");
    match c.apply("idx", &insert_batch(0..5)) {
        Err(ClientError::Overloaded(msg)) => assert!(msg.contains("overloaded"), "{msg}"),
        other => panic!("zero queue limit must shed writes, got {other:?}"),
    }
    c.ping().expect("server still answers pings");
    assert!(
        handle
            .metrics()
            .writes_shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    let entry = handle.registry().get("idx").expect("entry");
    let entry = entry.as_plain().expect("plain index");
    assert!(
        entry.coalescer.is_degraded(),
        "zero limit is always degraded"
    );
    assert_eq!(entry.coalescer.stats().shed_writes, 1);
    handle.shutdown();
}

/// A fake "server" that accepts one connection and answers it with
/// whatever `reply` produces from the client's first frame.
fn fake_server(
    reply: impl FnOnce(wire::Frame) -> Vec<u8> + Send + 'static,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let join = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let frame = wire::read_frame(&mut conn)
            .expect("read client frame")
            .expect("a frame");
        let bytes = reply(frame);
        let _ = conn.write_all(&bytes);
        // Hold the socket open briefly so the client reads our bytes,
        // not a reset.
        std::thread::sleep(Duration::from_millis(200));
    });
    (addr, join)
}

fn no_retry_config(op_timeout: Duration) -> ClientConfig {
    ClientConfig {
        connect_attempts: 2,
        max_connect_elapsed: Duration::from_secs(2),
        op_timeout: Some(op_timeout),
        retry: RetryPolicy::none(),
        ..Default::default()
    }
}

/// Malformed server replies error cleanly and poison the connection —
/// the client process and its error surface stay intact.
#[test]
fn malformed_server_replies_poison_the_connection_cleanly() {
    // 1) A reply with a garbage opcode.
    let (addr, join) = fake_server(|frame| {
        let mut out = Vec::new();
        wire::write_frame(&mut out, frame.request_id, 0x77, b"");
        out
    });
    let mut c =
        BurClient::connect_with(addr, &no_retry_config(Duration::from_secs(2))).expect("connect");
    match c.ping() {
        Err(ClientError::Wire(e)) => {
            assert!(e.to_string().contains("unknown opcode"), "{e}");
        }
        other => panic!("garbage opcode must be a wire error, got {other:?}"),
    }
    assert!(!c.is_connected(), "wire garbage must poison the connection");
    join.join().expect("fake server");

    // 2) A frame truncated mid-payload (length prefix promises more
    //    bytes than ever arrive).
    let (addr, join) = fake_server(|frame| {
        let mut out = Vec::new();
        wire::write_frame(
            &mut out,
            frame.request_id,
            bur::serve::protocol::opcode::TEXT,
            &[0u8; 64],
        );
        out.truncate(out.len() - 32);
        out
    });
    let mut c =
        BurClient::connect_with(addr, &no_retry_config(Duration::from_secs(2))).expect("connect");
    match c.ping() {
        Err(ClientError::Wire(_)) | Err(ClientError::Io(_)) => {}
        other => panic!("truncated frame must error, got {other:?}"),
    }
    assert!(!c.is_connected());
    join.join().expect("fake server");

    // 3) A well-formed pong echoing the WRONG request id.
    let (addr, join) = fake_server(|frame| {
        let mut out = Vec::new();
        wire::write_frame(
            &mut out,
            frame.request_id + 1,
            bur::serve::protocol::opcode::PONG,
            b"",
        );
        out
    });
    let mut c =
        BurClient::connect_with(addr, &no_retry_config(Duration::from_secs(2))).expect("connect");
    match c.ping() {
        Err(ClientError::Protocol(msg)) => {
            assert!(msg.contains("while waiting on"), "{msg}");
        }
        other => panic!("wrong request id must be a protocol error, got {other:?}"),
    }
    assert!(!c.is_connected(), "a desynced stream must be poisoned");
    join.join().expect("fake server");
}

/// A server that accepts and then never answers cannot hang the client:
/// the operation deadline bounds the wait wall-clock-tight.
#[test]
fn black_holed_server_cannot_hang_the_client() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let join = std::thread::spawn(move || {
        // Accept, read nothing, answer nothing, hold the socket open.
        let (conn, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_secs(10));
        drop(conn);
    });
    let mut c = BurClient::connect_with(addr, &no_retry_config(Duration::from_millis(250)))
        .expect("connect");
    let started = Instant::now();
    let err = c.ping().expect_err("a silent server must time out");
    let elapsed = started.elapsed();
    assert!(
        matches!(err, ClientError::Io(_)),
        "timeout surfaces as an io error, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline did not bound the wait: {elapsed:?}"
    );
    assert!(!c.is_connected(), "a timed-out connection is poisoned");
    drop(c);
    drop(join); // The sleeping thread outlives the test harmlessly.
}
