//! Shared integration-test utilities.
//!
//! [`TempDir`] is an RAII temporary directory: it is created unique per
//! test (pid + counter) and removed — with everything inside — when the
//! value drops, so test runs never leak `bur-*` droppings under the
//! system temp directory, even when a test fails (panics unwind through
//! the `Drop`).

#![allow(dead_code)] // each integration test binary uses a subset

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory, removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `bur-<tag>-<pid>-<n>` under the system temp directory.
    pub fn new(tag: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("bur-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    /// The directory itself.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the directory (not created).
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
