//! Concurrency tests: the DGL-locked, clonable [`Bur`] handle under
//! mixed multi-threaded workloads must neither corrupt the tree nor
//! lose objects, and its locking discipline must actually serialize
//! conflicting granule access.

use bur::prelude::*;
use bur::workload::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};

fn build(opts: IndexOptions, n: usize) -> (Bur, Workload) {
    let workload = Workload::generate(WorkloadConfig {
        num_objects: n,
        max_distance: 0.02,
        query_max_side: 0.05,
        seed: 0xC0C0,
        ..WorkloadConfig::default()
    });
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    for (oid, p) in workload.items() {
        index.insert(oid, p).unwrap();
    }
    (Bur::from_index(index), workload)
}

#[test]
fn mixed_workload_stays_consistent() {
    for opts in [
        IndexOptions::top_down(),
        IndexOptions::localized(),
        IndexOptions::generalized(),
    ] {
        let n = 4_000;
        let (index, workload) = build(opts, n);
        let threads = 8;
        let parts = workload.split(threads);
        let queries_run = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for mut part in parts {
                let index = &index;
                let queries_run = &queries_run;
                s.spawn(move || {
                    for i in 0..400 {
                        if i % 4 == 0 {
                            let q = part.next_query();
                            let _ = index.query(&q.window).unwrap().count();
                            queries_run.fetch_add(1, Ordering::Relaxed);
                        } else {
                            let op = part.next_update();
                            index.update(op.oid, op.old, op.new).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(index.len(), n as u64, "no objects may be lost");
        assert!(queries_run.load(Ordering::Relaxed) > 0);
        index.validate().unwrap();
        // All DGL locks must have been released.
        assert_eq!(index.lock_manager().locked_granules(), 0);
    }
}

#[test]
fn concurrent_inserts_and_deletes() {
    let (index, _wl) = build(IndexOptions::generalized(), 1_000);
    std::thread::scope(|s| {
        // Two inserter threads with disjoint id ranges.
        for t in 0..2u64 {
            let index = &index;
            s.spawn(move || {
                for i in 0..300u64 {
                    let oid = 10_000 + t * 1_000 + i;
                    let p = Point::new((oid % 97) as f32 / 97.0, (oid % 89) as f32 / 89.0);
                    index.insert(oid, p).unwrap();
                }
            });
        }
        // One deleter removing original objects.
        let index_ref = &index;
        let wl = Workload::generate(WorkloadConfig {
            num_objects: 1_000,
            seed: 0xC0C0,
            ..WorkloadConfig::default()
        });
        s.spawn(move || {
            for (oid, p) in wl.items().into_iter().take(200) {
                assert!(index_ref.delete(oid, p).unwrap());
            }
        });
    });
    assert_eq!(index.len(), 1_000 + 600 - 200);
    index.validate().unwrap();
}

#[test]
fn queries_see_every_object_exactly_once() {
    // Under concurrent updates, a full-space query must still return
    // each object exactly once (updates move objects around, but never
    // duplicate or drop them).
    let (index, workload) = build(IndexOptions::generalized(), 2_000);
    let parts = workload.split(4);
    std::thread::scope(|s| {
        for mut part in parts {
            let index = &index;
            s.spawn(move || {
                for _ in 0..500 {
                    let op = part.next_update();
                    index.update(op.oid, op.old, op.new).unwrap();
                }
            });
        }
        let index = &index;
        s.spawn(move || {
            // Whole-space scans while updates run. Objects may drift out
            // of the unit square (the workload does not clamp), so scan
            // a generous window.
            let world = Rect::new(-10.0, -10.0, 11.0, 11.0);
            for _ in 0..20 {
                let mut ids: Vec<u64> = index.query(&world).unwrap().collect();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), 2_000, "object lost or duplicated mid-scan");
            }
        });
    });
    index.validate().unwrap();
}

#[test]
fn io_and_op_snapshots_accessible_concurrently() {
    let (index, workload) = build(IndexOptions::generalized(), 1_000);
    let parts = workload.split(2);
    std::thread::scope(|s| {
        for mut part in parts {
            let index = &index;
            s.spawn(move || {
                for _ in 0..200 {
                    let op = part.next_update();
                    index.update(op.oid, op.old, op.new).unwrap();
                }
            });
        }
        let index = &index;
        s.spawn(move || {
            for _ in 0..50 {
                let io = index.io_snapshot();
                let ops = index.with_op_stats(|s| s.snapshot());
                // Monotone counters, no panics.
                assert!(io.fetches >= io.reads);
                assert!(ops.updates <= 400);
            }
        });
    });
    let ops = index.with_op_stats(|s| s.snapshot());
    assert_eq!(ops.updates, 400);
}

#[test]
fn per_granule_commit_batching_under_wal() {
    // A durable index with per-granule commit batching: multi-threaded
    // bottom-up updates accumulate commit hooks per leaf granule and are
    // flushed as one group commit record per batch; the flushed state
    // survives a crash-free reopen exactly.
    let n = 2_000;
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000,
        batch_ops: 1, // raised through the wrapper below
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    let workload = Workload::generate(WorkloadConfig {
        num_objects: n,
        max_distance: 0.02,
        seed: 0xBA7C,
        ..WorkloadConfig::default()
    });
    let mut inner = IndexBuilder::with_options(opts).build_index().unwrap();
    for (oid, p) in workload.items() {
        inner.insert(oid, p).unwrap();
    }
    inner.checkpoint().unwrap();
    let base_commits = inner.wal_stats().unwrap().commits;
    let index = Bur::from_index(inner);
    index.set_commit_batching(16).unwrap();

    let threads = 8;
    let per_thread = 200u64;
    let parts = workload.split(threads);
    std::thread::scope(|s| {
        for mut part in parts {
            let index = &index;
            s.spawn(move || {
                for _ in 0..per_thread {
                    let op = part.next_update();
                    index.update(op.oid, op.old, op.new).unwrap();
                }
            });
        }
    });
    let tail = index.commit().unwrap().into_commit_batch();
    let total_ops = threads as u64 * per_thread;
    let (batched_ops, batches) = index.commit_batch_totals();
    assert_eq!(batched_ops, total_ops, "every update must be batched");
    assert!(
        batches <= total_ops / 8,
        "batching must compress commits: {batches} batches for {total_ops} ops"
    );
    assert!(tail.ops < 16, "tail batch is partial: {}", tail.ops);
    index.validate().unwrap();

    let inner = index.try_into_index().expect("no other clones are alive");
    let commits = inner.wal_stats().unwrap().commits - base_commits;
    assert!(
        commits <= total_ops / 8,
        "one commit record per batch expected: {commits} for {total_ops} ops"
    );
    assert_eq!(inner.pending_commits(), 0);
    assert_eq!(inner.len(), n as u64);
}
