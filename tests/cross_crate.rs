//! Cross-crate integration: the workload generator driving the index
//! through the facade, with all strategies answering identically.

use bur::prelude::*;
use bur::workload::Workload;

fn run_stream(opts: IndexOptions, wl_cfg: WorkloadConfig, updates: usize) -> RTreeIndex {
    let mut wl = Workload::generate(wl_cfg);
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    for (oid, p) in wl.items() {
        index.insert(oid, p).unwrap();
    }
    for _ in 0..updates {
        let op = wl.next_update();
        index.update(op.oid, op.old, op.new).unwrap();
    }
    index
}

#[test]
fn prelude_covers_the_quickstart_flow() {
    // The exact facade journey from the crate docs, through `bur::prelude`
    // re-exports only: create-in-memory → insert → bottom-up update →
    // window query. Guards the prelude surface against accidental drift.
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    index.insert(1, Point::new(0.2, 0.2)).unwrap();
    index.insert(2, Point::new(0.8, 0.8)).unwrap();

    // A small move is absorbed bottom-up without touching the leaf MBR.
    let outcome = index
        .update(1, Point::new(0.2, 0.2), Point::new(0.21, 0.2))
        .unwrap();
    assert_eq!(outcome, UpdateOutcome::InPlace);

    let mut hits = index.query(&Rect::new(0.0, 0.0, 0.5, 0.5)).unwrap();
    hits.sort_unstable();
    assert_eq!(hits, vec![1]);
    let mut all = index.query(&Rect::UNIT).unwrap();
    all.sort_unstable();
    assert_eq!(all, vec![1, 2]);
    index.validate().unwrap();
}

#[test]
fn all_strategies_answer_identically_after_same_stream() {
    let wl_cfg = WorkloadConfig {
        num_objects: 3_000,
        max_distance: 0.04,
        seed: 99,
        ..WorkloadConfig::default()
    };
    let td = run_stream(IndexOptions::top_down(), wl_cfg, 9_000);
    let lbu = run_stream(IndexOptions::localized(), wl_cfg, 9_000);
    let gbu = run_stream(IndexOptions::generalized(), wl_cfg, 9_000);
    td.validate().unwrap();
    lbu.validate().unwrap();
    gbu.validate().unwrap();

    let mut wl = Workload::generate(wl_cfg);
    for _ in 0..40 {
        let q = wl.next_query();
        let mut a = td.query(&q.window).unwrap();
        let mut b = lbu.query(&q.window).unwrap();
        let mut c = gbu.query(&q.window).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        c.sort_unstable();
        assert_eq!(a, b, "TD vs LBU mismatch on {}", q.window);
        assert_eq!(a, c, "TD vs GBU mismatch on {}", q.window);
    }
}

#[test]
fn every_distribution_supported_end_to_end() {
    for dist in [
        DataDistribution::Uniform,
        DataDistribution::Gaussian,
        DataDistribution::Skewed,
    ] {
        let wl_cfg = WorkloadConfig {
            num_objects: 2_000,
            distribution: dist,
            max_distance: 0.03,
            seed: 5,
            ..WorkloadConfig::default()
        };
        let index = run_stream(IndexOptions::generalized(), wl_cfg, 4_000);
        index.validate().unwrap();
        assert_eq!(index.len(), 2_000);
        // The whole population is findable.
        let world = Rect::new(-5.0, -5.0, 6.0, 6.0);
        assert_eq!(index.query(&world).unwrap().len(), 2_000);
    }
}

#[test]
fn unclamped_objects_can_leave_the_unit_square() {
    // The paper's workload lets objects diffuse beyond the initial data
    // space ("objects beyond the root MBR are inserted"); the index must
    // follow them out.
    let wl_cfg = WorkloadConfig {
        num_objects: 500,
        max_distance: 0.2,
        seed: 1,
        clamp: false,
        ..WorkloadConfig::default()
    };
    let index = run_stream(IndexOptions::generalized(), wl_cfg, 20_000);
    index.validate().unwrap();
    let inside = index.query(&Rect::UNIT).unwrap().len();
    let everywhere = index
        .query(&Rect::new(-50.0, -50.0, 51.0, 51.0))
        .unwrap()
        .len();
    assert_eq!(everywhere, 500);
    assert!(
        inside < everywhere,
        "after heavy diffusion some objects must sit outside the unit square"
    );
}

#[test]
fn io_accounting_matches_across_facade() {
    // The facade exposes the same counters the bench harness uses.
    let wl_cfg = WorkloadConfig {
        num_objects: 1_000,
        seed: 3,
        ..WorkloadConfig::default()
    };
    let index = run_stream(IndexOptions::generalized(), wl_cfg, 1_000);
    index.pool().evict_all().unwrap();
    index.io_stats().reset();
    let before = index.io_stats().snapshot();
    let _ = index.query(&Rect::new(0.4, 0.4, 0.6, 0.6)).unwrap();
    let delta = index.io_stats().snapshot().since(&before);
    assert!(delta.reads > 0, "cold query must read pages");
    assert_eq!(delta.writes, 0, "queries must not write");
}

#[test]
fn concurrent_and_plain_agree() {
    let wl_cfg = WorkloadConfig {
        num_objects: 1_500,
        max_distance: 0.03,
        seed: 8,
        ..WorkloadConfig::default()
    };
    let plain = run_stream(IndexOptions::generalized(), wl_cfg, 3_000);

    // Same stream through the shared handle (single-threaded so the
    // op order is identical).
    let mut wl = Workload::generate(wl_cfg);
    let mut base = IndexBuilder::with_options(IndexOptions::generalized())
        .build_index()
        .unwrap();
    for (oid, p) in wl.items() {
        base.insert(oid, p).unwrap();
    }
    let shared = Bur::from_index(base);
    for _ in 0..3_000 {
        let op = wl.next_update();
        shared.update(op.oid, op.old, op.new).unwrap();
    }
    let mut wl2 = Workload::generate(wl_cfg);
    for _ in 0..20 {
        let q = wl2.next_query();
        let mut a = plain.query(&q.window).unwrap();
        let mut b: Vec<u64> = shared.query(&q.window).unwrap().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
