//! Smoke tests for the experiment harness: every figure of the paper
//! must run end-to-end at `Scale::Smoke` and produce non-degenerate
//! tables. This keeps `repro all` permanently runnable.

use bur_bench::{figures, Scale};

fn check_tables(name: &str, min_rows: usize) {
    let tables = figures::by_name(name, Scale::Smoke)
        .unwrap_or_else(|| panic!("experiment {name} not found"));
    assert!(!tables.is_empty(), "{name}: no tables");
    for t in &tables {
        assert!(
            t.rows.len() >= min_rows,
            "{name}: table '{}' has {} rows, expected >= {min_rows}",
            t.title,
            t.rows.len()
        );
        for row in &t.rows {
            assert_eq!(row.len(), t.headers.len(), "{name}: ragged row");
            for cell in row {
                assert!(!cell.is_empty(), "{name}: empty cell");
            }
        }
        // Render must not panic and should contain the title.
        let rendered = t.render();
        assert!(rendered.contains("##"));
    }
}

#[test]
fn params_table_runs() {
    check_tables("params", 8);
}

#[test]
fn fig5_epsilon_runs() {
    check_tables("fig5-epsilon", 5);
}

#[test]
fn fig5_tau_runs() {
    check_tables("fig5-tau", 4);
}

#[test]
fn fig6_dist_runs() {
    check_tables("fig6-dist", 3);
}

#[test]
fn fig6_buffer_runs() {
    check_tables("fig6-buffer", 5);
}

#[test]
fn summary_size_runs() {
    check_tables("summary-size", 4);
}

#[test]
fn cost_model_runs() {
    check_tables("cost-model", 4);
}

#[test]
fn unknown_experiment_is_none() {
    assert!(figures::by_name("fig99-nope", Scale::Smoke).is_none());
}

#[test]
fn experiment_list_is_complete() {
    // Every listed experiment resolves (without being run here — the
    // heavyweight sweeps are covered by the dedicated tests above and by
    // `repro all`).
    for name in figures::EXPERIMENTS {
        assert!(
            [
                "params",
                "fig5-epsilon",
                "fig5-tau",
                "fig5-maxdist",
                "fig6-level",
                "fig6-dist",
                "fig6-updates",
                "fig6-buffer",
                "fig7-scale",
                "fig8-throughput",
                "summary-size",
                "cost-model",
                "ext-rstar",
                "ext-trend",
            ]
            .contains(name),
            "unexpected experiment {name}"
        );
    }
    assert_eq!(figures::EXPERIMENTS.len(), 14);
}

#[test]
fn ext_rstar_runs() {
    check_tables("ext-rstar", 2);
}

#[test]
fn ext_trend_runs() {
    check_tables("ext-trend", 2);
}

#[test]
fn headline_shapes_hold_at_smoke_scale() {
    // The paper's two robust orderings, checked at smoke scale so CI
    // guards them: (1) GBU updates cost less than TD updates without a
    // buffer; (2) LBU queries degrade once epsilon grows.
    use bur_bench::{run_experiment, BuildMethod, ExperimentConfig};
    use bur_core::{IndexOptions, LbuParams, UpdateStrategy};
    use bur_workload::WorkloadConfig;

    let wl = WorkloadConfig {
        num_objects: 3_000,
        max_distance: 0.05,
        ..WorkloadConfig::default()
    };
    let mk = |index, buffer_pct| ExperimentConfig {
        index,
        workload: wl,
        updates: 6_000,
        queries: 40,
        buffer_pct,
        build: BuildMethod::Insert,
    };
    let td = run_experiment(&mk(IndexOptions::top_down(), 0.0));
    let gbu = run_experiment(&mk(IndexOptions::generalized(), 0.0));
    assert!(
        gbu.update_io < td.update_io,
        "unbuffered: GBU ({}) must beat TD ({})",
        gbu.update_io,
        td.update_io
    );

    let lbu_small = run_experiment(&mk(
        IndexOptions {
            strategy: UpdateStrategy::Localized(LbuParams {
                epsilon: 0.0,
                ..LbuParams::default()
            }),
            ..IndexOptions::default()
        },
        1.0,
    ));
    let lbu_large = run_experiment(&mk(
        IndexOptions {
            strategy: UpdateStrategy::Localized(LbuParams {
                epsilon: 0.03,
                ..LbuParams::default()
            }),
            ..IndexOptions::default()
        },
        1.0,
    ));
    assert!(
        lbu_large.query_io > lbu_small.query_io,
        "LBU query cost must grow with epsilon ({} vs {})",
        lbu_large.query_io,
        lbu_small.query_io
    );
}
