//! Failure-injection drills: disk faults must surface as clean
//! `CoreError::Storage` values — never panics — and transient faults must
//! not poison the index. Uses the deterministic [`FaultyDisk`] wrapper.

mod common;

use bur::core::{CoreError, IndexBuilder, IndexOptions, RTreeIndex};
use bur::geom::{Point, Rect};
use bur::storage::{FaultKind, FaultyDisk, FileDisk, MemDisk};
use common::TempDir;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// An index of `n` uniform points on a fault-injectable disk.
fn build(opts: IndexOptions, n: usize, seed: u64) -> (RTreeIndex, Arc<FaultyDisk>, Vec<Point>) {
    let disk = Arc::new(FaultyDisk::new(Arc::new(MemDisk::new(opts.page_size))));
    let mut index = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build_index()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(n);
    for oid in 0..n as u64 {
        let p = Point::new(rng.random::<f32>(), rng.random::<f32>());
        index.insert(oid, p).unwrap();
        pts.push(p);
    }
    (index, disk, pts)
}

#[test]
fn read_fault_surfaces_as_storage_error() {
    let (index, disk, _) = build(IndexOptions::generalized(), 2000, 3);
    // Force queries to touch the disk.
    index.pool().evict_all().unwrap();
    disk.fail_always(FaultKind::Read);
    let err = index.query(&Rect::new(0.1, 0.1, 0.4, 0.4)).unwrap_err();
    assert!(
        matches!(err, CoreError::Storage(_)),
        "expected a storage error, got {err}"
    );
    assert!(disk.injected_faults() > 0);
}

#[test]
fn transient_read_fault_recovers() {
    let (index, disk, _) = build(IndexOptions::generalized(), 2000, 5);
    index.pool().evict_all().unwrap();
    let window = Rect::new(0.2, 0.2, 0.5, 0.5);
    disk.fail_next(FaultKind::Read, 1);
    let _ = index.query(&window); // may fail, must not panic
    disk.clear_faults();
    // The failed read must not have been cached as valid data.
    let hits = index.query(&window).unwrap();
    assert!(!hits.is_empty());
    index.validate().unwrap();
}

#[test]
fn query_failure_does_not_corrupt_index() {
    let (index, disk, pts) = build(IndexOptions::top_down(), 3000, 7);
    index.pool().evict_all().unwrap();
    disk.fail_next(FaultKind::Read, 3);
    for _ in 0..5 {
        let _ = index.query(&Rect::new(0.0, 0.0, 1.0, 1.0));
    }
    disk.clear_faults();
    index.validate().unwrap();
    // Every object is still present.
    let all = index.query(&Rect::new(-10.0, -10.0, 10.0, 10.0)).unwrap();
    assert_eq!(all.len(), pts.len());
}

#[test]
fn insert_failure_reports_error_not_panic() {
    let opts = IndexOptions::generalized();
    let disk = Arc::new(FaultyDisk::new(Arc::new(MemDisk::new(opts.page_size))));
    let mut index = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build_index()
        .unwrap();
    // Tiny pool so inserts must do physical I/O; then kill the disk.
    index.set_buffer_capacity(2).unwrap();
    let mut failures = 0;
    let mut rng = StdRng::seed_from_u64(11);
    for oid in 0..5000u64 {
        if oid == 2000 {
            disk.fail_always(FaultKind::Write);
            disk.fail_always(FaultKind::Read);
        }
        if oid == 2600 {
            disk.clear_faults();
        }
        let p = Point::new(rng.random::<f32>(), rng.random::<f32>());
        match index.insert(oid, p) {
            Ok(()) => {}
            Err(CoreError::Storage(_)) => failures += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(failures > 0, "the dead-disk window must fail some inserts");
    assert!(!index.is_empty());
}

#[test]
fn sync_failure_surfaces_through_persist() {
    let opts = IndexOptions::generalized();
    let disk = Arc::new(FaultyDisk::new(Arc::new(MemDisk::new(opts.page_size))));
    let mut index = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build_index()
        .unwrap();
    index.insert(1, Point::new(0.5, 0.5)).unwrap();
    disk.fail_always(FaultKind::Sync);
    // MemDisk syncs are no-ops, but persist must still propagate the
    // injected failure from flush_all's sync.
    let err = index.persist().unwrap_err();
    assert!(matches!(err, CoreError::Storage(_)), "got {err}");
    disk.clear_faults();
    index.persist().unwrap();
}

#[test]
fn power_cut_on_file_disk_surfaces_cleanly_and_platter_survives() {
    // A TornWrite power cut against a *real file*: the process sees clean
    // errors (never panics), and the file afterwards holds exactly the
    // pre-cut image plus one torn page — which a durable index turns into
    // lossless recovery (tests/recovery.rs); here we assert the failure
    // surface itself.
    let dir = TempDir::new("faults");
    let path = dir.file("powercut.bur");
    let opts = IndexOptions::generalized();
    let file = Arc::new(FileDisk::create(&path, opts.page_size).unwrap());
    let disk = Arc::new(FaultyDisk::new(file));
    let mut index = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build_index()
        .unwrap();
    index.set_buffer_capacity(4).unwrap(); // force steady write-back traffic
    let mut rng = StdRng::seed_from_u64(99);
    let mut acked = 0u64;
    disk.inject(FaultKind::TornWrite { after_writes: 120 });
    let mut failures = 0;
    for oid in 0..20_000u64 {
        let p = Point::new(rng.random::<f32>(), rng.random::<f32>());
        match index.insert(oid, p) {
            Ok(()) => acked += 1,
            Err(CoreError::Storage(_)) => {
                failures += 1;
                if failures > 3 {
                    break;
                }
            }
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(disk.power_cut_triggered(), "the cut must have fired");
    assert!(acked > 0 && failures > 0);
    drop(index);
    // The surviving file still opens page-wise (reads are unaffected).
    let reopened = FileDisk::open(&path, opts.page_size).unwrap();
    use bur::storage::DiskBackend;
    assert!(reopened.num_pages() > 0);
    let mut buf = vec![0u8; opts.page_size];
    reopened.read(0, &mut buf).unwrap();
}

#[test]
fn updates_survive_fault_windows() {
    let (mut index, disk, mut pts) = build(IndexOptions::generalized(), 2000, 13);
    index.set_buffer_capacity(8).unwrap();
    let mut rng = StdRng::seed_from_u64(14);
    let mut errors = 0;
    let mut applied = 0;
    for step in 0..4000 {
        // A fault window of 50 operations every 1000 steps.
        if step % 1000 == 600 {
            disk.fail_next(FaultKind::Read, 25);
            disk.fail_next(FaultKind::Write, 25);
        }
        let oid = rng.random_range(0..pts.len() as u64);
        let old = pts[oid as usize];
        let new = Point::new(
            old.x + rng.random_range(-0.01..0.01f32),
            old.y + rng.random_range(-0.01..0.01f32),
        );
        match index.update(oid, old, new) {
            Ok(_) => {
                pts[oid as usize] = new;
                applied += 1;
            }
            Err(CoreError::Storage(_)) => {
                errors += 1;
                // The update may have half-applied (deleted but not
                // re-inserted). Resynchronize our shadow copy with the
                // index: whichever of old/new is present wins; a lost
                // object is re-inserted — exactly what a monitoring
                // application's retry would do.
                disk.clear_faults();
                if index.point_query(new).unwrap().contains(&oid) {
                    pts[oid as usize] = new;
                } else if !index.point_query(old).unwrap().contains(&oid) {
                    index.insert(oid, old).unwrap_or_else(|e| {
                        panic!("re-insert of {oid} failed: {e}");
                    });
                }
            }
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(errors > 0, "fault windows must trip some updates");
    assert!(applied > 3000, "most updates must succeed");
    index.validate().unwrap();
    assert_eq!(index.len(), pts.len() as u64);
}
