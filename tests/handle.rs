//! The redesigned public surface: `IndexBuilder` + the clonable `Bur`
//! handle, mixed-op `Batch` writes, `CommitTicket` durability acks and
//! streaming `QueryCursor` results.
//!
//! The load-bearing contracts under test:
//!
//! * a durable mixed batch of N operations emits exactly **one** WAL
//!   group commit record, and `CommitTicket::wait` returns only once
//!   the durable LSN covers the batch (the hard ack under
//!   `SyncPolicy::Async`);
//! * `Batch::apply` is observation-equivalent to the same operations
//!   applied sequentially — length, query results and hash-index
//!   agreement (`validate`) — for every chunking of the stream;
//! * a power cut mid-batch recovers **all or nothing** per group
//!   commit record;
//! * a handle cloned across 8 threads keeps every invariant.

mod common;

use bur::prelude::*;
use bur::storage::{FaultKind, FaultyDisk, MemDisk};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

const PAGE: usize = 1024;

/// Durable options that never checkpoint mid-test (so commit-record
/// counting is exact) unless a cadence is given.
fn durable_opts(sync: SyncPolicy, checkpoint_every: u64) -> IndexOptions {
    IndexOptions::generalized().with_durability(Durability::Wal(WalOptions {
        sync,
        checkpoint_every,
        ..WalOptions::default()
    }))
}

// ---- acceptance: one commit record per batch + ticketed hard ack ---------

#[test]
fn durable_mixed_batch_emits_exactly_one_commit_record() {
    for sync in [SyncPolicy::EveryCommit, SyncPolicy::Async] {
        let bur = IndexBuilder::with_options(durable_opts(sync, u64::MAX))
            .build()
            .unwrap();
        // Seed objects through one batch.
        let mut seed = Batch::new();
        for oid in 0..64u64 {
            seed.insert(
                oid,
                Point::new((oid % 8) as f32 / 8.0, (oid / 8) as f32 / 8.0),
            );
        }
        bur.apply(&seed).unwrap().wait().unwrap();

        let before = bur.wal_stats().unwrap().commits;
        // A mixed batch: updates, an insert, a delete, a missed delete.
        let mut batch = Batch::new();
        for oid in 0..24u64 {
            let old = Point::new((oid % 8) as f32 / 8.0, (oid / 8) as f32 / 8.0);
            batch.update(oid, old, Point::new(old.x + 0.01, old.y + 0.01));
        }
        batch.insert(900, Point::new(0.95, 0.95));
        batch.delete(63, Point::new(7.0 / 8.0, 7.0 / 8.0));
        batch.delete(901, Point::new(0.5, 0.5)); // not indexed: counted, not an error
        let ticket = bur.apply(&batch).unwrap();

        let after = bur.wal_stats().unwrap().commits;
        assert_eq!(
            after - before,
            1,
            "a mixed batch of {} ops must emit exactly one commit record under {sync:?}",
            batch.len()
        );
        let report = ticket.report();
        assert_eq!(report.applied, 27);
        assert_eq!(report.updated, 24);
        assert_eq!(report.inserted, 1);
        assert_eq!(report.deleted, 1);
        assert_eq!(report.missing_deletes, 1);

        // The ticketed wait is the hard ack: afterwards the durable LSN
        // covers the batch's commit record.
        let watermark = ticket.wait().unwrap();
        assert!(
            watermark >= ticket.lsn(),
            "wait returned before the durable LSN covered the batch: {watermark} < {}",
            ticket.lsn()
        );
        assert!(ticket.is_durable());
        assert!(bur.wal_stats().unwrap().durable_lsn >= ticket.lsn());
        bur.validate().unwrap();
    }
}

#[test]
fn batch_error_reports_position_and_keeps_prefix() {
    let bur = IndexBuilder::with_options(durable_opts(SyncPolicy::EveryCommit, u64::MAX))
        .build()
        .unwrap();
    bur.insert(7, Point::new(0.5, 0.5)).unwrap();
    let before = bur.wal_stats().unwrap().commits;

    let mut batch = Batch::new();
    batch
        .insert(1, Point::new(0.1, 0.1))
        .insert(2, Point::new(0.2, 0.2))
        .insert(7, Point::new(0.7, 0.7)) // duplicate: fails here
        .insert(3, Point::new(0.3, 0.3)); // never applied
    let err = bur.apply(&batch).unwrap_err();
    let CoreError::Batch { op_index, source } = err else {
        panic!("expected CoreError::Batch, got {err}");
    };
    assert_eq!(op_index, 2);
    assert!(matches!(*source, CoreError::DuplicateObject(7)));

    // The prefix stays applied and is covered by one commit record.
    assert_eq!(bur.len(), 3, "ops before the failure stay applied");
    assert_eq!(bur.count_in(&Rect::new(0.0, 0.0, 0.25, 0.25)).unwrap(), 2);
    assert_eq!(bur.wal_stats().unwrap().commits - before, 1);
    bur.validate().unwrap();
}

#[test]
fn failed_batch_drains_commit_hooks_for_its_flushed_prefix() {
    // Single-op hooks pending under commit batching plus the applied
    // prefix of a failing batch are all covered by the flush the error
    // path performs — nothing may linger in the batcher to be
    // misattributed to a later ticket.
    let bur = IndexBuilder::with_options(durable_opts(SyncPolicy::EveryCommit, u64::MAX))
        .build()
        .unwrap();
    bur.insert(7, Point::new(0.5, 0.5)).unwrap();
    bur.set_commit_batching(8).unwrap();
    bur.insert(8, Point::new(0.55, 0.5)).unwrap();
    bur.insert(9, Point::new(0.6, 0.5)).unwrap(); // 2 ops + hooks pending
    let before = bur.wal_stats().unwrap().commits;

    let mut batch = Batch::new();
    batch
        .insert(1, Point::new(0.1, 0.1))
        .insert(2, Point::new(0.2, 0.2))
        .insert(7, Point::new(0.7, 0.7)); // duplicate: fails, prefix flushed
    assert!(matches!(
        bur.apply(&batch).unwrap_err(),
        CoreError::Batch { op_index: 2, .. }
    ));

    // One record covered the 2 pending singles + the 2-op prefix ...
    assert_eq!(bur.wal_stats().unwrap().commits - before, 1);
    assert_eq!(bur.len(), 5);
    // ... and their hooks were drained with it: nothing pending.
    let (noted, drains) = bur.commit_batch_totals();
    assert_eq!(noted, 4, "2 single-op hooks + 2 batch-prefix hooks");
    assert_eq!(drains, 1);
    assert_eq!(
        bur.commit().unwrap().commit_batch().ops,
        0,
        "no hooks may linger past the error-path drain"
    );
    bur.validate().unwrap();
}

// ---- equivalence: batched == sequential ----------------------------------

#[derive(Debug, Clone, Copy)]
enum GenOp {
    Insert,
    Update,
    Delete,
}

/// Drive a seeded op stream twice — chunked into `Batch`es of the given
/// sizes on a `Bur` handle, and one `RTreeIndex` call at a time — and
/// compare every observation.
fn batched_equals_sequential(seed: u64, chunk_sizes: &[usize]) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Build the op stream against a model so every op is well-formed.
    let mut live: Vec<(u64, Point)> = Vec::new();
    let mut next_oid = 0u64;
    let total: usize = chunk_sizes.iter().sum();
    let mut ops = Vec::with_capacity(total);
    for _ in 0..total {
        let kind = match rng.random_range(0u32..10) {
            0..=4 => GenOp::Insert,
            5..=8 if !live.is_empty() => GenOp::Update,
            _ if !live.is_empty() => GenOp::Delete,
            _ => GenOp::Insert,
        };
        match kind {
            GenOp::Insert => {
                let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
                ops.push(Op::Insert {
                    oid: next_oid,
                    rect: Rect::from_point(p),
                });
                live.push((next_oid, p));
                next_oid += 1;
            }
            GenOp::Update => {
                let i = rng.random_range(0..live.len());
                let (oid, old) = live[i];
                let new = Point::new(
                    (old.x + rng.random_range(-0.1..0.1f32)).clamp(0.0, 1.0),
                    (old.y + rng.random_range(-0.1..0.1f32)).clamp(0.0, 1.0),
                );
                ops.push(Op::Update { oid, old, new });
                live[i].1 = new;
            }
            GenOp::Delete => {
                let i = rng.random_range(0..live.len());
                let (oid, position) = live.swap_remove(i);
                ops.push(Op::Delete { oid, position });
            }
        }
    }

    let batched = IndexBuilder::generalized().build().unwrap();
    let mut sequential = IndexBuilder::generalized().build_index().unwrap();

    let mut cursor = 0;
    for &size in chunk_sizes {
        let batch: Batch = ops[cursor..cursor + size].iter().copied().collect();
        batched.apply(&batch).unwrap();
        for op in &ops[cursor..cursor + size] {
            match *op {
                Op::Insert { oid, rect } => sequential.insert_rect(oid, rect).unwrap(),
                Op::Update { oid, old, new } => {
                    sequential.update(oid, old, new).unwrap();
                }
                Op::Delete { oid, position } => {
                    prop_assert!(sequential.delete(oid, position).unwrap());
                }
            }
        }
        // Observation equivalence at every batch boundary.
        prop_assert_eq!(batched.len(), sequential.len());
        cursor += size;
    }

    // Full and partial window agreement.
    for window in [
        Rect::new(0.0, 0.0, 1.0, 1.0),
        Rect::new(0.0, 0.0, 0.5, 0.5),
        Rect::new(0.25, 0.25, 0.75, 0.75),
        Rect::new(0.6, 0.1, 0.9, 0.4),
    ] {
        let mut a: Vec<u64> = batched.query(&window).unwrap().collect();
        let mut b = sequential.query(&window).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "window {} disagrees", window);
    }
    // Hash-index agreement and every structural invariant, both sides.
    batched
        .validate()
        .map_err(|e| TestCaseError::fail(format!("batched: {e}")))?;
    sequential
        .validate()
        .map_err(|e| TestCaseError::fail(format!("sequential: {e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_apply_is_observation_equivalent_to_sequential(
        seed in any::<u64>(),
        chunk_sizes in proptest::collection::vec(1usize..40, 1..12),
    ) {
        batched_equals_sequential(seed, &chunk_sizes)?;
    }
}

// ---- crash drill: all-or-nothing per group commit record -----------------

/// Each batch inserts `K` objects with contiguous ids. After a power cut
/// mid-stream (arbitrary write boundary, torn write included), recovery
/// must land on a whole number of batches — never a partial one.
#[test]
fn mid_batch_power_cut_recovers_all_or_nothing() {
    const K: usize = 8;
    for cut_after in [3u64, 17, 41, 67, 103, 151, 211, 293, 380, 477] {
        let opts = durable_opts(SyncPolicy::EveryCommit, u64::MAX);
        let inner = Arc::new(MemDisk::new(PAGE));
        let faulty = Arc::new(FaultyDisk::new(inner.clone()));
        let bur = IndexBuilder::with_options(opts)
            .disk(faulty.clone())
            .build()
            .unwrap();
        faulty.inject(FaultKind::TornWrite {
            after_writes: cut_after,
        });

        let mut acked_batches = 0u64;
        'stream: for b in 0..200u64 {
            let mut batch = Batch::new();
            for i in 0..K as u64 {
                let oid = b * K as u64 + i;
                batch.insert(
                    oid,
                    Point::new(
                        ((oid * 37) % 101) as f32 / 101.0,
                        ((oid * 61) % 103) as f32 / 103.0,
                    ),
                );
            }
            match bur.apply(&batch) {
                Ok(_) => acked_batches += 1,
                Err(_) => break 'stream, // the cut fired
            }
        }
        assert!(
            acked_batches < 200,
            "cut at {cut_after} never fired; raise the batch count"
        );
        drop(bur); // crash — only `inner` (the platter) survives

        let (recovered, _report) = IndexBuilder::generalized()
            .disk(inner)
            .recover()
            .build_with_report()
            .unwrap();
        let len = recovered.len();
        assert_eq!(
            len % K as u64,
            0,
            "cut at {cut_after}: recovered {len} objects — a partial batch \
             survived (group commit records must be all-or-nothing)"
        );
        // Every acknowledged batch except possibly the cut one is exact;
        // the batch that observed the cut has unknown outcome, everything
        // acknowledged before it must be present.
        assert!(
            len / K as u64 >= acked_batches,
            "cut at {cut_after}: {acked_batches} batches were acknowledged but only \
             {} recovered",
            len / K as u64
        );
        recovered.validate().unwrap();
    }
}

// ---- shared-handle concurrency -------------------------------------------

#[test]
fn handle_cloned_across_8_threads_passes_validate() {
    let n = 2_000u64;
    let bur = IndexBuilder::generalized().build().unwrap();
    let mut seed = Batch::with_capacity(n as usize);
    for oid in 0..n {
        seed.insert(
            oid,
            Point::new(
                ((oid * 37) % 101) as f32 / 101.0,
                ((oid * 61) % 103) as f32 / 103.0,
            ),
        );
    }
    bur.apply(&seed).unwrap();

    std::thread::scope(|s| {
        for t in 0..8u64 {
            // Clones — not references — cross the thread boundary.
            let bur = bur.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC10E + t);
                let slice = n / 8;
                let mut positions: Vec<(u64, Point)> = (t * slice..(t + 1) * slice)
                    .map(|oid| {
                        (
                            oid,
                            Point::new(
                                ((oid * 37) % 101) as f32 / 101.0,
                                ((oid * 61) % 103) as f32 / 103.0,
                            ),
                        )
                    })
                    .collect();
                for round in 0..30 {
                    if round % 3 == 0 {
                        // A batch of bottom-up updates over this slice.
                        let mut batch = Batch::new();
                        for (oid, old) in positions.iter_mut() {
                            let new = Point::new(
                                (old.x + rng.random_range(-0.01..0.01f32)).clamp(0.0, 1.0),
                                (old.y + rng.random_range(-0.01..0.01f32)).clamp(0.0, 1.0),
                            );
                            batch.update(*oid, *old, new);
                            *old = new;
                        }
                        bur.apply(&batch).unwrap();
                    } else {
                        // Single-op updates and streaming queries.
                        let (oid, old) = positions[rng.random_range(0..positions.len())];
                        let new = Point::new(
                            (old.x + 0.005).clamp(0.0, 1.0),
                            (old.y - 0.005).clamp(0.0, 1.0),
                        );
                        bur.update(oid, old, new).unwrap();
                        let i = positions.iter().position(|&(o, _)| o == oid).unwrap();
                        positions[i].1 = new;
                        let hits = bur
                            .query(&Rect::new(0.25, 0.25, 0.75, 0.75))
                            .unwrap()
                            .count();
                        assert!(hits <= n as usize);
                    }
                }
            });
        }
    });
    assert_eq!(bur.len(), n, "no objects may be lost");
    bur.validate().unwrap();
    assert_eq!(bur.lock_manager().locked_granules(), 0);
}

// ---- cursors -------------------------------------------------------------

#[test]
fn query_cursor_streams_and_recycles() {
    let bur = IndexBuilder::generalized().build().unwrap();
    let mut batch = Batch::new();
    for oid in 0..100u64 {
        batch.insert(oid, Point::new(oid as f32 / 100.0, 0.5));
    }
    bur.apply(&batch).unwrap();

    let window = Rect::new(0.0, 0.0, 0.495, 1.0);
    let cursor = bur.query(&window).unwrap();
    assert_eq!(cursor.len(), 50);
    let mut ids: Vec<u64> = cursor.collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..50).collect::<Vec<u64>>());

    // remaining()/collect_into on a half-consumed cursor.
    let mut cursor = bur.query(&window).unwrap();
    let first = cursor.next().unwrap();
    assert_eq!(cursor.len(), 49);
    assert!(!cursor.remaining().contains(&first));
    let mut rest = Vec::new();
    cursor.collect_into(&mut rest);
    assert_eq!(rest.len(), 49);

    // Heavy reuse keeps answers exact (buffers recycle under the hood).
    for i in 0..200usize {
        let w = Rect::new(0.0, 0.0, (i % 100) as f32 / 100.0, 1.0);
        let expected = (0..100u64)
            .filter(|&oid| w.contains_point(&Point::new(oid as f32 / 100.0, 0.5)))
            .count();
        assert_eq!(bur.count_in(&w).unwrap(), expected);
    }

    // kNN streams too, closest first.
    let nn: Vec<_> = bur.nearest(Point::new(0.31, 0.5), 3).unwrap().collect();
    assert_eq!(nn.len(), 3);
    assert_eq!(nn[0].oid, 31);
    assert!(nn[0].distance <= nn[1].distance && nn[1].distance <= nn[2].distance);
}

// ---- builder/open interop with files -------------------------------------

#[test]
fn builder_file_roundtrip_through_bur() {
    let dir = common::TempDir::new("handle");
    let path = dir.file("bur.idx");
    {
        let bur = IndexBuilder::generalized().file(&path).build().unwrap();
        let mut batch = Batch::new();
        for oid in 0..50u64 {
            batch.insert(oid, Point::new(oid as f32 / 50.0, 0.5));
        }
        bur.apply(&batch).unwrap();
        bur.persist().unwrap();
    }
    let bur = IndexBuilder::generalized()
        .file(&path)
        .open()
        .build()
        .unwrap();
    assert_eq!(bur.len(), 50);
    assert!(bur.recovery_report().is_none(), "clean non-durable open");
    bur.validate().unwrap();
}

#[test]
fn async_ticket_ack_survives_crash_boundary() {
    // Everything acked by a ticket wait must be on the platter: cut the
    // power right after the ack and recover.
    let opts = durable_opts(SyncPolicy::Async, u64::MAX);
    let inner = Arc::new(MemDisk::new(PAGE));
    let bur = IndexBuilder::with_options(opts)
        .disk(inner.clone())
        .build()
        .unwrap();
    let mut batch = Batch::new();
    for oid in 0..40u64 {
        batch.insert(
            oid,
            Point::new((oid % 10) as f32 / 10.0, (oid / 10) as f32 / 10.0),
        );
    }
    let ticket = bur.apply(&batch).unwrap();
    ticket.wait().unwrap(); // hard ack
    drop(bur); // crash with no shutdown sync beyond the ack

    let (recovered, report) = IndexBuilder::generalized()
        .disk(inner)
        .recover()
        .build_with_report()
        .unwrap();
    assert_eq!(recovered.len(), 40, "acked batch lost after the ack");
    assert!(report.unwrap().committed_ops >= 1);
    recovered.validate().unwrap();
}
