//! The concurrent `Bur::apply` write path under real parallelism.
//!
//! Three contracts from the latch-per-page rework:
//!
//! 1. batches on disjoint leaf granules physically overlap (the
//!    handle's in-flight high watermark proves two batches were inside
//!    the write path at the same moment);
//! 2. overlapping-granule batches — several threads hammering objects
//!    interleaved on the same leaves — still produce exactly the state
//!    a per-object sequential oracle predicts, whether a batch ran
//!    concurrently or escalated;
//! 3. a crash leaves every concurrent batch all-or-nothing: one group
//!    commit record per batch, so recovery lands each writer's object
//!    set on a single batch boundary.

use bur::prelude::*;
use bur::storage::{FaultKind, FaultyDisk, MemDisk};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Deterministic home position for an object: a jittered grid point.
fn home(oid: u64) -> Point {
    Point::new(
        (oid % 64) as f32 / 64.0 + 0.001,
        (oid / 64) as f32 / 64.0 + 0.001,
    )
}

/// A durable GBU handle over `n` grid objects (one batch populate).
fn durable_grid(n: u64) -> Bur {
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    let bur = IndexBuilder::with_options(opts).build().unwrap();
    let mut batch = Batch::new();
    for oid in 0..n {
        batch.insert(oid, home(oid));
    }
    bur.apply(&batch).unwrap();
    bur
}

#[test]
fn disjoint_granule_batches_overlap_physically() {
    const N: u64 = 4_000;
    const THREADS: usize = 8;
    const ROUNDS: usize = 60;
    let bur = durable_grid(N);

    // Partition the objects by the leaf that holds them, then deal the
    // leaves round-robin to the writers: every thread's batches stay on
    // granules no other thread touches, so nothing ever escalates or
    // conflicts and the batches are free to overlap.
    let mut by_leaf: HashMap<u32, Vec<u64>> = HashMap::new();
    bur.with_index(|index| {
        for oid in 0..N {
            let pid = index.locate_leaf(oid).unwrap().expect("indexed");
            by_leaf.entry(pid).or_default().push(oid);
        }
    });
    let mut owned: Vec<Vec<u64>> = vec![Vec::new(); THREADS];
    for (i, leaf) in by_leaf.into_values().enumerate() {
        owned[i % THREADS].extend(leaf);
    }

    let mut expected: Vec<(u64, Point)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = owned
            .iter()
            .map(|oids| {
                let bur = &bur;
                let oids = &oids[..oids.len().min(128)];
                s.spawn(move || {
                    let mut pos: Vec<Point> = oids.iter().map(|&o| home(o)).collect();
                    for round in 0..ROUNDS {
                        // A tiny zigzag: stays inside (or a hair outside)
                        // the home leaf's MBR, so the plans are leaf-local.
                        let dx = if round % 2 == 0 { 0.0015 } else { -0.0015 };
                        let mut batch = Batch::new();
                        for (i, &oid) in oids.iter().enumerate() {
                            let new = Point::new(pos[i].x + dx, pos[i].y);
                            batch.update(oid, pos[i], new);
                            pos[i] = new;
                        }
                        bur.apply(&batch).unwrap().wait().unwrap();
                    }
                    oids.iter().copied().zip(pos).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            expected.extend(h.join().unwrap());
        }
    });

    assert!(
        bur.peak_concurrent_batches() >= 2,
        "disjoint batches never overlapped (peak {})",
        bur.peak_concurrent_batches()
    );
    assert_eq!(bur.len(), N);
    bur.validate().unwrap();
    assert_eq!(bur.lock_manager().locked_granules(), 0);
    let total: u64 = expected.len() as u64 * ROUNDS as u64;
    assert_eq!(bur.with_op_stats(|s| s.snapshot()).updates, total);
    bur.with_index(|index| {
        for &(oid, p) in &expected {
            assert!(
                index.point_query(p).unwrap().contains(&oid),
                "object {oid} not at its final position"
            );
        }
    });
}

/// Number of writer threads in the oracle proptest; object `oid` is
/// owned by thread `oid % WRITERS`, so ownership is disjoint while the
/// *leaves* are shared by every thread.
const WRITERS: u64 = 3;
const ORACLE_OBJECTS: u64 = 60 * WRITERS;

fn run_oracle_case(opts: IndexOptions, moves: &[(u8, (f32, f32))]) -> Result<(), TestCaseError> {
    let bur = IndexBuilder::with_options(opts).build().unwrap();
    let mut batch = Batch::new();
    for oid in 0..ORACLE_OBJECTS {
        batch.insert(oid, home(oid));
    }
    bur.apply(&batch).unwrap();

    // Deal each generated move to its owner thread. A move may target
    // any owned object, repeat objects within one batch, or land far
    // away (forcing the batch to escalate) — the adversarial mix.
    let mut per_thread: Vec<Vec<(u64, Point)>> = vec![Vec::new(); WRITERS as usize];
    for &(k, (x, y)) in moves {
        let t = u64::from(k) % WRITERS;
        let oid = (u64::from(k) % 60) * WRITERS + t;
        per_thread[t as usize].push((oid, Point::new(x, y)));
    }

    std::thread::scope(|s| {
        for (t, moves) in per_thread.iter().enumerate() {
            let bur = &bur;
            s.spawn(move || {
                let mut pos: HashMap<u64, Point> = HashMap::new();
                for chunk in moves.chunks(8) {
                    let mut batch = Batch::new();
                    for &(oid, new) in chunk {
                        let old = pos.get(&oid).copied().unwrap_or_else(|| home(oid));
                        batch.update(oid, old, new);
                        pos.insert(oid, new);
                    }
                    let report = bur.apply(&batch).unwrap();
                    assert_eq!(report.report().applied as usize, chunk.len(), "thread {t}");
                }
            });
        }
    });

    // The oracle: each object sits exactly at its owner's last move.
    let mut expect: Vec<Point> = (0..ORACLE_OBJECTS).map(home).collect();
    for moves in &per_thread {
        for &(oid, p) in moves {
            expect[oid as usize] = p;
        }
    }
    bur.validate()
        .map_err(|e| TestCaseError::fail(format!("invariant violated: {e}")))?;
    prop_assert_eq!(bur.len(), ORACLE_OBJECTS);
    let world = Rect::new(-1.0, -1.0, 2.0, 2.0);
    let mut ids: Vec<u64> = bur.query(&world).unwrap().collect();
    ids.sort_unstable();
    ids.dedup();
    prop_assert_eq!(
        ids.len() as u64,
        ORACLE_OBJECTS,
        "object lost or duplicated"
    );
    bur.with_index(|index| {
        for (oid, p) in expect.iter().enumerate() {
            prop_assert!(
                index.point_query(*p).unwrap().contains(&(oid as u64)),
                "object {} not at the oracle position {:?}",
                oid,
                p
            );
        }
        Ok(())
    })?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn overlapping_concurrent_applies_match_oracle_lbu(
        moves in proptest::collection::vec(
            (any::<u8>(), (0.0f32..1.0, 0.0f32..1.0)), 1..150),
    ) {
        run_oracle_case(IndexOptions::localized(), &moves)?;
    }

    #[test]
    fn overlapping_concurrent_applies_match_oracle_gbu(
        moves in proptest::collection::vec(
            (any::<u8>(), (0.0f32..1.0, 0.0f32..1.0)), 1..150),
    ) {
        run_oracle_case(IndexOptions::generalized(), &moves)?;
    }
}

#[test]
fn concurrent_batches_recover_all_or_nothing() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 25;
    const BATCHES: usize = 30;
    let n = THREADS * PER_THREAD;
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));

    for cut in [60u64, 200, 500] {
        let inner = Arc::new(MemDisk::new(1024));
        let faulty = Arc::new(FaultyDisk::new(inner.clone()));
        let bur = IndexBuilder::with_options(opts)
            .disk(faulty.clone())
            .build()
            .unwrap();
        // Per-object position history: history[oid][b] is where batch b
        // of the owner thread put it (b = 0 is the insert).
        let mut history: Vec<Vec<Point>> = (0..n).map(|oid| vec![home(oid)]).collect();
        let mut rng = StdRng::seed_from_u64(0xA110 + cut);
        for h in history.iter_mut() {
            for _ in 0..BATCHES {
                let last = *h.last().unwrap();
                h.push(Point::new(
                    (last.x + rng.random_range(-0.03..0.03f32)).clamp(0.0, 1.0),
                    (last.y + rng.random_range(-0.03..0.03f32)).clamp(0.0, 1.0),
                ));
            }
        }
        let mut batch = Batch::new();
        for oid in 0..n {
            batch.insert(oid, home(oid));
        }
        bur.apply(&batch).unwrap();
        bur.checkpoint().unwrap(); // the inserts are a durable floor

        // Power cut after `cut` more disk writes; each thread applies
        // whole-ownership batches until it observes the cut. Every Ok
        // under EveryCommit is a durable, synced group commit record.
        faulty.inject(FaultKind::TornWrite { after_writes: cut });
        let mut acked: Vec<usize> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let bur = &bur;
                    let history = &history;
                    s.spawn(move || {
                        let oids: Vec<u64> = (t * PER_THREAD..(t + 1) * PER_THREAD).collect();
                        let mut ok = 0usize;
                        for b in 1..=BATCHES {
                            let mut batch = Batch::new();
                            for &oid in &oids {
                                batch.update(
                                    oid,
                                    history[oid as usize][b - 1],
                                    history[oid as usize][b],
                                );
                            }
                            match bur.apply(&batch) {
                                Ok(_) => ok = b,
                                Err(_) => break,
                            }
                        }
                        ok
                    })
                })
                .collect();
            for h in handles {
                acked.push(h.join().unwrap());
            }
        });
        drop(bur); // crash

        let (recovered, _report) = IndexBuilder::with_options(opts)
            .disk(inner)
            .recover()
            .build_index_with_report()
            .unwrap();
        recovered.validate().unwrap();
        assert_eq!(recovered.len(), n, "cut {cut}");
        for (t, &acked_t) in acked.iter().enumerate() {
            // All-or-nothing per batch: every object of the thread must
            // sit on the same batch boundary — no torn batches — and the
            // boundary may not be older than the last acknowledged batch.
            let oids: Vec<u64> = (t as u64 * PER_THREAD..(t as u64 + 1) * PER_THREAD).collect();
            let landed = (0..=BATCHES).rev().find(|&b| {
                oids.iter().all(|&oid| {
                    recovered
                        .point_query(history[oid as usize][b])
                        .unwrap()
                        .contains(&oid)
                })
            });
            let Some(landed) = landed else {
                panic!("cut {cut}: thread {t} recovered to a torn batch");
            };
            assert!(
                landed >= acked_t,
                "cut {cut}: thread {t} lost acknowledged batches \
                 (landed {landed} < acked {acked_t})"
            );
        }
    }
}
