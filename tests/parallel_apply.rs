//! The concurrent `Bur::apply` write path under real parallelism.
//!
//! Four contracts from the latch-per-page rework and the coupled
//! structural path:
//!
//! 1. batches on disjoint leaf granules physically overlap (the
//!    handle's in-flight high watermark proves two batches were inside
//!    the write path at the same moment) — and since the coupled path,
//!    that includes *structural* batches of inserts and deletes, which
//!    stay on the shared side instead of escalating;
//! 2. overlapping-granule batches — several threads hammering objects
//!    interleaved on the same leaves, with mixed inserts, deletes and
//!    updates — still produce exactly the state a per-object sequential
//!    oracle predicts, whether a batch ran concurrently, triggered a
//!    make-room split, or escalated;
//! 3. a crash leaves every concurrent batch all-or-nothing: one group
//!    commit record per batch, so recovery lands each writer's object
//!    set on a single batch boundary;
//! 4. a power cut anywhere around a make-room (preparatory) split —
//!    including between the parent-entry RMW and the leaf writes of the
//!    batch that rode on it — recovers to a valid tree with every
//!    acknowledged insert present (benign slack composes with splits).

use bur::prelude::*;
use bur::storage::{FaultKind, FaultyDisk, MemDisk};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Deterministic home position for an object: a jittered grid point.
fn home(oid: u64) -> Point {
    Point::new(
        (oid % 64) as f32 / 64.0 + 0.001,
        (oid / 64) as f32 / 64.0 + 0.001,
    )
}

/// A durable GBU handle over `n` grid objects (one batch populate).
fn durable_grid(n: u64) -> Bur {
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    let bur = IndexBuilder::with_options(opts).build().unwrap();
    let mut batch = Batch::new();
    for oid in 0..n {
        batch.insert(oid, home(oid));
    }
    bur.apply(&batch).unwrap();
    bur
}

#[test]
fn disjoint_granule_batches_overlap_physically() {
    const N: u64 = 4_000;
    const THREADS: usize = 8;
    const ROUNDS: usize = 60;
    let bur = durable_grid(N);

    // Partition the objects by the leaf that holds them, then deal the
    // leaves round-robin to the writers: every thread's batches stay on
    // granules no other thread touches, so nothing ever escalates or
    // conflicts and the batches are free to overlap.
    let mut by_leaf: HashMap<u32, Vec<u64>> = HashMap::new();
    bur.with_index(|index| {
        for oid in 0..N {
            let pid = index.locate_leaf(oid).unwrap().expect("indexed");
            by_leaf.entry(pid).or_default().push(oid);
        }
    });
    let mut owned: Vec<Vec<u64>> = vec![Vec::new(); THREADS];
    for (i, leaf) in by_leaf.into_values().enumerate() {
        owned[i % THREADS].extend(leaf);
    }

    let mut expected: Vec<(u64, Point)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = owned
            .iter()
            .map(|oids| {
                let bur = &bur;
                let oids = &oids[..oids.len().min(128)];
                s.spawn(move || {
                    let mut pos: Vec<Point> = oids.iter().map(|&o| home(o)).collect();
                    for round in 0..ROUNDS {
                        // A tiny zigzag: stays inside (or a hair outside)
                        // the home leaf's MBR, so the plans are leaf-local.
                        let dx = if round % 2 == 0 { 0.0015 } else { -0.0015 };
                        let mut batch = Batch::new();
                        for (i, &oid) in oids.iter().enumerate() {
                            let new = Point::new(pos[i].x + dx, pos[i].y);
                            batch.update(oid, pos[i], new);
                            pos[i] = new;
                        }
                        bur.apply(&batch).unwrap().wait().unwrap();
                    }
                    oids.iter().copied().zip(pos).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            expected.extend(h.join().unwrap());
        }
    });

    assert!(
        bur.peak_concurrent_batches() >= 2,
        "disjoint batches never overlapped (peak {})",
        bur.peak_concurrent_batches()
    );
    assert_eq!(bur.len(), N);
    bur.validate().unwrap();
    assert_eq!(bur.lock_manager().locked_granules(), 0);
    let total: u64 = expected.len() as u64 * ROUNDS as u64;
    assert_eq!(bur.with_op_stats(|s| s.snapshot()).updates, total);
    bur.with_index(|index| {
        for &(oid, p) in &expected {
            assert!(
                index.point_query(p).unwrap().contains(&oid),
                "object {oid} not at its final position"
            );
        }
    });
}

#[test]
fn structural_batches_overlap_without_escalating() {
    const N: u64 = 4_000;
    const THREADS: u64 = 8;
    const ROUNDS: usize = 40;
    const PER_BATCH: u64 = 16;
    let bur = durable_grid(N);
    let base_escalations = bur.with_op_stats(|s| s.snapshot()).escalations;

    // Each thread owns a horizontal strip of the unit square and churns
    // fresh objects inside it: a batch of inserts, then a batch deleting
    // the same objects. Strips are spatially disjoint, so the batches
    // land on disjoint leaves and the coupled path lets them overlap —
    // the workload that escalated wholesale before make-room splits and
    // shared-path inserts/deletes existed.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let bur = &bur;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let mut ins = Batch::new();
                    let mut del = Batch::new();
                    for i in 0..PER_BATCH {
                        let oid = 1_000_000 + t * 1_000_000 + round as u64 * PER_BATCH + i;
                        let p = Point::new(
                            (i as f32 + 0.37) / PER_BATCH as f32,
                            (t as f32 + (round % 7) as f32 / 8.0 + 0.05) / THREADS as f32,
                        );
                        ins.insert(oid, p);
                        del.delete(oid, p);
                    }
                    bur.apply(&ins).unwrap();
                    bur.apply(&del).unwrap();
                }
            });
        }
    });

    assert!(
        bur.peak_concurrent_batches() >= 2,
        "structural batches never overlapped (peak {})",
        bur.peak_concurrent_batches()
    );
    let stats = bur.with_op_stats(|s| s.snapshot());
    let total_batches = THREADS * ROUNDS as u64 * 2;
    let escalated = stats.escalations - base_escalations;
    assert!(
        escalated <= total_batches / 10,
        "structural batches escalated too often: {escalated} of {total_batches}"
    );
    assert_eq!(bur.len(), N, "churned objects must all be gone");
    assert_eq!(stats.inserts, N + THREADS * ROUNDS as u64 * PER_BATCH);
    assert_eq!(stats.deletes, THREADS * ROUNDS as u64 * PER_BATCH);
    bur.validate().unwrap();
    assert_eq!(bur.lock_manager().locked_granules(), 0);
}

#[test]
fn peak_concurrent_batches_resets_between_runs() {
    let bur = durable_grid(200);
    let mut batch = Batch::new();
    for oid in 0..50u64 {
        batch.update(oid, home(oid), Point::new(home(oid).x + 0.001, home(oid).y));
    }
    bur.apply(&batch).unwrap();
    assert!(
        bur.peak_concurrent_batches() >= 1,
        "a shared-path batch must register in the watermark"
    );
    bur.reset_peak_concurrent_batches();
    assert_eq!(
        bur.peak_concurrent_batches(),
        0,
        "reset with no batch in flight must zero the watermark"
    );
    let mut batch = Batch::new();
    for oid in 0..50u64 {
        batch.update(oid, Point::new(home(oid).x + 0.001, home(oid).y), home(oid));
    }
    bur.apply(&batch).unwrap();
    assert!(
        bur.peak_concurrent_batches() >= 1,
        "the watermark must accumulate again after a reset"
    );
}

/// Number of writer threads in the oracle proptest; object `oid` is
/// owned by thread `oid % WRITERS`, so ownership is disjoint while the
/// *leaves* are shared by every thread.
const WRITERS: u64 = 3;
const ORACLE_OBJECTS: u64 = 60 * WRITERS;

fn run_oracle_case(opts: IndexOptions, moves: &[(u8, (f32, f32))]) -> Result<(), TestCaseError> {
    let bur = IndexBuilder::with_options(opts).build().unwrap();
    let mut batch = Batch::new();
    for oid in 0..ORACLE_OBJECTS {
        batch.insert(oid, home(oid));
    }
    bur.apply(&batch).unwrap();

    // Deal each generated move to its owner thread. A move may target
    // any owned object, repeat objects within one batch, or land far
    // away (forcing the batch to escalate) — the adversarial mix.
    let mut per_thread: Vec<Vec<(u64, Point)>> = vec![Vec::new(); WRITERS as usize];
    for &(k, (x, y)) in moves {
        let t = u64::from(k) % WRITERS;
        let oid = (u64::from(k) % 60) * WRITERS + t;
        per_thread[t as usize].push((oid, Point::new(x, y)));
    }

    std::thread::scope(|s| {
        for (t, moves) in per_thread.iter().enumerate() {
            let bur = &bur;
            s.spawn(move || {
                let mut pos: HashMap<u64, Point> = HashMap::new();
                for chunk in moves.chunks(8) {
                    let mut batch = Batch::new();
                    for &(oid, new) in chunk {
                        let old = pos.get(&oid).copied().unwrap_or_else(|| home(oid));
                        batch.update(oid, old, new);
                        pos.insert(oid, new);
                    }
                    let report = bur.apply(&batch).unwrap();
                    assert_eq!(report.report().applied as usize, chunk.len(), "thread {t}");
                }
            });
        }
    });

    // The oracle: each object sits exactly at its owner's last move.
    let mut expect: Vec<Point> = (0..ORACLE_OBJECTS).map(home).collect();
    for moves in &per_thread {
        for &(oid, p) in moves {
            expect[oid as usize] = p;
        }
    }
    bur.validate()
        .map_err(|e| TestCaseError::fail(format!("invariant violated: {e}")))?;
    prop_assert_eq!(bur.len(), ORACLE_OBJECTS);
    let world = Rect::new(-1.0, -1.0, 2.0, 2.0);
    let mut ids: Vec<u64> = bur.query(&world).unwrap().collect();
    ids.sort_unstable();
    ids.dedup();
    prop_assert_eq!(
        ids.len() as u64,
        ORACLE_OBJECTS,
        "object lost or duplicated"
    );
    bur.with_index(|index| {
        for (oid, p) in expect.iter().enumerate() {
            prop_assert!(
                index.point_query(*p).unwrap().contains(&(oid as u64)),
                "object {} not at the oracle position {:?}",
                oid,
                p
            );
        }
        Ok(())
    })?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn overlapping_concurrent_applies_match_oracle_lbu(
        moves in proptest::collection::vec(
            (any::<u8>(), (0.0f32..1.0, 0.0f32..1.0)), 1..150),
    ) {
        run_oracle_case(IndexOptions::localized(), &moves)?;
    }

    #[test]
    fn overlapping_concurrent_applies_match_oracle_gbu(
        moves in proptest::collection::vec(
            (any::<u8>(), (0.0f32..1.0, 0.0f32..1.0)), 1..150),
    ) {
        run_oracle_case(IndexOptions::generalized(), &moves)?;
    }
}

/// Writer threads in the mixed structural oracle proptest.
const MIXED_WRITERS: u64 = 8;
/// Objects per thread in the mixed proptest.
const MIXED_PER_THREAD: u64 = 24;

/// Replay a generated stream of mixed operations — updates, deletes and
/// (re-)inserts — through 8 concurrent writers, then compare against a
/// sequential per-object oracle. Thread `t` owns the objects with
/// `oid % MIXED_WRITERS == t`, so the final state of each object is
/// determined by its owner's stream alone, while the *leaves* (and the
/// make-room/escalation machinery) are shared by everybody.
fn run_mixed_oracle_case(
    opts: IndexOptions,
    ops: &[(u8, u8, (f32, f32))],
) -> Result<(), TestCaseError> {
    let n = MIXED_WRITERS * MIXED_PER_THREAD;
    let bur = IndexBuilder::with_options(opts).build().unwrap();
    let mut batch = Batch::new();
    for oid in 0..n {
        batch.insert(oid, home(oid));
    }
    bur.apply(&batch).unwrap();

    // Deal each generated op to its owner thread, resolving it against
    // the object's tracked state so every batch is well-formed (updates
    // of absent objects become inserts, inserts of present objects
    // become updates; deletes of absent objects stay in — they exercise
    // the missing-delete path).
    #[derive(Clone, Copy)]
    enum MixedOp {
        Update(u64, Point, Point),
        Insert(u64, Point),
        Delete(u64, Point),
        MissingDelete(u64),
    }
    let mut per_thread: Vec<Vec<MixedOp>> = vec![Vec::new(); MIXED_WRITERS as usize];
    let mut present: Vec<Option<Point>> = (0..n).map(|oid| Some(home(oid))).collect();
    for &(k, kind, (x, y)) in ops {
        let t = u64::from(k) % MIXED_WRITERS;
        let oid = (u64::from(k) % MIXED_PER_THREAD) * MIXED_WRITERS + t;
        let new = Point::new(x, y);
        let op = match (kind % 3, present[oid as usize]) {
            (0, Some(cur)) | (2, Some(cur)) => {
                present[oid as usize] = Some(new);
                MixedOp::Update(oid, cur, new)
            }
            (0, None) | (2, None) => {
                present[oid as usize] = Some(new);
                MixedOp::Insert(oid, new)
            }
            (1, Some(cur)) => {
                present[oid as usize] = None;
                MixedOp::Delete(oid, cur)
            }
            (1, None) => MixedOp::MissingDelete(oid),
            _ => unreachable!(),
        };
        per_thread[t as usize].push(op);
    }

    std::thread::scope(|s| {
        for (t, thread_ops) in per_thread.iter().enumerate() {
            let bur = &bur;
            s.spawn(move || {
                for chunk in thread_ops.chunks(6) {
                    let mut batch = Batch::new();
                    for op in chunk {
                        match *op {
                            MixedOp::Update(oid, old, new) => batch.update(oid, old, new),
                            MixedOp::Insert(oid, p) => batch.insert(oid, p),
                            MixedOp::Delete(oid, p) => batch.delete(oid, p),
                            MixedOp::MissingDelete(oid) => batch.delete(oid, Point::new(7.0, 7.0)),
                        };
                    }
                    let ticket = bur.apply(&batch).unwrap();
                    assert_eq!(ticket.report().applied as usize, chunk.len(), "thread {t}");
                }
            });
        }
    });

    bur.validate()
        .map_err(|e| TestCaseError::fail(format!("invariant violated: {e}")))?;
    let alive = present.iter().flatten().count() as u64;
    prop_assert_eq!(bur.len(), alive, "object count diverged from the oracle");
    let world = Rect::new(-1.0, -1.0, 8.0, 8.0);
    let mut ids: Vec<u64> = bur.query(&world).unwrap().collect();
    ids.sort_unstable();
    ids.dedup();
    prop_assert_eq!(ids.len() as u64, alive, "object lost or duplicated");
    bur.with_index(|index| {
        for (oid, state) in present.iter().enumerate() {
            let oid = oid as u64;
            match state {
                Some(p) => prop_assert!(
                    index.point_query(*p).unwrap().contains(&oid),
                    "object {} not at the oracle position {:?}",
                    oid,
                    p
                ),
                None => prop_assert!(!ids.contains(&oid), "deleted object {} still indexed", oid),
            }
        }
        Ok(())
    })?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn mixed_structural_applies_match_oracle_gbu(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), (0.0f32..1.0, 0.0f32..1.0)), 1..200),
    ) {
        run_mixed_oracle_case(IndexOptions::generalized(), &ops)?;
    }

    #[test]
    fn mixed_structural_applies_match_oracle_lbu(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), (0.0f32..1.0, 0.0f32..1.0)), 1..200),
    ) {
        run_mixed_oracle_case(IndexOptions::localized(), &ops)?;
    }
}

/// Power-cut sweep through make-room (preparatory) splits: clustered
/// insert batches drive leaves to capacity so the shared path keeps
/// splitting ahead of itself, and the cut lands at every stage of the
/// pipeline — inside the split's own commit, between it and the riding
/// batch, and between the batch's parent-entry RMW and its leaf writes.
/// Recovery must always produce a valid tree containing every
/// acknowledged insert (benign slack composes with splits).
#[test]
fn make_room_splits_survive_power_cuts() {
    const BATCHES: u64 = 40;
    const PER_BATCH: u64 = 8;
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));

    // Clustered positions: consecutive oids crowd a few tight spots, so
    // leaves fill and the make-room path fires repeatedly.
    let spot = |oid: u64| {
        let cluster = (oid / 64) % 4;
        Point::new(
            0.2 + cluster as f32 * 0.2 + (oid % 8) as f32 * 1e-4,
            0.5 + ((oid / 8) % 8) as f32 * 1e-4,
        )
    };

    // Control run (no faults): this workload must actually exercise the
    // make-room path on the shared side, otherwise the sweep proves
    // nothing.
    {
        let bur = IndexBuilder::with_options(opts).build().unwrap();
        let mut oid = 0u64;
        for _ in 0..BATCHES {
            let mut batch = Batch::new();
            for _ in 0..PER_BATCH {
                batch.insert(oid, spot(oid));
                oid += 1;
            }
            bur.apply(&batch).unwrap();
        }
        let stats = bur.with_op_stats(|s| s.snapshot());
        assert!(
            stats.make_room_splits > 0,
            "workload never triggered a make-room split (escalations {})",
            stats.escalations
        );
        bur.validate().unwrap();
    }

    for cut in [8u64, 21, 55, 89, 144, 233, 377] {
        let inner = Arc::new(MemDisk::new(1024));
        let faulty = Arc::new(FaultyDisk::new(inner.clone()));
        let bur = IndexBuilder::with_options(opts)
            .disk(faulty.clone())
            .build()
            .unwrap();
        faulty.inject(FaultKind::TornWrite { after_writes: cut });
        let mut acked = 0u64;
        let mut oid = 0u64;
        for _ in 0..BATCHES {
            let mut batch = Batch::new();
            for _ in 0..PER_BATCH {
                batch.insert(oid, spot(oid));
                oid += 1;
            }
            // EveryCommit: an Ok apply is a synced group commit record.
            match bur.apply(&batch) {
                Ok(_) => acked = oid,
                Err(_) => break,
            }
        }
        drop(bur); // crash

        let (recovered, _report) = IndexBuilder::with_options(opts)
            .disk(inner)
            .recover()
            .build_index_with_report()
            .unwrap();
        recovered.validate().unwrap();
        assert!(
            recovered.len() >= acked,
            "cut {cut}: acknowledged inserts lost ({} < {acked})",
            recovered.len()
        );
        assert_eq!(
            recovered.len() % PER_BATCH,
            0,
            "cut {cut}: recovery landed inside a batch"
        );
        for o in 0..acked {
            assert!(
                recovered.point_query(spot(o)).unwrap().contains(&o),
                "cut {cut}: acknowledged object {o} missing after recovery"
            );
        }
    }
}

#[test]
fn concurrent_batches_recover_all_or_nothing() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 25;
    const BATCHES: usize = 30;
    let n = THREADS * PER_THREAD;
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));

    for cut in [60u64, 200, 500] {
        let inner = Arc::new(MemDisk::new(1024));
        let faulty = Arc::new(FaultyDisk::new(inner.clone()));
        let bur = IndexBuilder::with_options(opts)
            .disk(faulty.clone())
            .build()
            .unwrap();
        // Per-object position history: history[oid][b] is where batch b
        // of the owner thread put it (b = 0 is the insert).
        let mut history: Vec<Vec<Point>> = (0..n).map(|oid| vec![home(oid)]).collect();
        let mut rng = StdRng::seed_from_u64(0xA110 + cut);
        for h in history.iter_mut() {
            for _ in 0..BATCHES {
                let last = *h.last().unwrap();
                h.push(Point::new(
                    (last.x + rng.random_range(-0.03..0.03f32)).clamp(0.0, 1.0),
                    (last.y + rng.random_range(-0.03..0.03f32)).clamp(0.0, 1.0),
                ));
            }
        }
        let mut batch = Batch::new();
        for oid in 0..n {
            batch.insert(oid, home(oid));
        }
        bur.apply(&batch).unwrap();
        bur.checkpoint().unwrap(); // the inserts are a durable floor

        // Power cut after `cut` more disk writes; each thread applies
        // whole-ownership batches until it observes the cut. Every Ok
        // under EveryCommit is a durable, synced group commit record.
        faulty.inject(FaultKind::TornWrite { after_writes: cut });
        let mut acked: Vec<usize> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let bur = &bur;
                    let history = &history;
                    s.spawn(move || {
                        let oids: Vec<u64> = (t * PER_THREAD..(t + 1) * PER_THREAD).collect();
                        let mut ok = 0usize;
                        for b in 1..=BATCHES {
                            let mut batch = Batch::new();
                            for &oid in &oids {
                                batch.update(
                                    oid,
                                    history[oid as usize][b - 1],
                                    history[oid as usize][b],
                                );
                            }
                            match bur.apply(&batch) {
                                Ok(_) => ok = b,
                                Err(_) => break,
                            }
                        }
                        ok
                    })
                })
                .collect();
            for h in handles {
                acked.push(h.join().unwrap());
            }
        });
        drop(bur); // crash

        let (recovered, _report) = IndexBuilder::with_options(opts)
            .disk(inner)
            .recover()
            .build_index_with_report()
            .unwrap();
        recovered.validate().unwrap();
        assert_eq!(recovered.len(), n, "cut {cut}");
        for (t, &acked_t) in acked.iter().enumerate() {
            // All-or-nothing per batch: every object of the thread must
            // sit on the same batch boundary — no torn batches — and the
            // boundary may not be older than the last acknowledged batch.
            let oids: Vec<u64> = (t as u64 * PER_THREAD..(t as u64 + 1) * PER_THREAD).collect();
            let landed = (0..=BATCHES).rev().find(|&b| {
                oids.iter().all(|&oid| {
                    recovered
                        .point_query(history[oid as usize][b])
                        .unwrap()
                        .contains(&oid)
                })
            });
            let Some(landed) = landed else {
                panic!("cut {cut}: thread {t} recovered to a torn batch");
            };
            assert!(
                landed >= acked_t,
                "cut {cut}: thread {t} lost acknowledged batches \
                 (landed {landed} < acked {acked_t})"
            );
        }
    }
}
