//! Cross-crate persistence tests: indexes written to a file-backed disk
//! must reopen bit-identically (same answers), across strategies and
//! even across *strategy switches* (the reopen path rebuilds whatever
//! main-memory or secondary state the new strategy needs).

mod common;

use bur::prelude::*;
use common::TempDir;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

fn populate(index: &mut RTreeIndex, rng: &mut StdRng, n: u64) -> Vec<Point> {
    let mut positions = Vec::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        positions.push(p);
    }
    positions
}

fn churn(index: &mut RTreeIndex, positions: &mut [Point], rng: &mut StdRng, updates: usize) {
    for _ in 0..updates {
        let oid = rng.random_range(0..positions.len() as u64);
        let old = positions[oid as usize];
        let new = old.translated(rng.random_range(-0.05..0.05), rng.random_range(-0.05..0.05));
        index.update(oid, old, new).unwrap();
        positions[oid as usize] = new;
    }
}

fn queries_match(a: &RTreeIndex, b: &RTreeIndex, rng: &mut StdRng) {
    for _ in 0..20 {
        let x = rng.random_range(0.0..0.8);
        let y = rng.random_range(0.0..0.8);
        let w = Rect::new(x, y, x + 0.2, y + 0.2);
        let mut ra = a.query(&w).unwrap();
        let mut rb = b.query(&w).unwrap();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb, "reopened index answers differ on {w}");
    }
}

#[test]
fn persist_reopen_roundtrip_all_strategies() {
    for (name, opts) in [
        ("td", IndexOptions::top_down()),
        ("lbu", IndexOptions::localized()),
        ("gbu", IndexOptions::generalized()),
    ] {
        let dir = TempDir::new("persist");
        let path = dir.file(&format!("roundtrip-{name}.bur"));
        let mut rng = StdRng::seed_from_u64(404);
        let mut reference = IndexBuilder::with_options(opts).build_index().unwrap();
        {
            // Build the durable index and an identical in-memory twin.
            let disk = Arc::new(FileDisk::create(&path, opts.page_size).unwrap());
            let mut index = IndexBuilder::with_options(opts)
                .disk(disk)
                .build_index()
                .unwrap();
            let mut rng2 = StdRng::seed_from_u64(404);
            let positions = populate(&mut index, &mut rng, 1_500);
            let ref_positions = populate(&mut reference, &mut rng2, 1_500);
            assert_eq!(positions, ref_positions);
            churn(
                &mut index,
                &mut positions.clone(),
                &mut StdRng::seed_from_u64(9),
                2_000,
            );
            churn(
                &mut reference,
                &mut positions.clone(),
                &mut StdRng::seed_from_u64(9),
                2_000,
            );
            index.persist().unwrap();
            assert_eq!(index.len(), 1_500);
        }

        let disk = Arc::new(FileDisk::open(&path, opts.page_size).unwrap());
        let reopened = IndexBuilder::with_options(opts)
            .disk(disk)
            .open()
            .build_index()
            .unwrap();
        assert_eq!(reopened.len(), 1_500, "{name}");
        reopened
            .validate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        queries_match(&reopened, &reference, &mut StdRng::seed_from_u64(5));
    }
}

#[test]
fn reopened_index_keeps_working() {
    let opts = IndexOptions::generalized();
    let dir = TempDir::new("persist");
    let path = dir.file("keeps-working.bur");
    let mut rng = StdRng::seed_from_u64(77);
    let mut positions;
    {
        let disk = Arc::new(FileDisk::create(&path, opts.page_size).unwrap());
        let mut index = IndexBuilder::with_options(opts)
            .disk(disk)
            .build_index()
            .unwrap();
        positions = populate(&mut index, &mut rng, 2_000);
        index.persist().unwrap();
    }
    let disk = Arc::new(FileDisk::open(&path, opts.page_size).unwrap());
    let mut index = IndexBuilder::with_options(opts)
        .disk(disk)
        .open()
        .build_index()
        .unwrap();
    // Updates, inserts, deletes and queries must all work post-reopen.
    churn(&mut index, &mut positions, &mut rng, 3_000);
    for oid in 2_000..2_200u64 {
        index
            .insert(oid, Point::new(rng.random_range(0.0..1.0), 0.5))
            .unwrap();
    }
    for oid in 0..100u64 {
        assert!(index.delete(oid, positions[oid as usize]).unwrap());
    }
    assert_eq!(index.len(), 2_000 + 200 - 100);
    index.validate().unwrap();
}

#[test]
fn strategy_switch_on_reopen() {
    // Build with TD (no hash index on disk), reopen as GBU: the hash
    // index and summary must be rebuilt from the stored tree.
    let td = IndexOptions::top_down();
    let dir = TempDir::new("persist");
    let path = dir.file("switch.bur");
    let mut rng = StdRng::seed_from_u64(123);
    {
        let disk = Arc::new(FileDisk::create(&path, td.page_size).unwrap());
        let mut index = IndexBuilder::with_options(td)
            .disk(disk)
            .build_index()
            .unwrap();
        populate(&mut index, &mut rng, 1_200);
        index.persist().unwrap();
    }
    let gbu = IndexOptions::generalized();
    let disk = Arc::new(FileDisk::open(&path, gbu.page_size).unwrap());
    let mut index = IndexBuilder::with_options(gbu)
        .disk(disk)
        .open()
        .build_index()
        .unwrap();
    assert_eq!(index.len(), 1_200);
    index.validate().unwrap();
    assert!(index.hash_pages() > 0, "hash index must have been rebuilt");
    assert!(index.summary().is_some());
    // Bottom-up updates must work on the rebuilt state.
    let mut rng2 = StdRng::seed_from_u64(123);
    let mut positions = Vec::new();
    for _ in 0..1_200 {
        positions.push(Point::new(
            rng2.random_range(0.0..1.0),
            rng2.random_range(0.0..1.0),
        ));
    }
    churn(&mut index, &mut positions, &mut rng, 2_000);
    index.validate().unwrap();
}

#[test]
fn lbu_reopen_repairs_parent_pointers() {
    // Build with GBU (no parent pointers), reopen as LBU: the reopen
    // path must install leaf parent pointers before LBU updates run.
    let gbu = IndexOptions::generalized();
    let dir = TempDir::new("persist");
    let path = dir.file("parents.bur");
    let mut rng = StdRng::seed_from_u64(31);
    {
        let disk = Arc::new(FileDisk::create(&path, gbu.page_size).unwrap());
        let mut index = IndexBuilder::with_options(gbu)
            .disk(disk)
            .build_index()
            .unwrap();
        populate(&mut index, &mut rng, 1_500);
        index.persist().unwrap();
    }
    let lbu = IndexOptions::localized();
    let disk = Arc::new(FileDisk::open(&path, lbu.page_size).unwrap());
    let mut index = IndexBuilder::with_options(lbu)
        .disk(disk)
        .open()
        .build_index()
        .unwrap();
    index.validate().unwrap(); // validate() checks leaf parent pointers in LBU mode
    let mut rng2 = StdRng::seed_from_u64(31);
    let mut positions = Vec::new();
    for _ in 0..1_500 {
        positions.push(Point::new(
            rng2.random_range(0.0..1.0),
            rng2.random_range(0.0..1.0),
        ));
    }
    churn(&mut index, &mut positions, &mut rng, 2_000);
    index.validate().unwrap();
}

#[test]
fn open_rejects_garbage_and_mismatched_page_size() {
    let opts = IndexOptions::generalized();
    let dir = TempDir::new("persist");
    let path = dir.file("garbage.bur");
    {
        // A file with one zeroed page is not a bur index.
        let disk = FileDisk::create(&path, opts.page_size).unwrap();
        use bur::storage::DiskBackend;
        disk.allocate().unwrap();
    }
    let disk = Arc::new(FileDisk::open(&path, opts.page_size).unwrap());
    let err = IndexBuilder::with_options(opts)
        .disk(disk)
        .open()
        .build_index()
        .unwrap_err();
    assert!(err.to_string().contains("magic"), "got: {err}");

    // Page-size mismatch is rejected before any parsing.
    let path2 = dir.file("mismatch.bur");
    {
        let disk = Arc::new(FileDisk::create(&path2, 2048).unwrap());
        let mut o = opts;
        o.page_size = 2048;
        let mut index = IndexBuilder::with_options(o)
            .disk(disk)
            .build_index()
            .unwrap();
        index.insert(1, Point::new(0.5, 0.5)).unwrap();
        index.persist().unwrap();
    }
    let disk = Arc::new(FileDisk::open(&path2, 1024).unwrap());
    let err = IndexBuilder::with_options(opts)
        .disk(disk)
        .open()
        .build_index()
        .unwrap_err();
    assert!(err.to_string().contains("page size"), "got: {err}");
}
