//! Deterministic crash-point drills for the `bur-wal` durability layer.
//!
//! The contract under test (the acceptance criteria of the WAL work):
//! a seeded workload interrupted by a power cut at an *arbitrary write
//! boundary* — the cut write itself torn in half — recovers with
//!
//! * **zero lost acknowledged updates**: every operation that returned
//!   `Ok` before the cut is present in the recovered index,
//! * **nothing invented**: the failed operation and anything after it is
//!   absent,
//! * an intact GBU summary structure and hash index (`validate()` checks
//!   both against the tree),
//! * window and kNN answers equal to a sequential oracle.
//!
//! The drill runs for all three update strategies and a spread of cut
//! points, entirely on a `FaultyDisk`-wrapped `MemDisk`, so every run is
//! reproducible.

mod common;

use bur::prelude::*;
use bur::storage::{DiskBackend, FaultKind, FaultyDisk, MemDisk};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

const PAGE: usize = 1024;

/// Recover from a disk through the builder (the drills' shorthand; the
/// report is always present in recover mode).
fn recover_on<D: DiskBackend + 'static>(
    disk: Arc<D>,
    opts: IndexOptions,
) -> CoreResult<(RTreeIndex, RecoveryReport)> {
    let (index, report) = IndexBuilder::with_options(opts)
        .disk(disk)
        .recover()
        .build_index_with_report()?;
    Ok((index, report.expect("recover mode yields a report")))
}

/// Recover from a file through the builder.
fn recover_file(
    path: &std::path::Path,
    opts: IndexOptions,
) -> CoreResult<(RTreeIndex, RecoveryReport)> {
    let (index, report) = IndexBuilder::with_options(opts)
        .file(path)
        .recover()
        .build_index_with_report()?;
    Ok((index, report.expect("recover mode yields a report")))
}

fn durable(base: IndexOptions, checkpoint_every: u64, sync: SyncPolicy) -> IndexOptions {
    base.with_durability(Durability::Wal(WalOptions {
        sync,
        checkpoint_every,
        ..WalOptions::default()
    }))
}

/// Brute-force oracle answers over the acknowledged positions.
struct Oracle {
    positions: Vec<Point>,
}

impl Oracle {
    fn window(&self, w: &Rect) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .positions
            .iter()
            .enumerate()
            .filter(|&(_, p)| w.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn knn(&self, q: Point, k: usize) -> Vec<(u64, f32)> {
        let mut d: Vec<(u64, f32)> = self
            .positions
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64, p.distance_sq(&q).sqrt()))
            .collect();
        d.sort_by(|a, b| a.1.total_cmp(&b.1));
        d.truncate(k);
        d
    }
}

/// Run one seeded drill: populate, arm the power cut, churn until the
/// cut fires, "crash", recover from what the platter holds, and compare
/// against the oracle of acknowledged updates.
fn crash_drill(name: &str, base: IndexOptions, cut_after: u64, seed: u64) {
    let n: u64 = 500;
    let opts = durable(base, 64, SyncPolicy::EveryCommit);
    let inner = Arc::new(MemDisk::new(PAGE));
    let faulty = Arc::new(FaultyDisk::new(inner.clone()));
    let mut index = IndexBuilder::with_options(opts)
        .disk(faulty.clone())
        .build_index()
        .unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = Vec::with_capacity(n as usize);
    for oid in 0..n {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        positions.push(p);
    }

    // Power cut: `cut_after` more disk writes land, the next is torn,
    // everything after is void.
    faulty.inject(FaultKind::TornWrite {
        after_writes: cut_after,
    });
    // The op that observes the cut returns Err, but its outcome is
    // genuinely unknown (standard commit-ack semantics): the cut may
    // have landed after its commit record was durably synced — e.g.
    // inside the piggybacked checkpoint — or before. Recovery must land
    // it on exactly one of old/new; every *acknowledged* op is exact.
    let mut pending: Option<(u64, Point, Point)> = None;
    for _step in 0..100_000 {
        let oid = rng.random_range(0..n);
        let old = positions[oid as usize];
        let new = Point::new(
            (old.x + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
            (old.y + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
        );
        match index.update(oid, old, new) {
            Ok(_) => positions[oid as usize] = new, // acknowledged
            Err(_) => {
                pending = Some((oid, old, new));
                break;
            }
        }
    }
    let pending = pending
        .unwrap_or_else(|| panic!("{name}: the power cut never fired (cut_after {cut_after})"));
    drop(index); // crash — only `inner` (the platter) survives

    let (recovered, report) = recover_on(inner.clone(), opts)
        .unwrap_or_else(|e| panic!("{name}: recovery failed after cut at {cut_after}: {e}"));
    // Resolve the unknown-outcome op: it must be atomically at old or at
    // new, never both, never elsewhere.
    {
        let (oid, old, new) = pending;
        let at_new = recovered.point_query(new).unwrap().contains(&oid);
        let at_old = recovered.point_query(old).unwrap().contains(&oid);
        assert!(
            at_new || at_old,
            "{name}: interrupted op on {oid} vanished (cut {cut_after})"
        );
        assert!(
            !(at_new && at_old) || old == new,
            "{name}: interrupted op on {oid} applied twice (cut {cut_after})"
        );
        if at_new {
            positions[oid as usize] = new;
        }
    }
    let oracle = Oracle { positions };

    // Structural invariants: tree, hash index, GBU summary, LBU parent
    // pointers are all cross-checked by validate().
    recovered
        .validate()
        .unwrap_or_else(|e| panic!("{name}: recovered index invalid: {e}"));
    assert_eq!(recovered.len(), n, "{name}: object count");
    if matches!(base.strategy, UpdateStrategy::Generalized(_)) {
        assert!(recovered.summary().is_some(), "{name}: summary rebuilt");
    }
    assert_eq!(report.recovered_len, n);
    assert!(report.recovered_lsn > 0);

    // Zero lost acknowledged updates & nothing invented: the full id/
    // position set matches the oracle exactly.
    let everything = Rect::new(-1.0, -1.0, 2.0, 2.0);
    let mut all = recovered.query(&everything).unwrap();
    all.sort_unstable();
    let expect: Vec<u64> = (0..n).collect();
    assert_eq!(all, expect, "{name}: recovered id set");
    for (oid, p) in oracle.positions.iter().enumerate() {
        let at = recovered.point_query(*p).unwrap();
        assert!(
            at.contains(&(oid as u64)),
            "{name}: acknowledged position of object {oid} lost (cut {cut_after})"
        );
    }

    // Query answers equal the sequential oracle.
    let mut qrng = StdRng::seed_from_u64(seed ^ 0xDEAD);
    for _ in 0..15 {
        let x = qrng.random_range(0.0..0.8);
        let y = qrng.random_range(0.0..0.8);
        let w = Rect::new(x, y, x + qrng.random_range(0.05..0.3f32), y + 0.2);
        let mut got = recovered.query(&w).unwrap();
        got.sort_unstable();
        assert_eq!(got, oracle.window(&w), "{name}: window {w}");
    }
    for _ in 0..10 {
        let q = Point::new(qrng.random_range(0.0..1.0), qrng.random_range(0.0..1.0));
        let got = recovered.nearest_neighbors(q, 5).unwrap();
        let want = oracle.knn(q, 5);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            // Compare by distance (ties may order differently).
            assert!(
                (g.distance - w.1).abs() <= 1e-6,
                "{name}: kNN of {q}: got {} at {}, oracle {} at {}",
                g.oid,
                g.distance,
                w.0,
                w.1
            );
        }
    }

    // The recovered index is live: it keeps absorbing durable updates.
    let mut recovered = recovered;
    recovered
        .update(0, oracle.positions[0], Point::new(0.5, 0.5))
        .unwrap();
    recovered.validate().unwrap();
}

#[test]
fn crash_recovery_drill_td() {
    for (i, cut) in [5u64, 37, 111, 260].into_iter().enumerate() {
        crash_drill("TD", IndexOptions::top_down(), cut, 900 + i as u64);
    }
}

#[test]
fn crash_recovery_drill_lbu() {
    for (i, cut) in [3u64, 29, 97, 301].into_iter().enumerate() {
        crash_drill("LBU", IndexOptions::localized(), cut, 1700 + i as u64);
    }
}

#[test]
fn crash_recovery_drill_gbu() {
    for (i, cut) in [7u64, 43, 150, 333].into_iter().enumerate() {
        crash_drill("GBU", IndexOptions::generalized(), cut, 2600 + i as u64);
    }
}

/// Dense sweep: arm the cut before the first operation and walk it
/// across every write boundary in a band, so tears land in initial
/// checkpoints, log appends, data flushes and rewinds alike. Smaller
/// workload than the main drills, but every boundary in the band is hit.
#[test]
fn crash_recovery_survives_every_write_boundary_in_band() {
    for cut in (0..120u64).step_by(1) {
        let opts = durable(IndexOptions::generalized(), 16, SyncPolicy::EveryCommit);
        let inner = Arc::new(MemDisk::new(PAGE));
        let faulty = Arc::new(FaultyDisk::new(inner.clone()));
        faulty.inject(FaultKind::TornWrite { after_writes: cut });
        let mut rng = StdRng::seed_from_u64(7000 + cut);
        let mut acked: Vec<(u64, Point)> = Vec::new();
        let mut pending: Option<(u64, Option<Point>, Point)> = None; // (oid, old, new)
        let run = (|| -> Result<(), ()> {
            let mut index = IndexBuilder::with_options(opts)
                .disk(faulty.clone())
                .build_index()
                .map_err(|_| ())?;
            for oid in 0..80u64 {
                let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
                if index.insert(oid, p).is_err() {
                    pending = Some((oid, None, p));
                    return Err(());
                }
                acked.push((oid, p));
            }
            for _ in 0..400 {
                let i = rng.random_range(0..acked.len() as u64) as usize;
                let (oid, old) = acked[i];
                let new = Point::new(
                    (old.x + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
                    (old.y + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
                );
                if index.update(oid, old, new).is_err() {
                    pending = Some((oid, Some(old), new));
                    return Err(());
                }
                acked[i].1 = new;
            }
            Ok(())
        })();
        assert!(run.is_err(), "cut {cut}: the power cut never fired");
        if acked.is_empty() && pending.is_none() {
            continue; // create_on itself was cut: nothing was ever acknowledged
        }

        match recover_on(inner, opts) {
            Ok((recovered, _report)) => {
                recovered
                    .validate()
                    .unwrap_or_else(|e| panic!("cut {cut}: invalid after recovery: {e}"));
                let mut expect: Vec<(u64, Point)> = acked.clone();
                if let Some((oid, old, new)) = pending {
                    let at_new = recovered.point_query(new).unwrap().contains(&oid);
                    match old {
                        Some(old) => {
                            let at_old = recovered.point_query(old).unwrap().contains(&oid);
                            assert!(at_new || at_old, "cut {cut}: op on {oid} vanished");
                            let i = expect.iter().position(|&(o, _)| o == oid).unwrap();
                            expect[i].1 = if at_new { new } else { old };
                        }
                        None => {
                            if at_new {
                                expect.push((oid, new));
                            }
                        }
                    }
                }
                assert_eq!(recovered.len(), expect.len() as u64, "cut {cut}");
                for (oid, p) in expect {
                    assert!(
                        recovered.point_query(p).unwrap().contains(&oid),
                        "cut {cut}: acknowledged op on {oid} lost"
                    );
                }
            }
            Err(e) => {
                // Recovery may only fail when *nothing* was ever
                // acknowledged (the cut landed inside create_on's very
                // first checkpoint).
                assert!(
                    acked.is_empty(),
                    "cut {cut}: recovery refused with {} acked ops: {e}",
                    acked.len()
                );
            }
        }
    }
}

#[test]
fn crash_during_population_loses_no_acknowledged_insert() {
    let opts = durable(IndexOptions::generalized(), 32, SyncPolicy::EveryCommit);
    let inner = Arc::new(MemDisk::new(PAGE));
    let faulty = Arc::new(FaultyDisk::new(inner.clone()));
    let mut index = IndexBuilder::with_options(opts)
        .disk(faulty.clone())
        .build_index()
        .unwrap();
    faulty.inject(FaultKind::TornWrite { after_writes: 180 });
    let mut rng = StdRng::seed_from_u64(5150);
    let mut acked: Vec<(u64, Point)> = Vec::new();
    let mut pending: Option<(u64, Point)> = None;
    for oid in 0..10_000u64 {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        match index.insert(oid, p) {
            Ok(()) => acked.push((oid, p)),
            Err(_) => {
                pending = Some((oid, p)); // unknown outcome (see drill)
                break;
            }
        }
    }
    assert!(!acked.is_empty(), "some inserts must land before the cut");
    assert!(pending.is_some(), "the cut must fire");
    drop(index);

    let (recovered, _report) = recover_on(inner, opts).unwrap();
    recovered.validate().unwrap();
    let (pid, pp) = pending.unwrap();
    let pending_survived = recovered.point_query(pp).unwrap().contains(&pid);
    assert_eq!(
        recovered.len(),
        acked.len() as u64 + u64::from(pending_survived)
    );
    for (oid, p) in acked {
        assert!(
            recovered.point_query(p).unwrap().contains(&oid),
            "acknowledged insert {oid} lost"
        );
    }
}

#[test]
fn group_commit_recovers_to_a_consistent_acknowledged_state() {
    // With group commit, the unsynced tail may or may not survive (the
    // log pages might have reached the platter before the cut). The
    // guarantee is weaker but precise: every object recovers to *a*
    // position it actually held, and everything synced is a floor.
    let opts = durable(
        IndexOptions::generalized(),
        1_000_000,
        SyncPolicy::GroupCommit(8),
    );
    let inner = Arc::new(MemDisk::new(PAGE));
    let faulty = Arc::new(FaultyDisk::new(inner.clone()));
    let mut index = IndexBuilder::with_options(opts)
        .disk(faulty.clone())
        .build_index()
        .unwrap();
    let n = 300u64;
    let mut rng = StdRng::seed_from_u64(808);
    let mut history: HashMap<u64, Vec<Point>> = HashMap::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        history.insert(oid, vec![p]);
    }
    // A manual checkpoint pins a durable floor mid-stream.
    index.checkpoint().unwrap();
    let floor: HashMap<u64, Point> = history.iter().map(|(&k, v)| (k, v[0])).collect();
    let _ = floor; // positions at the checkpoint: each history[0]

    faulty.inject(FaultKind::TornWrite { after_writes: 120 });
    loop {
        let oid = rng.random_range(0..n);
        let old = *history[&oid].last().unwrap();
        let new = Point::new(
            (old.x + rng.random_range(-0.04..0.04f32)).clamp(0.0, 1.0),
            (old.y + rng.random_range(-0.04..0.04f32)).clamp(0.0, 1.0),
        );
        match index.update(oid, old, new) {
            Ok(_) => history.get_mut(&oid).unwrap().push(new),
            Err(_) => {
                // Unknown outcome: either position is legitimate.
                history.get_mut(&oid).unwrap().push(new);
                break;
            }
        }
    }
    drop(index);

    let (recovered, _report) = recover_on(inner, opts).unwrap();
    recovered.validate().unwrap();
    assert_eq!(recovered.len(), n);
    for (oid, hist) in &history {
        let found = hist
            .iter()
            .any(|p| recovered.point_query(*p).unwrap().contains(oid));
        assert!(found, "object {oid} recovered to a position it never held");
    }
}

#[test]
fn clean_shutdown_recovery_is_a_noop_and_open_routes_through_it() {
    let dir = common::TempDir::new("recovery");
    let path = dir.file("clean.bur");
    let opts = durable(IndexOptions::generalized(), 64, SyncPolicy::EveryCommit);
    let mut rng = StdRng::seed_from_u64(4242);
    let mut positions = Vec::new();
    {
        let disk = Arc::new(FileDisk::create(&path, PAGE).unwrap());
        let mut index = IndexBuilder::with_options(opts)
            .disk(disk)
            .build_index()
            .unwrap();
        for oid in 0..800u64 {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            index.insert(oid, p).unwrap();
            positions.push(p);
        }
        index.persist().unwrap(); // checkpoint + clean shutdown
    }
    // open_on with durable options routes through recovery.
    let disk = Arc::new(FileDisk::open(&path, PAGE).unwrap());
    let index = IndexBuilder::with_options(opts)
        .disk(disk)
        .open()
        .build_index()
        .unwrap();
    assert_eq!(index.len(), 800);
    index.validate().unwrap();
    assert!(index.is_durable());
    assert!(index.wal_stats().is_some());

    // Durability is a property of the file: opening with *non-durable*
    // options still reattaches the WAL (otherwise unlogged page writes
    // would race the stale log generation on a later recover).
    let disk = Arc::new(FileDisk::open(&path, PAGE).unwrap());
    let mut index = IndexBuilder::with_options(IndexOptions::generalized())
        .disk(disk)
        .open()
        .build_index()
        .unwrap();
    assert!(
        index.is_durable(),
        "durable file must reattach its log on open"
    );
    let p0 = positions[0];
    index.update(0, p0, Point::new(0.99, 0.99)).unwrap();
    drop(index); // crash without persist: the update must still survive
    let (index, _) = recover_file(&path, opts).unwrap();
    assert!(index
        .point_query(Point::new(0.99, 0.99))
        .unwrap()
        .contains(&0));
    drop(index);

    // recover() twice in a row: idempotent.
    let (index, r1) = recover_file(&path, opts).unwrap();
    assert_eq!(r1.recovered_len, 800);
    drop(index);
    let (index, r2) = recover_file(&path, opts).unwrap();
    assert_eq!(r2.recovered_len, 800);
    index.validate().unwrap();
}

#[test]
fn recover_rejects_non_durable_disks_and_options() {
    let opts = IndexOptions::generalized();
    let disk = Arc::new(MemDisk::new(PAGE));
    let mut index = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build_index()
        .unwrap();
    index.insert(1, Point::new(0.1, 0.1)).unwrap();
    index.persist().unwrap();
    drop(index);
    // Non-durable options are rejected outright.
    let err = recover_on(disk.clone(), opts).unwrap_err();
    assert!(err.to_string().contains("Durability::Wal"), "got: {err}");
    // Durable options on a disk that never had a log are rejected too
    // (page 1 is a tree page, not a WAL anchor).
    let err = recover_on(disk, IndexOptions::durable()).unwrap_err();
    assert!(err.to_string().contains("write-ahead log"), "got: {err}");
}

/// Dense sweep over *delta-heavy* generations: short anchor cadence
/// (full image every 3rd record per page) and a long checkpoint interval,
/// so cut points land inside delta chains, exactly on full-image anchors,
/// and between the two. Every acknowledged update must survive
/// (EveryCommit), and mixed full/delta replay must reproduce the oracle.
#[test]
fn crash_recovery_survives_cuts_inside_delta_chains_and_at_anchors() {
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 48,
        delta: DeltaPolicy {
            enabled: true,
            anchor_every: 3,
        },
        batch_ops: 1,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    for cut in (2..92u64).step_by(3) {
        let inner = Arc::new(MemDisk::new(PAGE));
        let faulty = Arc::new(FaultyDisk::new(inner.clone()));
        let mut index = IndexBuilder::with_options(opts)
            .disk(faulty.clone())
            .build_index()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9300 + cut);
        let n = 60u64;
        let mut positions = Vec::with_capacity(n as usize);
        for oid in 0..n {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            index.insert(oid, p).unwrap();
            positions.push(p);
        }
        // Take a checkpoint so the measured window is pure update traffic:
        // repeated in-place moves of the same objects, i.e. delta chains.
        index.checkpoint().unwrap();
        faulty.inject(FaultKind::TornWrite { after_writes: cut });
        let mut pending: Option<(u64, Point, Point)> = None;
        for step in 0..100_000u64 {
            let oid = (step * 7) % n; // revisit pages: chains grow past anchors
            let old = positions[oid as usize];
            let new = Point::new(
                (old.x + rng.random_range(-0.03..0.03f32)).clamp(0.0, 1.0),
                (old.y + rng.random_range(-0.03..0.03f32)).clamp(0.0, 1.0),
            );
            match index.update(oid, old, new) {
                Ok(_) => positions[oid as usize] = new,
                Err(_) => {
                    pending = Some((oid, old, new));
                    break;
                }
            }
        }
        let (poid, pold, pnew) = pending.expect("the power cut must fire");
        drop(index);

        let (recovered, report) =
            recover_on(inner, opts).unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        recovered.validate().unwrap();
        // The interrupted op lands atomically on exactly one side.
        let at_new = recovered.point_query(pnew).unwrap().contains(&poid);
        let at_old = recovered.point_query(pold).unwrap().contains(&poid);
        assert!(at_new || at_old, "cut {cut}: op on {poid} vanished");
        if at_new {
            positions[poid as usize] = pnew;
        }
        for (oid, p) in positions.iter().enumerate() {
            assert!(
                recovered.point_query(*p).unwrap().contains(&(oid as u64)),
                "cut {cut}: acknowledged position of {oid} lost \
                 (report: {report:?})"
            );
        }
    }
}

/// Commit batching: a crash mid-batch may lose the *unflushed tail* of a
/// batch (that is the documented trade), but every flushed batch is a
/// durable floor, batches are atomic, and recovery is always consistent.
#[test]
fn crash_mid_commit_batch_preserves_every_flushed_batch() {
    const BATCH: u64 = 5;
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000,
        batch_ops: BATCH as u32,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    for cut in [9u64, 23, 57, 88] {
        let inner = Arc::new(MemDisk::new(PAGE));
        let faulty = Arc::new(FaultyDisk::new(inner.clone()));
        let mut index = IndexBuilder::with_options(opts)
            .disk(faulty.clone())
            .build_index()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4400 + cut);
        let n = 80u64;
        // Per-object position history plus the index of the last position
        // covered by a *flushed* batch (the durable floor).
        let mut history: Vec<Vec<Point>> = Vec::new();
        let mut floor: Vec<usize> = vec![0; n as usize];
        for oid in 0..n {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            index.insert(oid, p).unwrap();
            history.push(vec![p]);
        }
        index.checkpoint().unwrap(); // all inserts are a durable floor
        faulty.inject(FaultKind::TornWrite { after_writes: cut });
        let mut ops = 0u64;
        loop {
            let oid = rng.random_range(0..n);
            let old = *history[oid as usize].last().unwrap();
            let new = Point::new(
                (old.x + rng.random_range(-0.04..0.04f32)).clamp(0.0, 1.0),
                (old.y + rng.random_range(-0.04..0.04f32)).clamp(0.0, 1.0),
            );
            match index.update(oid, old, new) {
                Ok(_) => {
                    history[oid as usize].push(new);
                    ops += 1;
                    if ops % BATCH == 0 && index.pending_commits() == 0 {
                        // The batch flushed and synced (EveryCommit):
                        // everything so far is a durable floor.
                        for (oid, h) in history.iter().enumerate() {
                            floor[oid] = h.len() - 1;
                        }
                    }
                }
                Err(_) => {
                    // The op that observes the cut has an unknown outcome
                    // (its batch's commit record may have survived the
                    // torn tail): either position is legitimate.
                    history[oid as usize].push(new);
                    break;
                }
            }
        }
        drop(index);

        let (recovered, _report) = recover_on(inner, opts).unwrap();
        recovered.validate().unwrap();
        assert_eq!(recovered.len(), n, "cut {cut}");
        for (oid, h) in history.iter().enumerate() {
            // The recovered position must be one the object actually held…
            let at = h
                .iter()
                .rposition(|p| recovered.point_query(*p).unwrap().contains(&(oid as u64)));
            let Some(at) = at else {
                panic!("cut {cut}: object {oid} at a position it never held");
            };
            // …and no older than the last flushed batch (zero flushed
            // batches lost).
            assert!(
                at >= floor[oid],
                "cut {cut}: object {oid} rolled back past the flushed floor \
                 ({at} < {})",
                floor[oid]
            );
        }
    }
}

/// Async group commit: commits are acknowledged before the background
/// thread syncs them, so a crash may lose an unsynced tail — but never
/// tears: recovery lands every object on a position it actually held.
#[test]
fn async_group_commit_crash_recovers_to_consistent_state() {
    let wopts = WalOptions {
        sync: SyncPolicy::Async,
        checkpoint_every: 1_000_000,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    let inner = Arc::new(MemDisk::new(PAGE));
    let faulty = Arc::new(FaultyDisk::new(inner.clone()));
    let mut index = IndexBuilder::with_options(opts)
        .disk(faulty.clone())
        .build_index()
        .unwrap();
    let n = 120u64;
    let mut rng = StdRng::seed_from_u64(606);
    let mut history: HashMap<u64, Vec<Point>> = HashMap::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        history.insert(oid, vec![p]);
    }
    index.checkpoint().unwrap(); // durable floor under all inserts
    faulty.inject(FaultKind::TornWrite { after_writes: 60 });
    for _ in 0..5_000 {
        let oid = rng.random_range(0..n);
        let old = *history[&oid].last().unwrap();
        let new = Point::new(
            (old.x + rng.random_range(-0.04..0.04f32)).clamp(0.0, 1.0),
            (old.y + rng.random_range(-0.04..0.04f32)).clamp(0.0, 1.0),
        );
        match index.update(oid, old, new) {
            Ok(_) => history.get_mut(&oid).unwrap().push(new),
            Err(_) => {
                // Unknown outcome: either position is legitimate.
                history.get_mut(&oid).unwrap().push(new);
                break;
            }
        }
    }
    drop(index); // crash: joins the background syncer, post-cut writes are void

    let (recovered, _report) = recover_on(inner, opts).unwrap();
    recovered.validate().unwrap();
    assert_eq!(recovered.len(), n);
    for (oid, hist) in &history {
        let found = hist
            .iter()
            .any(|p| recovered.point_query(*p).unwrap().contains(oid));
        assert!(found, "object {oid} recovered to a position it never held");
    }
}

/// Clean path for async group commit: `wait_durable` is a hard ack — what
/// it covers survives a crash immediately after.
#[test]
fn async_wait_durable_is_a_hard_ack() {
    let wopts = WalOptions {
        sync: SyncPolicy::Async,
        checkpoint_every: 1_000_000,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    let disk = Arc::new(MemDisk::new(PAGE));
    let mut index = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build_index()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(717);
    let mut positions = Vec::new();
    for oid in 0..200u64 {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        positions.push(p);
    }
    for oid in 0..200u64 {
        let old = positions[oid as usize];
        let new = Point::new((old.x + 0.01).clamp(0.0, 1.0), old.y);
        index.update(oid, old, new).unwrap();
        positions[oid as usize] = new;
    }
    index.wait_durable().unwrap(); // hard ack for everything above
    let stats = index.wal_stats().unwrap();
    assert!(
        stats.syncs < stats.commits,
        "async must batch syncs: {stats}"
    );
    drop(index); // crash with no checkpoint/persist

    let (recovered, _) = recover_on(disk, opts).unwrap();
    recovered.validate().unwrap();
    for (oid, p) in positions.iter().enumerate() {
        assert!(
            recovered.point_query(*p).unwrap().contains(&(oid as u64)),
            "update {oid} acked by wait_durable was lost"
        );
    }
}

/// Commit batching writes one commit record per batch, and an explicit
/// flush (or a checkpoint) closes a partial batch.
#[test]
fn commit_batching_writes_one_record_per_batch() {
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000,
        batch_ops: 4,
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    let mut index = IndexBuilder::with_options(opts).build_index().unwrap();
    let mut rng = StdRng::seed_from_u64(321);
    let mut positions = Vec::new();
    for oid in 0..40u64 {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        positions.push(p);
    }
    index.checkpoint().unwrap();
    let base = index.wal_stats().unwrap();
    for oid in 0..10u64 {
        let old = positions[oid as usize];
        let new = Point::new((old.x + 0.005).clamp(0.0, 1.0), old.y);
        index.update(oid, old, new).unwrap();
        positions[oid as usize] = new;
    }
    // 10 ops at batch size 4: two full batches flushed, two ops pending.
    let stats = index.wal_stats().unwrap();
    assert_eq!(stats.commits - base.commits, 2, "{stats}");
    assert_eq!(index.pending_commits(), 2);
    index.flush_commits().unwrap();
    assert_eq!(index.pending_commits(), 0);
    assert_eq!(index.wal_stats().unwrap().commits - base.commits, 3);
    index.flush_commits().unwrap(); // idempotent on an empty batch
    assert_eq!(index.wal_stats().unwrap().commits - base.commits, 3);
    // Runtime re-configuration back to per-op commits.
    index.set_commit_batch(1).unwrap();
    let before = index.wal_stats().unwrap().commits;
    let old = positions[0];
    index.update(0, old, Point::new(old.x, 0.999)).unwrap();
    assert_eq!(index.wal_stats().unwrap().commits, before + 1);
    index.validate().unwrap();
}

/// Chain recycling: repeated checkpoints must not grow the disk — the
/// superseded metadata continuation chain and hash-directory chain are
/// reused instead of leaking a fresh run of pages per checkpoint (the
/// known page leak noted in the ROADMAP).
#[test]
fn checkpoints_recycle_chain_pages_instead_of_leaking() {
    let wopts = WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every: 1_000_000, // checkpoints issued explicitly below
        ..WalOptions::default()
    };
    let opts = IndexOptions::generalized().with_durability(Durability::Wal(wopts));
    let disk = Arc::new(MemDisk::new(PAGE));
    let mut index = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build_index()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(515);
    let n = 2_000u64;
    let mut positions = Vec::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        positions.push(p);
    }
    // Warm up: a couple of checkpoints allocate the steady-state chains.
    index.checkpoint().unwrap();
    index.checkpoint().unwrap();
    let baseline = disk.num_pages();
    // In-place churn with a checkpoint per round: page count must stay
    // flat (updates don't grow the tree and the chains recycle).
    for round in 0..20u64 {
        for k in 0..40u64 {
            let oid = (round * 40 + k) % n;
            let old = positions[oid as usize];
            let new = Point::new(
                (old.x + 0.001).clamp(0.0, 1.0),
                (old.y - 0.001).clamp(0.0, 1.0),
            );
            index.update(oid, old, new).unwrap();
            positions[oid as usize] = new;
        }
        index.checkpoint().unwrap();
    }
    let grown = disk.num_pages() - baseline;
    assert!(
        grown <= 2,
        "22 checkpoints leaked {grown} pages ({} -> {})",
        baseline,
        disk.num_pages()
    );
    index.validate().unwrap();
}

#[test]
fn durable_index_survives_strategy_switch_on_recovery() {
    // Build durable GBU, crash, recover as durable LBU: the log replay
    // plus the rebuild installs the hash index and parent pointers LBU
    // needs.
    let gbu = durable(IndexOptions::generalized(), 64, SyncPolicy::EveryCommit);
    let inner = Arc::new(MemDisk::new(PAGE));
    let faulty = Arc::new(FaultyDisk::new(inner.clone()));
    let mut index = IndexBuilder::with_options(gbu)
        .disk(faulty.clone())
        .build_index()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(31337);
    let mut positions = Vec::new();
    for oid in 0..600u64 {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        index.insert(oid, p).unwrap();
        positions.push(p);
    }
    faulty.inject(FaultKind::TornWrite { after_writes: 50 });
    let mut pending: Option<(u64, Point, Point)> = None;
    for _ in 0..100_000 {
        let oid = rng.random_range(0..600);
        let old = positions[oid as usize];
        let new = Point::new(
            (old.x + 0.01).clamp(0.0, 1.0),
            (old.y - 0.01).clamp(0.0, 1.0),
        );
        match index.update(oid, old, new) {
            Ok(_) => positions[oid as usize] = new,
            Err(_) => {
                pending = Some((oid, old, new));
                break;
            }
        }
    }
    drop(index);

    let lbu = durable(IndexOptions::localized(), 64, SyncPolicy::EveryCommit);
    let (mut recovered, _) = recover_on(inner, lbu).unwrap();
    recovered.validate().unwrap(); // checks LBU parent pointers
    if let Some((oid, _old, new)) = pending {
        if recovered.point_query(new).unwrap().contains(&oid) {
            positions[oid as usize] = new; // unknown outcome resolved
        }
    }
    for (oid, p) in positions.iter().enumerate() {
        assert!(recovered.point_query(*p).unwrap().contains(&(oid as u64)));
    }
    // LBU updates work on the recovered state.
    let old = positions[7];
    recovered
        .update(7, old, Point::new(old.x, (old.y + 0.002).clamp(0.0, 1.0)))
        .unwrap();
    recovered.validate().unwrap();
}
