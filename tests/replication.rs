//! Warm-standby replication drills: WAL shipping, follower replay, and
//! failover.
//!
//! The contracts under test (the acceptance criteria of the `bur-repl`
//! work):
//!
//! * **divergence-freedom** — for arbitrary mixed op/batch streams on
//!   the primary, a ship-and-apply follower equals the primary (object
//!   count, window answers, `validate()`) at every durable watermark;
//! * **failover** — cutting the shipped stream at *every record
//!   boundary* and promoting the follower loses no acknowledged update
//!   and never half-applies an unacknowledged batch (batches are
//!   all-or-nothing at the replica exactly as they are under crash
//!   recovery);
//! * **checkpoint rewinds** — when the primary checkpoints mid-shipment
//!   the follower detects the generation change, resynchronizes its
//!   base image, and never replays stale records (its watermark is
//!   strictly monotonic).
//!
//! Everything runs on `MemDisk` (wrapped in `FaultyDisk` for the
//! power-cut drill), so every run is reproducible.

mod common;

use bur::prelude::*;
use bur::storage::{DiskBackend, FaultKind, FaultyDisk, MemDisk};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

const PAGE: usize = 1024;

fn durable(base: IndexOptions, checkpoint_every: u64) -> IndexOptions {
    base.with_durability(Durability::Wal(WalOptions {
        sync: SyncPolicy::EveryCommit,
        checkpoint_every,
        ..WalOptions::default()
    }))
}

/// Copy every page of `src` onto a fresh in-memory disk — a frozen
/// platter snapshot for deterministic replay.
fn clone_disk(src: &dyn DiskBackend) -> Arc<MemDisk> {
    let dst = Arc::new(MemDisk::new(src.page_size()));
    let mut buf = vec![0u8; src.page_size()];
    for pid in 0..src.num_pages() {
        src.read(pid, &mut buf).unwrap();
        dst.allocate().unwrap();
        dst.write(pid, &buf).unwrap();
    }
    dst
}

/// Sorted ids the index reports inside `w`.
fn ids_in(bur: &Bur, w: &Rect) -> Vec<u64> {
    let mut ids: Vec<u64> = bur.query(w).unwrap().collect();
    ids.sort_unstable();
    ids
}

/// Assert the replica is observation-equivalent to the primary.
fn assert_equivalent(primary: &Bur, replica: &Bur, ctx: &str) {
    assert_eq!(primary.len(), replica.len(), "{ctx}: len");
    for w in [
        Rect::new(-1.0, -1.0, 2.0, 2.0),
        Rect::new(0.0, 0.0, 0.5, 0.5),
        Rect::new(0.25, 0.4, 0.8, 0.9),
    ] {
        assert_eq!(
            ids_in(primary, &w),
            ids_in(replica, &w),
            "{ctx}: window {w}"
        );
    }
    replica
        .validate()
        .unwrap_or_else(|e| panic!("{ctx}: replica invalid: {e}"));
}

// ---- satellite 1: divergence proptest ------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary mixed op/batch streams on the primary; ship-and-apply
    /// on the follower; equivalence at every durable watermark.
    #[test]
    fn follower_never_diverges_from_primary(
        seed in any::<u64>(),
        steps in proptest::collection::vec(0u8..8, 6..24),
    ) {
        let opts = durable(IndexOptions::generalized(), 1_000_000);
        let disk = Arc::new(MemDisk::new(PAGE));
        let primary = IndexBuilder::with_options(opts)
            .disk(disk.clone())
            .build()
            .unwrap();
        let mut shipper = LogShipper::new(disk);
        let mut follower = Follower::attach_in_memory(&mut shipper, opts).unwrap();
        let replica = follower.handle();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut alive: Vec<(u64, Point)> = Vec::new();
        let mut next_oid = 0u64;
        let mut last_watermark = follower.applied_lsn();
        for (i, step) in steps.iter().enumerate() {
            match step {
                // Mixed batch: a handful of inserts, updates, deletes
                // under ONE group commit record.
                0 | 1 => {
                    let mut batch = Batch::new();
                    for _ in 0..rng.random_range(1..6u32) {
                        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
                        batch.insert(next_oid, p);
                        alive.push((next_oid, p));
                        next_oid += 1;
                    }
                    for _ in 0..rng.random_range(0..4u32) {
                        if alive.is_empty() { break; }
                        let k = rng.random_range(0..alive.len() as u64) as usize;
                        let (oid, old) = alive[k];
                        let new = Point::new(
                            (old.x + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
                            (old.y + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
                        );
                        batch.update(oid, old, new);
                        alive[k].1 = new;
                    }
                    primary.apply(&batch).unwrap().wait().unwrap();
                }
                // Single insert.
                2 | 3 => {
                    let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
                    primary.insert(next_oid, p).unwrap();
                    alive.push((next_oid, p));
                    next_oid += 1;
                }
                // Single update.
                4 | 5 => {
                    if alive.is_empty() { continue; }
                    let k = rng.random_range(0..alive.len() as u64) as usize;
                    let (oid, old) = alive[k];
                    let new = Point::new(
                        (old.x + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
                        (old.y + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
                    );
                    primary.update(oid, old, new).unwrap();
                    alive[k].1 = new;
                }
                // Single delete.
                6 => {
                    if alive.is_empty() { continue; }
                    let k = rng.random_range(0..alive.len() as u64) as usize;
                    let (oid, p) = alive.swap_remove(k);
                    prop_assert!(primary.delete(oid, p).unwrap());
                }
                // Checkpoint: rewinds the log mid-shipment.
                _ => primary.checkpoint().unwrap(),
            }
            // Durable watermark: everything above is synced (EveryCommit);
            // ship and compare.
            follower.catch_up(&mut shipper).unwrap();
            prop_assert!(
                follower.applied_lsn() >= last_watermark,
                "watermark went backwards at step {i}"
            );
            last_watermark = follower.applied_lsn();
            assert_equivalent(&primary, &replica, &format!("seed {seed} step {i}"));
        }
        // End-to-end: positions agree object by object.
        for (oid, p) in &alive {
            let hits: Vec<u64> = replica.query(&Rect::from_point(*p)).unwrap().collect();
            prop_assert!(hits.contains(oid), "object {oid} missing at its position");
        }
        primary.validate().unwrap();
    }
}

// ---- satellite 2a: cut the shipped stream at every record boundary -------

/// Deterministic failover sweep: a batched workload is shipped as one
/// record stream; for every prefix length the stream is cut there, the
/// follower promoted, and the result must equal the primary's state at
/// the last commit inside the prefix — acknowledged batches whole,
/// unacknowledged batches absent entirely.
#[test]
fn failover_at_every_record_boundary_is_all_or_nothing() {
    let opts = durable(IndexOptions::generalized(), 1_000_000);
    let disk = Arc::new(MemDisk::new(PAGE));
    let primary = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build()
        .unwrap();

    // Seed + quiesce, then freeze the base image every follower attaches
    // from.
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let mut positions: HashMap<u64, Point> = HashMap::new();
    let mut seed_batch = Batch::new();
    for oid in 0..40u64 {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        seed_batch.insert(oid, p);
        positions.insert(oid, p);
    }
    primary.apply(&seed_batch).unwrap().wait().unwrap();
    let seed_positions = positions.clone();
    let base = clone_disk(disk.as_ref());

    // Batched workload; oracle state per commit LSN.
    let mut oracle: HashMap<u64, HashMap<u64, Point>> = HashMap::new();
    for _ in 0..10 {
        let mut batch = Batch::new();
        for _ in 0..6 {
            let oid = rng.random_range(0..40);
            let old = positions[&oid];
            let new = Point::new(
                (old.x + rng.random_range(-0.06..0.06f32)).clamp(0.0, 1.0),
                (old.y + rng.random_range(-0.06..0.06f32)).clamp(0.0, 1.0),
            );
            batch.update(oid, old, new);
            positions.insert(oid, new);
        }
        let ticket = primary.apply(&batch).unwrap();
        ticket.wait().unwrap();
        oracle.insert(ticket.lsn(), positions.clone());
    }

    // The full stream, as any follower would receive it.
    let mut probe = LogShipper::new(disk.clone());
    let stream = probe.poll().unwrap();
    assert!(!stream.torn_tail);
    let records = stream.records;
    assert!(records.len() > 20, "stream too short: {}", records.len());

    for cut in 0..=records.len() {
        let mut shipper = LogShipper::new(base.clone());
        let mut follower = Follower::attach_in_memory(&mut shipper, opts)
            .unwrap_or_else(|e| panic!("cut {cut}: attach: {e}"));
        let attach_lsn = follower.applied_lsn();
        // Ship only the records the cut lets through (past what attach
        // already consumed from the frozen base).
        let shipped: Vec<_> = records[..cut]
            .iter()
            .filter(|(lsn, _)| *lsn > attach_lsn)
            .cloned()
            .collect();
        let batch = bur::repl::ShipBatch {
            generation: stream.generation,
            rewound: false,
            records: shipped,
            torn_tail: cut < records.len(),
        };
        follower.apply(&batch).unwrap();
        let watermark = follower.applied_lsn();
        let promoted = follower.promote().unwrap();
        promoted
            .validate()
            .unwrap_or_else(|e| panic!("cut {cut}: promoted invalid: {e}"));
        assert_eq!(promoted.len(), 40, "cut {cut}");

        // The promoted state must be the oracle at the watermark: every
        // commit at or below it applied whole, everything after absent.
        // A watermark below the first workload commit means the cut fell
        // inside the first batch — the seed state survives untouched.
        let expect = oracle.get(&watermark).unwrap_or(&seed_positions).clone();
        for (oid, p) in &expect {
            let hits: Vec<u64> = promoted.query(&Rect::from_point(*p)).unwrap().collect();
            assert!(
                hits.contains(oid),
                "cut {cut}: object {oid} not at the batch-atomic position (watermark {watermark})"
            );
        }
        // Write through the promoted primary: it is live.
        promoted.insert(900, Point::new(0.99, 0.01)).unwrap();
        promoted.validate().unwrap();
    }
}

// ---- satellite 2b: power-cut failover drill (FaultyDisk) ------------------

/// The primary dies mid-write (torn page, nothing after persists); the
/// warm standby ships the surviving clean prefix and promotes. Every
/// acknowledged update must be present; the op interrupted by the cut
/// lands atomically on exactly one side.
#[test]
fn promoted_follower_loses_no_acked_update_across_cut_sweep() {
    for cut in [7u64, 19, 33, 52, 74, 96, 121, 150] {
        let opts = durable(IndexOptions::generalized(), 1_000_000);
        let inner = Arc::new(MemDisk::new(PAGE));
        let faulty = Arc::new(FaultyDisk::new(inner.clone()));
        let primary = IndexBuilder::with_options(opts)
            .disk(faulty.clone())
            .build()
            .unwrap();
        let mut shipper = LogShipper::new(faulty.clone() as Arc<dyn DiskBackend>);
        let mut follower = Follower::attach_in_memory(&mut shipper, opts)
            .unwrap_or_else(|e| panic!("cut {cut}: attach: {e}"));

        let n = 60u64;
        let mut rng = StdRng::seed_from_u64(7100 + cut);
        let mut positions: Vec<Point> = Vec::new();
        for oid in 0..n {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            primary.insert(oid, p).unwrap();
            positions.push(p);
        }
        follower.catch_up(&mut shipper).unwrap();

        faulty.inject(FaultKind::TornWrite { after_writes: cut });
        let mut pending: Option<(u64, Point, Point)> = None;
        for step in 0..100_000u64 {
            let oid = rng.random_range(0..n);
            let old = positions[oid as usize];
            let new = Point::new(
                (old.x + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
                (old.y + rng.random_range(-0.05..0.05f32)).clamp(0.0, 1.0),
            );
            match primary.update(oid, old, new) {
                Ok(_) => positions[oid as usize] = new,
                Err(_) => {
                    pending = Some((oid, old, new));
                    break;
                }
            }
            // Ship while the primary is alive, like a real standby pump.
            if step % 16 == 0 {
                follower.sync_once(&mut shipper).unwrap();
            }
        }
        let (poid, pold, pnew) =
            pending.unwrap_or_else(|| panic!("cut {cut}: the power cut never fired"));
        drop(primary); // the primary is gone; only the platter remains

        // Final catch-up over the torn log, then fail over.
        follower.catch_up(&mut shipper).unwrap();
        let promoted = follower.promote().unwrap();
        promoted
            .validate()
            .unwrap_or_else(|e| panic!("cut {cut}: promoted invalid: {e}"));
        assert_eq!(promoted.len(), n, "cut {cut}");

        // The interrupted op has an unknown outcome: exactly one side.
        let at = |p: Point| -> bool {
            promoted
                .query(&Rect::from_point(p))
                .unwrap()
                .any(|oid| oid == poid)
        };
        let (at_new, at_old) = (at(pnew), at(pold));
        assert!(
            at_new || at_old,
            "cut {cut}: interrupted op on {poid} vanished"
        );
        if at_new {
            positions[poid as usize] = pnew;
        }
        // Zero acknowledged updates lost.
        for (oid, p) in positions.iter().enumerate() {
            let hits: Vec<u64> = promoted.query(&Rect::from_point(*p)).unwrap().collect();
            assert!(
                hits.contains(&(oid as u64)),
                "cut {cut}: acknowledged position of {oid} lost"
            );
        }
        // The new primary takes durable writes on its own log.
        promoted
            .update(0, positions[0], Point::new(0.5, 0.5))
            .unwrap();
        promoted.validate().unwrap();
    }
}

// ---- satellite 3: checkpoint-rewind drill ---------------------------------

/// The primary checkpoints mid-shipment (frequent cadence): the follower
/// must detect every generation change, resync its base image, and keep
/// a strictly monotonic watermark — stale records are never replayed.
#[test]
fn checkpoint_rewind_mid_shipment_resyncs_cleanly() {
    let opts = durable(IndexOptions::generalized(), 24); // rewind every 24 ops
    let disk = Arc::new(MemDisk::new(PAGE));
    let primary = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build()
        .unwrap();
    let mut shipper = LogShipper::new(disk);
    let mut follower = Follower::attach_in_memory(&mut shipper, opts).unwrap();
    let replica = follower.handle();

    let n = 50u64;
    let mut rng = StdRng::seed_from_u64(0xC4C4);
    let mut positions: Vec<Point> = Vec::new();
    for oid in 0..n {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        primary.insert(oid, p).unwrap();
        positions.push(p);
    }
    let mut watermarks = vec![follower.applied_lsn()];
    for round in 0..12u64 {
        for _ in 0..10 {
            let oid = rng.random_range(0..n);
            let old = positions[oid as usize];
            let new = Point::new(
                (old.x + rng.random_range(-0.04..0.04f32)).clamp(0.0, 1.0),
                (old.y + rng.random_range(-0.04..0.04f32)).clamp(0.0, 1.0),
            );
            primary.update(oid, old, new).unwrap();
            positions[oid as usize] = new;
        }
        follower.catch_up(&mut shipper).unwrap();
        watermarks.push(follower.applied_lsn());
        assert_equivalent(&primary, &replica, &format!("round {round}"));
    }
    // Rewinds actually happened and were survived by resyncs.
    let stats = follower.stats();
    assert!(
        stats.resyncs >= 3,
        "checkpoint cadence must have rewound the log several times: {stats:?}"
    );
    // No stale replay: the watermark is strictly monotonic.
    for pair in watermarks.windows(2) {
        assert!(
            pair[0] < pair[1],
            "watermark stalled or reversed: {watermarks:?}"
        );
    }
    // And the standby still promotes.
    let promoted = follower.promote().unwrap();
    promoted.validate().unwrap();
    assert_eq!(promoted.len(), n);
}

// ---- concurrency: live pump beside writers and readers --------------------

/// A short soak: two writer threads on the primary, a pump thread
/// shipping to the follower, and a reader thread querying the replica —
/// then a final catch-up, equivalence check and promote.
#[test]
fn follower_soaks_under_concurrent_writers_and_readers() {
    let opts = durable(IndexOptions::generalized(), 512);
    let disk = Arc::new(MemDisk::new(PAGE));
    let primary = IndexBuilder::with_options(opts)
        .disk(disk.clone())
        .build()
        .unwrap();
    let n = 256u64;
    let mut seed_batch = Batch::new();
    for oid in 0..n {
        seed_batch.insert(
            oid,
            Point::new((oid % 16) as f32 / 16.0, ((oid / 16) % 16) as f32 / 16.0),
        );
    }
    primary.apply(&seed_batch).unwrap().wait().unwrap();

    let mut shipper = LogShipper::new(disk);
    let mut follower = Follower::attach_in_memory(&mut shipper, opts).unwrap();
    let replica = follower.handle();

    std::thread::scope(|s| {
        for t in 0..2u64 {
            let writer = primary.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(900 + t);
                // Each thread owns a disjoint id range: updates race only
                // in the tree, never on the same object.
                let lo = t * (n / 2);
                let hi = lo + n / 2;
                for _ in 0..400 {
                    let oid = rng.random_range(lo..hi);
                    let old = Point::new((oid % 16) as f32 / 16.0, ((oid / 16) % 16) as f32 / 16.0);
                    // Move out and back so the final state is known.
                    let out = Point::new(
                        (old.x + 0.011).clamp(0.0, 1.0),
                        (old.y + 0.013).clamp(0.0, 1.0),
                    );
                    writer.update(oid, old, out).unwrap();
                    writer.update(oid, out, old).unwrap();
                }
            });
        }
        let reader = replica.clone();
        s.spawn(move || {
            for _ in 0..200 {
                // The watermark snapshot always reports the full live
                // set; window answers stream without errors even while
                // the pump resyncs underneath.
                assert_eq!(reader.len(), n);
                let _ = reader.count_in(&Rect::new(-1.0, -1.0, 2.0, 2.0)).unwrap();
            }
        });
        // The pump runs in this thread.
        for _ in 0..300 {
            follower.sync_once(&mut shipper).unwrap();
        }
    });

    primary.wait_durable().unwrap();
    follower.catch_up(&mut shipper).unwrap();
    assert_equivalent(&primary, &replica, "post-soak");
    let promoted = follower.promote().unwrap();
    promoted.validate().unwrap();
    assert_eq!(promoted.len(), n);
}

// ---- misc: file-backed replication round trip -----------------------------

/// Replication works file-to-file: a durable primary file ships into a
/// replica file; the promoted replica reopens from disk as a durable
/// index equal to the primary.
#[test]
fn file_to_file_replication_round_trip() {
    let dir = common::TempDir::new("repl");
    let primary_path = dir.file("primary.bur");
    let replica_path = dir.file("replica.bur");
    let opts = durable(IndexOptions::generalized(), 1_000_000);

    let primary_disk = Arc::new(FileDisk::create(&primary_path, PAGE).unwrap());
    let primary = IndexBuilder::with_options(opts)
        .disk(primary_disk.clone())
        .build()
        .unwrap();
    let mut batch = Batch::new();
    for oid in 0..300u64 {
        batch.insert(
            oid,
            Point::new((oid % 20) as f32 / 20.0, ((oid / 20) % 15) as f32 / 15.0),
        );
    }
    primary.apply(&batch).unwrap().wait().unwrap();

    let mut shipper = LogShipper::new(primary_disk);
    let replica_disk = Arc::new(FileDisk::create(&replica_path, PAGE).unwrap());
    let mut follower = Follower::attach(&mut shipper, replica_disk, opts).unwrap();
    follower.catch_up(&mut shipper).unwrap();
    let promoted = follower.promote().unwrap();
    assert_eq!(promoted.len(), 300);
    promoted.persist().unwrap();
    drop(promoted);

    // The replica file now opens on its own as a durable index.
    let reopened = IndexBuilder::with_options(opts)
        .file(&replica_path)
        .open()
        .build()
        .unwrap();
    assert_eq!(reopened.len(), 300);
    assert!(reopened.is_durable());
    reopened.validate().unwrap();
    assert_eq!(
        ids_in(&primary, &Rect::new(0.0, 0.0, 0.6, 0.6)),
        ids_in(&reopened, &Rect::new(0.0, 0.0, 0.6, 0.6)),
    );
}
