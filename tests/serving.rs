//! End-to-end serving tests: real `burd` servers (in-process and as a
//! child process), real `bur-client` connections over loopback.
//!
//! Covered here, per the serving contract:
//! - N concurrent clients' writes coalesce into fewer WAL group-commit
//!   records than client batches, and the served state matches a
//!   single-handle oracle;
//! - streamed query responses chunk correctly and an early-dropped
//!   stream leaves the connection usable;
//! - malformed frames poison only their own connection;
//! - graceful shutdown drains pending writes;
//! - acked writes survive a hard server kill + restart (durable acks
//!   are real).

mod common;

use bur::client::{BurClient, ClientError};
use bur::core::{Batch, IndexBuilder};
use bur::geom::{Point, Rect};
use bur::serve::{start, ServerConfig};
use common::TempDir;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

/// Deterministic pseudo-random position for an object id.
fn pos(oid: u64) -> Point {
    let h = oid.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    Point::new(
        (h % 1000) as f32 / 1000.0,
        ((h >> 32) % 1000) as f32 / 1000.0,
    )
}

fn insert_batch(range: std::ops::Range<u64>) -> Batch {
    let mut batch = Batch::new();
    for oid in range {
        batch.insert(oid, pos(oid));
    }
    batch
}

fn server(dir: &TempDir) -> bur::serve::ServerHandle {
    start(ServerConfig::new(dir.file("data"))).expect("server starts")
}

fn client(handle: &bur::serve::ServerHandle) -> BurClient {
    BurClient::connect(handle.addr()).expect("client connects")
}

#[test]
fn concurrent_clients_coalesce_and_match_oracle() {
    const THREADS: u64 = 8;
    const BATCHES: u64 = 30;
    const PER_BATCH: u64 = 20;

    let dir = TempDir::new("serving-coalesce");
    let handle = server(&dir);
    client(&handle)
        .create_index("fleet", "gbu", true)
        .expect("create");

    // N client threads write disjoint oid ranges and interleave reads.
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut c = BurClient::connect(addr).expect("connect");
                for b in 0..BATCHES {
                    let base = t * 1_000_000 + b * PER_BATCH;
                    let ack = c
                        .apply("fleet", &insert_batch(base..base + PER_BATCH))
                        .expect("apply");
                    assert_eq!(ack.applied, PER_BATCH);
                    assert!(ack.lsn > 0, "durable index acks carry an LSN");
                    if b % 7 == 0 {
                        let hits: Vec<u64> = c
                            .query("fleet", &Rect::new(0.0, 0.0, 0.3, 0.3))
                            .expect("query")
                            .collect::<Result<_, _>>()
                            .expect("stream");
                        // Sanity only: results racing writers aren't stable.
                        assert!(hits.iter().all(|&oid| {
                            let p = pos(oid);
                            p.x <= 0.31 && p.y <= 0.31
                        }));
                    }
                    if b % 11 == 0 {
                        let nn = c
                            .nearest("fleet", Point::new(0.5, 0.5), 3)
                            .expect("knn")
                            .collect::<Result<Vec<_>, _>>()
                            .expect("stream");
                        assert!(nn.len() <= 3);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread");
    }

    // Coalescing observed: fewer group-commit rounds than client batches.
    let entry = handle.registry().get("fleet").expect("entry");
    let entry = entry.as_plain().expect("plain index");
    let stats = entry.coalescer.stats();
    let total_batches = THREADS * BATCHES;
    assert_eq!(stats.submissions, total_batches);
    assert!(
        stats.rounds < total_batches,
        "no coalescing: {} rounds for {} client batches",
        stats.rounds,
        total_batches
    );
    // And the WAL agrees: one commit record per round (plus the handful
    // from index creation), not one per client batch.
    let wal = entry.bur.wal_stats().expect("durable");
    assert!(
        wal.commits < total_batches + 10,
        "WAL cut {} commit records for {} client batches ({} rounds)",
        wal.commits,
        total_batches,
        stats.rounds
    );

    // Equivalence vs a single-handle oracle over several windows.
    let oracle = IndexBuilder::generalized().build().expect("oracle");
    for t in 0..THREADS {
        for b in 0..BATCHES {
            let base = t * 1_000_000 + b * PER_BATCH;
            oracle
                .apply(&insert_batch(base..base + PER_BATCH))
                .expect("oracle apply");
        }
    }
    let mut c = client(&handle);
    assert_eq!(c.len("fleet").expect("len"), oracle.len());
    for window in [
        Rect::new(0.0, 0.0, 1.0, 1.0),
        Rect::new(0.1, 0.2, 0.4, 0.9),
        Rect::new(0.85, 0.85, 0.95, 0.95),
    ] {
        let mut remote: Vec<u64> = c
            .query("fleet", &window)
            .expect("query")
            .collect::<Result<_, _>>()
            .expect("stream");
        let mut local: Vec<u64> = oracle.query(&window).expect("oracle query").collect();
        remote.sort_unstable();
        local.sort_unstable();
        assert_eq!(remote, local, "window {window} diverged from oracle");
    }
    let remote_nn = c
        .nearest("fleet", Point::new(0.5, 0.5), 10)
        .expect("knn")
        .collect::<Result<Vec<_>, _>>()
        .expect("stream");
    let local_nn: Vec<_> = oracle
        .nearest(Point::new(0.5, 0.5), 10)
        .expect("oracle knn")
        .collect();
    assert_eq!(remote_nn.len(), local_nn.len());
    // Position collisions make exact oid order tie-dependent; the
    // distance profile is the invariant.
    for (r, l) in remote_nn.iter().zip(&local_nn) {
        assert!(
            (r.distance - l.distance).abs() < 1e-6,
            "kNN distance profile diverged: {} vs {}",
            r.distance,
            l.distance
        );
    }

    // The observability surface reflects the workload.
    let stats_text = c.stats("fleet").expect("stats");
    assert!(
        stats_text.contains("bur_coalescer_rounds{index=\"fleet\"}"),
        "{stats_text}"
    );
    assert!(stats_text.contains("bur_wal_commits"), "{stats_text}");
    let metrics = c.metrics().expect("metrics");
    assert!(
        metrics.contains("burd_requests_total{op=\"apply\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("burd_latency_p99_ns{op=\"apply\"}"),
        "{metrics}"
    );
    drop(c);

    // Graceful shutdown: drain, flush, checkpoint — then the data
    // directory reopens with every acked write present.
    handle.shutdown();
    let reopened = IndexBuilder::new()
        .file(dir.file("data").join("fleet.bur"))
        .open()
        .build()
        .expect("reopen after shutdown");
    assert_eq!(reopened.len(), THREADS * BATCHES * PER_BATCH);
    reopened.validate().expect("invariants hold");
}

#[test]
fn streamed_queries_chunk_and_early_drop_keeps_connection_usable() {
    let dir = TempDir::new("serving-stream");
    let handle = server(&dir);
    let mut c = client(&handle);
    c.create_index("big", "gbu", false).expect("create");
    // Well above the 512-ids-per-frame chunk size, in one window.
    c.apply("big", &insert_batch(0..2000)).expect("apply");

    let everywhere = Rect::new(0.0, 0.0, 1.0, 1.0);
    let all: Vec<u64> = c
        .query("big", &everywhere)
        .expect("query")
        .collect::<Result<_, _>>()
        .expect("stream");
    assert_eq!(all.len(), 2000, "multi-chunk stream delivers everything");

    // Drop a stream after three items; the Drop impl must drain the
    // remaining chunk frames so the next request still lines up.
    {
        let mut stream = c.query("big", &everywhere).expect("query");
        for _ in 0..3 {
            stream.next().expect("item").expect("ok");
        }
    }
    assert_eq!(c.len("big").expect("len after early drop"), 2000);

    // Empty result: a single empty last-chunk frame.
    let none: Vec<u64> = c
        .query("big", &Rect::new(-5.0, -5.0, -4.0, -4.0))
        .expect("query")
        .collect::<Result<_, _>>()
        .expect("stream");
    assert!(none.is_empty());
    handle.shutdown();
}

#[test]
fn malformed_frames_poison_only_their_connection() {
    let dir = TempDir::new("serving-malformed");
    let handle = server(&dir);
    let mut healthy = client(&handle);
    healthy.create_index("idx", "gbu", false).expect("create");
    healthy.apply("idx", &insert_batch(0..5)).expect("apply");

    // 1) Oversized length prefix: the server answers with an error
    //    frame and closes this connection.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    raw.write_all(&(64u32 << 20).to_le_bytes()).expect("write");
    let mut response = Vec::new();
    raw.read_to_end(&mut response)
        .expect("server closed cleanly");
    assert!(!response.is_empty(), "expected an error frame before close");
    let text = String::from_utf8_lossy(&response);
    assert!(text.contains("bad frame length"), "{text}");

    // 2) Unknown opcode in a well-formed frame.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    let mut frame = Vec::new();
    bur::serve::wire::write_frame(&mut frame, 7, 0x77, b"");
    raw.write_all(&frame).expect("write");
    let mut response = Vec::new();
    raw.read_to_end(&mut response)
        .expect("server closed cleanly");
    assert!(String::from_utf8_lossy(&response).contains("unknown opcode"));

    // 3) Truncated frame then hangup: no response owed, no harm done.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    raw.write_all(&[9, 0, 0]).expect("write");
    drop(raw);

    // The sibling connection and the server survived all three.
    healthy.ping().expect("healthy connection unaffected");
    assert_eq!(healthy.len("idx").expect("len"), 5);
    assert!(
        handle
            .metrics()
            .malformed_frames
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 2
    );
    handle.shutdown();
}

#[test]
fn shutdown_request_drains_and_stops_the_server() {
    let dir = TempDir::new("serving-shutdown");
    let handle = server(&dir);
    let mut c = client(&handle);
    c.create_index("idx", "gbu", true).expect("create");
    let ack = c.apply("idx", &insert_batch(0..100)).expect("apply");
    assert_eq!(ack.applied, 100);
    c.shutdown_server().expect("shutdown acked");
    handle.wait();
    // New connections are refused once the listener is gone.
    assert!(
        TcpStream::connect(handle.addr()).is_err() || {
            // The OS may briefly accept before reset; a request must fail.
            BurClient::connect(handle.addr())
                .and_then(|mut c| c.ping())
                .is_err()
        }
    );
    let reopened = IndexBuilder::new()
        .file(dir.file("data").join("idx.bur"))
        .open()
        .build()
        .expect("reopen");
    assert_eq!(reopened.len(), 100);
}

/// Spawn the real `burd` binary on an OS-assigned port and parse the
/// bound address off its stdout.
fn spawn_burd(data_dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_burd"))
        .arg(data_dir)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("burd spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("burd announces its address");
    let addr = line
        .trim()
        .strip_prefix("burd listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn acked_writes_survive_server_kill_and_restart() {
    const BATCHES: u64 = 12;
    const PER_BATCH: u64 = 25;

    let dir = TempDir::new("serving-kill");
    let data = dir.file("data");
    let (mut child, addr) = spawn_burd(&data);
    // No in-flight retries: this test asserts the *connection* dies on
    // kill, so the client must surface the first failure, not mask it
    // by retrying against the dead address for seconds.
    let config = bur::client::ClientConfig {
        connect_attempts: 2,
        max_connect_elapsed: std::time::Duration::from_secs(2),
        retry: bur::client::RetryPolicy::none(),
        ..Default::default()
    };
    let mut c = BurClient::connect_with(&addr, &config).expect("connect");
    c.create_index("fleet", "gbu", true).expect("create");
    let mut acked = 0u64;
    for b in 0..BATCHES {
        let base = b * PER_BATCH;
        let ack = c
            .apply("fleet", &insert_batch(base..base + PER_BATCH))
            .expect("apply");
        assert!(ack.lsn > 0);
        acked += ack.applied;
    }

    // Hard kill: no drain, no flush, no checkpoint. Every *acked* write
    // must still be there — that is what the durable ack promised.
    child.kill().expect("kill");
    child.wait().expect("reap");
    match c.ping() {
        Err(ClientError::Io(_)) | Err(ClientError::Wire(_)) => {}
        other => panic!("expected a dead connection, got {other:?}"),
    }

    let (mut child, addr) = spawn_burd(&data);
    let mut c = BurClient::connect(&addr).expect("reconnect");
    assert_eq!(
        c.len("fleet").expect("reopen recovers the index"),
        acked,
        "acked writes lost across kill + restart"
    );
    let all: Vec<u64> = c
        .query("fleet", &Rect::new(0.0, 0.0, 1.0, 1.0))
        .expect("query")
        .collect::<Result<_, _>>()
        .expect("stream");
    assert_eq!(all.len() as u64, acked);
    for oid in 0..acked {
        assert!(all.contains(&oid), "acked oid {oid} missing after restart");
    }
    c.shutdown_server().expect("graceful stop");
    child.wait().expect("burd exits");
}

#[test]
fn index_lifecycle_over_the_wire() {
    let dir = TempDir::new("serving-lifecycle");
    let handle = server(&dir);
    let mut c = client(&handle);
    assert!(c.list_indexes().expect("list").is_empty());
    c.create_index("a", "gbu", true).expect("create a");
    c.create_index("b", "td", false).expect("create b");
    match c.create_index("a", "gbu", true) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("already exists"), "{msg}"),
        other => panic!("duplicate create must fail, got {other:?}"),
    }
    assert_eq!(
        c.list_indexes().expect("list"),
        vec![("a".to_string(), true), ("b".to_string(), true)]
    );
    c.apply("a", &insert_batch(0..7)).expect("apply");
    c.close_index("a").expect("close");
    assert_eq!(
        c.list_indexes().expect("list"),
        vec![("a".to_string(), false), ("b".to_string(), true)]
    );
    // Writes to a closed index reopen it on demand.
    c.apply("a", &insert_batch(7..9)).expect("reopen on write");
    assert_eq!(c.len("a").expect("len"), 9);
    match c.open_index("missing") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("not found"), "{msg}"),
        other => panic!("open of a missing index must fail, got {other:?}"),
    }
    handle.shutdown();
}
