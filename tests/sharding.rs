//! End-to-end sharding tests: the `ShardedBur` facade against an
//! unsharded `Bur` oracle, and `burd --shards N` over the wire.
//!
//! The load-bearing contracts under test:
//!
//! * a randomized mixed stream of single ops, batches, window queries
//!   and kNN searches — with key-range migrations and rebalance steps
//!   interleaved — observes exactly what one unsharded index would
//!   observe (routing is an implementation detail, never a semantic);
//! * a power cut in the middle of a range migration is all-or-nothing:
//!   after reopen the routing map names exactly one owner per key,
//!   every acked object is found exactly once, and no intent/commit
//!   record is left behind;
//! * `kill -9` of a `burd --shards 4` process loses no acked write —
//!   the durable ack promise holds per shard and in aggregate;
//! * the sharded index kind round-trips over the wire: explicit
//!   `create_sharded_index`, scatter-gather queries, merged kNN and
//!   per-shard observability gauges.

mod common;

use bur::client::BurClient;
use bur::core::{Batch, Bur, IndexBuilder};
use bur::geom::{Point, Rect};
use bur::serve::{start, ServerConfig};
use bur::shard::{self, ShardOptions, ShardedBur};
use bur::storage::{FaultKind, FaultyDisk, MemDisk};
use common::TempDir;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// Deterministic point in the unit square for object `i`.
fn pos(i: u64) -> Point {
    let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
    let x = ((h >> 16) & 0xffff) as f32 / 65536.0;
    let y = ((h >> 40) & 0xffff) as f32 / 65536.0;
    Point::new(x, y)
}

fn sharded(n: usize) -> ShardedBur {
    let shards = (0..n)
        .map(|_| IndexBuilder::generalized().build().unwrap())
        .collect();
    ShardedBur::from_shards(shards, ShardOptions::default()).unwrap()
}

fn rand_point(rng: &mut StdRng) -> Point {
    Point::new(rng.random::<f32>(), rng.random::<f32>())
}

/// Compare a window query on the sharded index against the oracle.
fn assert_window_matches(s: &ShardedBur, oracle: &Bur, window: &Rect) {
    let mut got: Vec<u64> = s.query(window).unwrap().collect();
    got.sort_unstable();
    let mut want: Vec<u64> = oracle.query(window).unwrap().collect();
    want.sort_unstable();
    assert_eq!(got, want, "window {window} diverged from the oracle");
}

/// Compare merged kNN against the oracle by distance profile (position
/// collisions make exact oid order tie-dependent).
fn assert_knn_matches(s: &ShardedBur, oracle: &Bur, q: Point, k: usize) {
    let got: Vec<_> = s.nearest(q, k).unwrap().try_collect().unwrap();
    let want: Vec<_> = oracle.nearest(q, k).unwrap().collect();
    assert_eq!(got.len(), want.len(), "kNN cardinality diverged at {q}");
    for (g, w) in got.iter().zip(&want) {
        assert!(
            (g.distance - w.distance).abs() < 1e-6,
            "kNN distance profile diverged at {q}: {} vs {}",
            g.distance,
            w.distance
        );
    }
    for pair in got.windows(2) {
        assert!(
            pair[0].distance <= pair[1].distance,
            "merged kNN emitted out of order"
        );
    }
}

/// Split a randomly chosen routing segment in half and migrate the low
/// half to the next shard (round-robin). Exercises `migrate_range`
/// with arbitrary (but always single-owner) ranges.
fn scripted_migration(s: &ShardedBur, rng: &mut StdRng) {
    let segs = s.segments();
    let space = shard::key_space_for(s.order());
    let i = rng.random_range(0..segs.len());
    let start = segs[i].start;
    let end = segs.get(i + 1).map_or(space, |next| next.start);
    if end - start < 2 {
        return;
    }
    let mid = start + (end - start) / 2;
    let to = (segs[i].shard + 1) % s.shard_count() as u32;
    s.migrate_range(start, mid, to).unwrap();
}

/// One randomized mixed step stream against the oracle.
fn mixed_stream_matches_oracle(seed: u64, shards: usize, steps: usize) {
    let s = sharded(shards);
    let oracle = IndexBuilder::generalized().build().unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    // The model: every live object and its current position. Inserts
    // always use fresh oids so a batch can never fail mid-way.
    let mut live: Vec<(u64, Point)> = Vec::new();
    let mut next_oid = 0u64;

    for _ in 0..steps {
        match rng.random_range(0u32..10) {
            // Mixed batch: inserts, updates and deletes in one atomic
            // application on both sides.
            0..=4 => {
                let mut batch = Batch::new();
                for _ in 0..rng.random_range(1usize..30) {
                    let roll = rng.random_range(0u32..10);
                    if roll < 6 || live.is_empty() {
                        let p = rand_point(&mut rng);
                        batch.insert(next_oid, p);
                        live.push((next_oid, p));
                        next_oid += 1;
                    } else if roll < 8 {
                        let i = rng.random_range(0..live.len());
                        let new = rand_point(&mut rng);
                        let (oid, old) = live[i];
                        batch.update(oid, old, new);
                        live[i].1 = new;
                    } else {
                        let i = rng.random_range(0..live.len());
                        let (oid, p) = live.swap_remove(i);
                        batch.delete(oid, p);
                    }
                }
                let got = s.apply(&batch).unwrap();
                let want = oracle.apply(&batch).unwrap();
                assert_eq!(got.report().applied, want.report().applied);
            }
            // Single point ops (the non-batch surface).
            5 => {
                let p = rand_point(&mut rng);
                s.insert(next_oid, p).unwrap();
                oracle.insert(next_oid, p).unwrap();
                live.push((next_oid, p));
                next_oid += 1;
            }
            // Window query.
            6..=7 => {
                let a = rand_point(&mut rng);
                let w = rng.random_range(0.01f32..0.5);
                let h = rng.random_range(0.01f32..0.5);
                assert_window_matches(
                    &s,
                    &oracle,
                    &Rect::new(a.x, a.y, (a.x + w).min(1.0), (a.y + h).min(1.0)),
                );
            }
            // kNN.
            8 => {
                let q = rand_point(&mut rng);
                let k = rng.random_range(1usize..20);
                assert_knn_matches(&s, &oracle, q, k);
            }
            // Routing churn: a scripted migration or a rebalance step.
            // Neither may be observable through the query surface.
            _ => {
                if rng.random_bool(0.5) {
                    scripted_migration(&s, &mut rng);
                } else {
                    s.rebalance_step().unwrap();
                }
            }
        }
    }

    // Final equivalence: cardinality, the full window, and fresh kNN.
    assert_eq!(s.len(), oracle.len());
    assert_window_matches(&s, &oracle, &Rect::new(0.0, 0.0, 1.0, 1.0));
    assert_knn_matches(&s, &oracle, Point::new(0.5, 0.5), 15);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_streams_match_unsharded_oracle(
        seed in any::<u64>(),
        shards in 2usize..6,
        steps in 30usize..80,
    ) {
        mixed_stream_matches_oracle(seed, shards, steps);
    }
}

#[test]
fn scripted_migrations_interleave_with_writes_and_queries() {
    let s = sharded(4);
    let oracle = IndexBuilder::generalized().build().unwrap();
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for wave in 0..12u64 {
        let mut batch = Batch::new();
        for i in 0..100 {
            batch.insert(wave * 100 + i, pos(wave * 100 + i));
        }
        s.apply(&batch).unwrap();
        oracle.apply(&batch).unwrap();
        // Churn the routing map between every write wave.
        scripted_migration(&s, &mut rng);
        if wave % 3 == 0 {
            s.rebalance_step().unwrap();
        }
        assert_window_matches(&s, &oracle, &Rect::new(0.2, 0.2, 0.8, 0.8));
    }
    assert_eq!(s.len(), 1200);
    assert_window_matches(&s, &oracle, &Rect::new(0.0, 0.0, 1.0, 1.0));
    assert_knn_matches(&s, &oracle, Point::new(0.3, 0.7), 25);
    // The map fragmented but still covers the space with one owner per
    // key — stats stay coherent.
    let stats = s.stats();
    assert_eq!(stats.shards.iter().map(|l| l.len).sum::<u64>(), 1200);
    assert!(stats.segments >= 4);
    assert!(!stats.migrating);
}

#[test]
fn mid_migration_power_cut_loses_no_acked_writes() {
    const N: u64 = 400;
    let mut fired = 0u32;
    for cut_after in [2u64, 9, 33, 70] {
        let dir = TempDir::new("shard-cut");
        let manifest = dir.file("idx.shardmap");
        // Two durable shards on in-memory platters behind fault
        // injectors; the manifest lives on the real filesystem.
        let platters: Vec<Arc<MemDisk>> = (0..2).map(|_| Arc::new(MemDisk::new(1024))).collect();
        let faulty: Vec<Arc<FaultyDisk>> = platters
            .iter()
            .map(|p| Arc::new(FaultyDisk::new(p.clone())))
            .collect();
        {
            let burs: Vec<Bur> = faulty
                .iter()
                .map(|d| {
                    IndexBuilder::generalized()
                        .durable()
                        .disk(d.clone())
                        .build()
                        .unwrap()
                })
                .collect();
            let s =
                ShardedBur::with_manifest(burs, ShardOptions::default(), manifest.clone()).unwrap();
            let mut batch = Batch::new();
            for i in 0..N {
                batch.insert(i, pos(i));
            }
            s.apply(&batch).unwrap().wait().unwrap();

            // Tear a write on the *recipient* some way into the copy
            // phase, then crash (drop): only platters + manifest live on.
            let quarter = shard::key_space_for(s.order()) / 4;
            faulty[1].inject(FaultKind::TornWrite {
                after_writes: cut_after,
            });
            if s.migrate_range(0, quarter, 1).is_err() {
                fired += 1;
            }
        }
        // Reopen from the platters: WAL recovery per shard, then the
        // manifest rolls the interrupted migration back (intent) or
        // forward (commit). Either way: all-or-nothing, zero loss.
        let burs: Vec<Bur> = platters
            .iter()
            .map(|p| {
                let (b, _) = IndexBuilder::generalized()
                    .disk(p.clone())
                    .recover()
                    .build_with_report()
                    .unwrap();
                b
            })
            .collect();
        let s = ShardedBur::with_manifest(burs, ShardOptions::default(), manifest.clone()).unwrap();
        assert!(
            shard::load_manifest(&manifest).unwrap().migration.is_none(),
            "cut at {cut_after}: reopen left a migration record behind"
        );
        assert_eq!(s.len(), N, "cut at {cut_after}: acked writes lost");
        let mut got: Vec<u64> = s.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).unwrap().collect();
        got.sort_unstable();
        assert_eq!(
            got,
            (0..N).collect::<Vec<_>>(),
            "cut at {cut_after}: duplicate or missing objects after recovery"
        );
    }
    assert!(
        fired > 0,
        "no cut ever fired mid-migration; test is vacuous"
    );
}

/// Spawn the real `burd` binary on an OS-assigned port with extra
/// flags and parse the bound address off its stdout.
fn spawn_burd(data_dir: &std::path::Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_burd"))
        .arg(data_dir)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("burd spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("burd announces its address");
    let addr = line
        .trim()
        .strip_prefix("burd listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (child, addr)
}

fn insert_batch(range: std::ops::Range<u64>) -> Batch {
    let mut batch = Batch::new();
    for oid in range {
        batch.insert(oid, pos(oid));
    }
    batch
}

#[test]
fn sharded_burd_kill9_loses_no_acked_writes() {
    const BATCHES: u64 = 12;
    const PER_BATCH: u64 = 25;

    let dir = TempDir::new("shard-kill");
    let data = dir.file("data");
    // `--shards 4`: every `create` builds a 4-way sharded index.
    let (mut child, addr) = spawn_burd(&data, &["--shards", "4"]);
    let config = bur::client::ClientConfig {
        connect_attempts: 2,
        max_connect_elapsed: std::time::Duration::from_secs(2),
        retry: bur::client::RetryPolicy::none(),
        ..Default::default()
    };
    let mut c = BurClient::connect_with(&addr, &config).expect("connect");
    c.create_index("fleet", "gbu", true).expect("create");
    assert!(
        data.join("fleet.shardmap").exists(),
        "--shards 4 did not produce a sharded index"
    );
    for k in 0..4 {
        assert!(data.join(format!("fleet.s{k}.bur")).exists());
    }
    let mut acked = 0u64;
    for b in 0..BATCHES {
        let base = b * PER_BATCH;
        let ack = c
            .apply("fleet", &insert_batch(base..base + PER_BATCH))
            .expect("apply");
        assert!(ack.lsn > 0, "durable sharded acks carry an LSN");
        acked += ack.applied;
    }
    let stats = c.stats("fleet").expect("stats");
    assert!(stats.contains("bur_shards{index=\"fleet\"} 4"), "{stats}");

    // SIGKILL: no drain, no flush, no checkpoint. Every acked write
    // must survive — per shard and in aggregate.
    child.kill().expect("kill");
    child.wait().expect("reap");

    // Restart WITHOUT the flag: the `.shardmap` manifest alone must
    // bring the index back sharded.
    let (mut child, addr) = spawn_burd(&data, &[]);
    let mut c = BurClient::connect(&addr).expect("reconnect");
    assert_eq!(
        c.len("fleet").expect("reopen recovers all shards"),
        acked,
        "acked writes lost across kill -9 + restart"
    );
    let all: Vec<u64> = c
        .query("fleet", &Rect::new(0.0, 0.0, 1.0, 1.0))
        .expect("query")
        .collect::<Result<_, _>>()
        .expect("stream");
    assert_eq!(all.len() as u64, acked);
    for oid in 0..acked {
        assert!(all.contains(&oid), "acked oid {oid} missing after restart");
    }
    c.shutdown_server().expect("graceful stop");
    child.wait().expect("burd exits");
}

#[test]
fn sharded_lifecycle_over_the_wire() {
    let dir = TempDir::new("shard-wire");
    let handle = start(ServerConfig::new(dir.file("data"))).expect("server starts");
    let mut c = BurClient::connect(handle.addr()).expect("client connects");

    c.create_sharded_index("grid", "gbu", false, 4)
        .expect("create sharded");
    assert!(
        c.create_sharded_index("grid", "gbu", false, 4).is_err(),
        "duplicate create must fail"
    );
    assert!(
        c.create_index("grid", "gbu", false).is_err(),
        "plain create over a sharded name must fail"
    );
    assert_eq!(
        c.list_indexes().expect("list"),
        vec![("grid".to_string(), true)],
        "a sharded index lists once under its logical name"
    );

    let oracle = IndexBuilder::generalized().build().expect("oracle");
    for b in 0..8u64 {
        let batch = insert_batch(b * 250..(b + 1) * 250);
        let ack = c.apply("grid", &batch).expect("apply");
        assert_eq!(ack.applied, 250);
        oracle.apply(&batch).expect("oracle apply");
    }
    assert_eq!(c.len("grid").expect("len"), oracle.len());

    for window in [
        Rect::new(0.0, 0.0, 1.0, 1.0),
        Rect::new(0.1, 0.2, 0.4, 0.9),
        Rect::new(0.85, 0.85, 0.95, 0.95),
    ] {
        let mut remote: Vec<u64> = c
            .query("grid", &window)
            .expect("query")
            .collect::<Result<_, _>>()
            .expect("stream");
        let mut local: Vec<u64> = oracle.query(&window).expect("oracle query").collect();
        remote.sort_unstable();
        local.sort_unstable();
        assert_eq!(remote, local, "window {window} diverged from oracle");
    }
    let remote_nn = c
        .nearest("grid", Point::new(0.5, 0.5), 10)
        .expect("knn")
        .collect::<Result<Vec<_>, _>>()
        .expect("stream");
    let local_nn: Vec<_> = oracle
        .nearest(Point::new(0.5, 0.5), 10)
        .expect("oracle knn")
        .collect();
    assert_eq!(remote_nn.len(), local_nn.len());
    for (r, l) in remote_nn.iter().zip(&local_nn) {
        assert!((r.distance - l.distance).abs() < 1e-6);
    }

    // Observability: logical + per-shard gauges.
    let stats = c.stats("grid").expect("stats");
    assert!(stats.contains("bur_shards{index=\"grid\"} 4"), "{stats}");
    assert!(
        stats.contains("bur_shard_objects{index=\"grid\",shard=\"0\"}"),
        "{stats}"
    );
    let metrics = c.metrics().expect("metrics");
    assert!(
        metrics.contains("bur_shard_imbalance_milli{index=\"grid\"}"),
        "{metrics}"
    );

    // Close + reopen on demand: the kind is auto-detected from disk.
    c.close_index("grid").expect("close");
    assert_eq!(c.len("grid").expect("reopen on read"), oracle.len());
    handle.shutdown();
}
